//! # V-Rex
//!
//! A from-scratch Rust reproduction of **"V-Rex: Real-Time Streaming
//! Video LLM Acceleration via Dynamic KV Cache Retrieval"**
//! (HPCA 2026): the ReSV training-free dynamic KV-cache retrieval
//! algorithm, the streaming video LLM substrate it accelerates, the
//! baseline retrieval systems it is compared against, and a
//! cycle-approximate simulator of the V-Rex accelerator and its GPU
//! baselines.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`tensor`] — dense `f32` linear algebra, top-k, quantization;
//! * [`model`] — the streaming video LLM (iterative prefill +
//!   generation, growing KV caches, synthetic vision tower);
//! * [`core`] — **ReSV**: hash-bit key clustering + WiCSum
//!   thresholding + early-exit sorting (the paper's contribution);
//! * [`retrieval`] — FlexGen / InfiniGen / InfiniGenP / ReKV / Oaken
//!   baselines;
//! * [`hwsim`] — DRAM, SSD, PCIe, GPU and V-Rex-core hardware models,
//!   plus the HBM → host-DRAM → SSD tier topology and migration
//!   pricing;
//! * [`workload`] — COIN-like tasks, sessions, multi-session traffic,
//!   and the accuracy proxy;
//! * [`system`] — Table I platforms, the end-to-end latency/energy
//!   model behind every figure, the multi-session serving scheduler
//!   (continuous batching + admission control), and the tiered
//!   KV-cache memory hierarchy with prefetch-overlapped serving.
//!
//! ## Quickstart
//!
//! ```
//! use vrex::core::resv::{ResvConfig, ResvPolicy};
//! use vrex::model::{ModelConfig, RunStats, StreamingVideoLlm};
//! use vrex::model::{VideoStream, VideoStreamConfig};
//!
//! // A streaming video LLM with ReSV retrieval.
//! let cfg = ModelConfig::tiny();
//! let mut llm = StreamingVideoLlm::new(cfg.clone(), 7);
//! let mut policy = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
//! let mut video = VideoStream::new(VideoStreamConfig::coin_like(
//!     cfg.tokens_per_frame, cfg.hidden_dim, 9));
//! let mut stats = RunStats::new(&cfg, false);
//! for _ in 0..5 {
//!     let frame = video.next_frame();
//!     llm.process_frame(&frame, &mut policy, &mut stats);
//! }
//! println!("retrieval ratio: {:.1}%", stats.overall_ratio() * 100.0);
//! assert!(stats.overall_ratio() < 1.0);
//! ```
//!
//! ## Serving quickstart
//!
//! Offer a fleet of concurrent streaming sessions to a platform and ask
//! how many stay real-time (the capacity question behind
//! `serve_capacity`):
//!
//! ```
//! use vrex::model::ModelConfig;
//! use vrex::system::{serve, Method, PlatformSpec, ServeConfig, SystemModel};
//! use vrex::workload::TrafficConfig;
//!
//! let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
//! let model = ModelConfig::llama3_8b();
//! let plans = TrafficConfig {
//!     sessions: 3,
//!     turns: 1,
//!     arrival_spread_s: 5.0,
//!     seed: 7,
//! }
//! .generate();
//! let report = serve(&sys, &model, &plans, &ServeConfig::real_time(8_000));
//! assert_eq!(report.admitted + report.rejected, 3);
//! println!(
//!     "{}: {}/{} real-time, p99 frame lag {:.3}s",
//!     sys.label(),
//!     report.real_time_sessions,
//!     report.admitted,
//!     report.frame_lag_p99_s,
//! );
//! ```
//!
//! ## Tiered-memory serving quickstart
//!
//! When a fleet's resident KV outgrows device memory, reject-only
//! admission turns streams away while host DRAM and the SSD sit idle.
//! Tiered admission spills the coldest streams down the hierarchy
//! instead and hides most of the restore traffic behind speculative
//! prefetch (the `tier_capacity` sweep):
//!
//! ```
//! use vrex::model::ModelConfig;
//! use vrex::system::{serve, Method, PlatformSpec, ServeConfig, SystemModel};
//! use vrex::workload::TrafficConfig;
//!
//! // Halve the device memory and keep a wide resident window per
//! // stream: the fleet now overflows HBM long before compute
//! // saturates.
//! let mut platform = PlatformSpec::vrex48();
//! platform.mem_capacity /= 2;
//! platform.hot_window_tokens = 32_768;
//! let sys = SystemModel::new(platform, Method::ReSV);
//! let model = ModelConfig::llama3_8b();
//! let plans = TrafficConfig {
//!     sessions: 8,
//!     turns: 2,
//!     arrival_spread_s: 10.0,
//!     seed: 42,
//! }
//! .generate();
//!
//! let rejecting = serve(&sys, &model, &plans, &ServeConfig::real_time(32_000));
//! let tiered = serve(&sys, &model, &plans, &ServeConfig::real_time_tiered(32_000));
//! assert!(rejecting.rejected > 0, "device memory turns streams away");
//! assert_eq!(tiered.rejected, 0, "spilling admits the whole fleet");
//!
//! let hierarchy = tiered.tiering.expect("tiered runs account the hierarchy");
//! assert!(hierarchy.spilled_sessions > 0);
//! assert!(hierarchy.hidden_s > 0.0, "prefetch hides restore time");
//! println!(
//!     "tiered: {}/{} real-time, {} spilled, {:.2}s of restores hidden",
//!     tiered.real_time_sessions,
//!     tiered.admitted,
//!     hierarchy.spilled_sessions,
//!     hierarchy.hidden_s,
//! );
//! ```

pub use vrex_core as core;
pub use vrex_hwsim as hwsim;
pub use vrex_model as model;
pub use vrex_retrieval as retrieval;
pub use vrex_system as system;
pub use vrex_tensor as tensor;
pub use vrex_workload as workload;

pub use vrex_system::{
    serve, serve_sharded, AdmissionPolicy, DevicePool, PlacementPolicy, PrefetchMode, ServeConfig,
    ServeReport, ShardedServeReport, TierReport,
};
pub use vrex_workload::{SessionPlan, TrafficConfig};
