//! Quickstart: stream video into the LLM with ReSV retrieval, ask a
//! question, and generate an answer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vrex::core::resv::{ResvConfig, ResvPolicy};
use vrex::model::{ModelConfig, RunStats, StreamingVideoLlm, VideoStream, VideoStreamConfig};

fn main() {
    // A small but real transformer (4 layers, 8 heads, GQA) standing in
    // for the paper's Llama-3 8B backbone.
    let cfg = ModelConfig::small();
    let mut llm = StreamingVideoLlm::new(cfg.clone(), 42);

    // ReSV with the paper's hyper-parameters: 32 hyperplanes,
    // Hamming threshold 7, WiCSum threshold 0.3.
    let mut policy = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());

    // A synthetic COIN-like video stream (persistent scenes, slow
    // drift, occasional cuts).
    let mut video = VideoStream::new(VideoStreamConfig::coin_like(
        cfg.tokens_per_frame,
        cfg.hidden_dim,
        7,
    ));

    // Iterative prefill: frames arrive one at a time, each extends the
    // KV cache (the streaming-video-LLM workflow of paper Fig. 3).
    let mut prefill_stats = RunStats::new(&cfg, true);
    for i in 0..16 {
        let frame = video.next_frame();
        llm.process_frame(&frame, &mut policy, &mut prefill_stats);
        if (i + 1) % 4 == 0 {
            println!(
                "frame {:>2}: cache = {:>4} tokens, ReSV retrieval ratio so far = {:.1}%",
                i + 1,
                llm.cache().len(),
                prefill_stats.overall_ratio() * 100.0
            );
        }
    }

    // The user asks a question (tokens are hashed into the toy vocab).
    let question = [17usize, 934, 2001, 58, 4242];
    let hidden = llm.process_text(&question, &mut policy, &mut prefill_stats);

    // Generate an answer over the accumulated visual context.
    let mut gen_stats = RunStats::new(&cfg, true);
    let answer = llm.generate(&hidden, 8, &mut policy, &mut gen_stats);

    println!("\nanswer token ids: {answer:?}");
    println!(
        "prefill stage: retrieval ratio {:.1}%, attention recall {:.3}",
        prefill_stats.overall_ratio() * 100.0,
        prefill_stats.mean_recall()
    );
    println!(
        "generation stage: retrieval ratio {:.1}%, attention recall {:.3}",
        gen_stats.overall_ratio() * 100.0,
        gen_stats.mean_recall()
    );
    println!(
        "hash-cluster occupancy: {:.1} tokens/cluster (paper: ~32 on real COIN keys)",
        policy.mean_tokens_per_cluster()
    );
}
