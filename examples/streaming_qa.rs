//! Multi-turn streaming question answering — the conversational-agent
//! scenario from the paper's introduction.
//!
//! A user watches a (synthetic) instructional video and asks follow-up
//! questions over time. Because answers may reference *earlier* video
//! segments, destructive cache pruning would break them; retrieval
//! preserves everything and fetches what each turn needs. The example
//! contrasts ReSV against full-fetch FlexGen turn by turn.
//!
//! ```text
//! cargo run --release --example streaming_qa
//! ```

use vrex::core::resv::{ResvConfig, ResvPolicy};
use vrex::model::{ModelConfig, RetrievalPolicy, RunStats, StreamingVideoLlm, VideoStream};
use vrex::retrieval::FlexGenPolicy;
use vrex::workload::{CoinTask, SessionGenerator};

fn run_session(policy: &mut dyn RetrievalPolicy) -> Vec<(usize, f64, f64)> {
    let cfg = ModelConfig::small();
    let mut llm = StreamingVideoLlm::new(cfg.clone(), 11);
    let mut video =
        VideoStream::new(CoinTask::Next.video_config(cfg.tokens_per_frame, cfg.hidden_dim, 5));
    let mut questions = SessionGenerator::new(99);
    let mut out = Vec::new();
    for _turn in 0..3 {
        let mut stats = RunStats::new(&cfg, true);
        for _ in 0..8 {
            let frame = video.next_frame();
            llm.process_frame(&frame, policy, &mut stats);
        }
        let q = questions.question_ids(6);
        let hidden = llm.process_text(&q, policy, &mut stats);
        llm.generate(&hidden, 5, policy, &mut stats);
        out.push((
            llm.cache().len(),
            stats.overall_ratio() * 100.0,
            stats.mean_recall(),
        ));
    }
    out
}

fn main() {
    let cfg = ModelConfig::small();
    let mut resv = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
    let mut flexgen = FlexGenPolicy::new();

    let resv_turns = run_session(&mut resv);
    let flex_turns = run_session(&mut flexgen);

    println!("turn | cache tokens | ReSV ratio% / recall | FlexGen ratio% / recall");
    println!("-----+--------------+----------------------+------------------------");
    for (i, (r, f)) in resv_turns.iter().zip(&flex_turns).enumerate() {
        println!(
            "  {}  |     {:>5}    |    {:>5.1} / {:.3}     |     {:>5.1} / {:.3}",
            i + 1,
            r.0,
            r.1,
            r.2,
            f.1,
            f.2
        );
    }
    println!(
        "\nReSV touches a fraction of the growing cache each turn while keeping \
         most of the attention mass; FlexGen fetches 100% every turn — the \
         traffic V-Rex's DRE+KVMU eliminate."
    );
}
