//! Head-to-head functional comparison of every retrieval policy on the
//! same stream: selection ratio, attention recall, and output fidelity.
//!
//! ```text
//! cargo run --release --example retrieval_comparison
//! ```

use vrex::core::resv::{ResvConfig, ResvPolicy};
use vrex::model::{ModelConfig, RetrievalPolicy};
use vrex::retrieval::{FlexGenPolicy, InfiniGenPPolicy, InfiniGenPolicy, RekvPolicy};
use vrex::workload::accuracy::{evaluate_policy, EvalConfig};
use vrex::workload::CoinTask;

fn main() {
    let cfg = ModelConfig::small();
    let eval = EvalConfig {
        frames: 16,
        ..EvalConfig::default()
    };
    let task = CoinTask::Step;

    let mut policies: Vec<Box<dyn RetrievalPolicy>> = vec![
        Box::new(FlexGenPolicy::new()),
        Box::new(InfiniGenPolicy::paper_defaults()),
        Box::new(InfiniGenPPolicy::paper_defaults()),
        Box::new(RekvPolicy::paper_defaults(cfg.tokens_per_frame)),
        Box::new(ResvPolicy::new(&cfg, ResvConfig::without_clustering())),
        Box::new(ResvPolicy::new(&cfg, ResvConfig::paper_defaults())),
    ];

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Policy", "frame ratio%", "text ratio%", "frame recall", "text recall", "divergence"
    );
    for p in policies.iter_mut() {
        let r = evaluate_policy(&cfg, task, p.as_mut(), eval);
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>12.3} {:>12.3} {:>12.4}",
            r.method,
            r.frame_ratio_pct,
            r.text_ratio_pct,
            r.frame_recall,
            r.text_recall,
            r.output_divergence
        );
    }
    println!(
        "\nReading the table: a good retrieval method sits low on ratio and high \
         on recall. Fixed top-k (InfiniGenP) must spend ~50% to protect recall; \
         ReSV's per-layer/head WiCSum thresholding gets comparable recall at a \
         much lower ratio — the paper's Table II in miniature."
    );
}
