//! Sizing an edge deployment: will this stream run in real time?
//!
//! Uses the system-level models (Table I platforms + the Fig. 5
//! pipeline composition) to answer the paper's headline question for a
//! deployment engineer: at what cache length / batch does each edge
//! configuration stop being real-time (≥ 2 FPS), run out of memory, or
//! blow the energy budget?
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use vrex::model::ModelConfig;
use vrex::system::{Method, PlatformSpec, SystemModel};

fn main() {
    let model = ModelConfig::llama3_8b();
    let configs = [
        SystemModel::new(PlatformSpec::agx_orin(), Method::VanillaInMemory),
        SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen),
        SystemModel::new(PlatformSpec::agx_orin(), Method::ReKV),
        SystemModel::new(PlatformSpec::vrex8(), Method::ReSV),
    ];

    println!("Edge deployment check: Llama-3 8B streaming at 10 FPS target, batch 1\n");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "Configuration", "KV len", "ms/frame", "FPS", "J/frame", "real-time?"
    );
    for sys in &configs {
        for s in [1_000usize, 10_000, 40_000] {
            match sys.fps(&model, s, 1) {
                None => {
                    println!(
                        "{:<28} {:>7}K {:>10} {:>10} {:>12} {:>10}",
                        sys.label(),
                        s / 1000,
                        "OOM",
                        "-",
                        "-",
                        "no"
                    );
                }
                Some(fps) => {
                    let r = sys.frame_step(&model, s, 1);
                    println!(
                        "{:<28} {:>7}K {:>10.0} {:>10.1} {:>12.1} {:>10}",
                        sys.label(),
                        s / 1000,
                        r.latency_ms(),
                        fps,
                        r.energy.total_j(),
                        if fps >= 2.0 { "yes" } else { "no" }
                    );
                }
            }
        }
        println!();
    }

    // Sustained-session energy: one hour of 2 FPS streaming at 20K.
    println!("One hour at 2 FPS, 20K cache:");
    for sys in &configs[1..] {
        let r = sys.frame_step(&model, 20_000, 1);
        let frames = 2.0 * 3600.0;
        println!(
            "  {:<26} {:>8.1} Wh",
            sys.label(),
            r.energy.total_j() * frames / 3600.0
        );
    }
}
