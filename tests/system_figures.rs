//! Cross-crate integration: the system-level models must reproduce the
//! qualitative shape of every evaluation figure (who wins, by roughly
//! what factor, where crossovers fall).

use vrex::model::ModelConfig;
use vrex::system::ablation::fig16_ladder;
use vrex::system::{Method, PlatformSpec, SystemModel};

fn llama() -> ModelConfig {
    ModelConfig::llama3_8b()
}

#[test]
fn fig13_vrex8_speedup_band() {
    // Paper: 2.2–7.3x over AGX+FlexGen at batch 1, growing with length.
    let vrex = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
    let agx = SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen);
    let speedup = |s| {
        agx.frame_step(&llama(), s, 1).latency_ms() / vrex.frame_step(&llama(), s, 1).latency_ms()
    };
    let s1 = speedup(1_000);
    let s40 = speedup(40_000);
    assert!(s1 > 1.2 && s1 < 5.0, "1K speedup {s1:.2}");
    assert!(s40 > 3.0 && s40 < 15.0, "40K speedup {s40:.2}");
    assert!(s40 > s1, "gap must widen with cache length");
}

#[test]
fn fig13_server_batch_speedups() {
    // Paper: V-Rex48 2.6–7.3x at batch 1, up to 19.7x at batch 8.
    let vrex = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
    let a100 = SystemModel::new(PlatformSpec::a100(), Method::FlexGen);
    for (batch, lo, hi) in [(1usize, 1.5, 12.0), (8, 1.5, 25.0)] {
        let s = a100.frame_step(&llama(), 40_000, batch).latency_ms()
            / vrex.frame_step(&llama(), 40_000, batch).latency_ms();
        assert!(
            s > lo && s < hi,
            "batch {batch}: speedup {s:.2} outside [{lo},{hi}]"
        );
    }
}

#[test]
fn fig13_infinigenp_slower_than_flexgen_on_edge() {
    // Paper: AGX+InfiniGen(P) are even slower than FlexGen in the frame
    // stage (token-granular selection overhead + scattered fetch).
    for s in [10_000usize, 40_000] {
        let flex = SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen)
            .frame_step(&llama(), s, 1)
            .latency_ms();
        let igp = SystemModel::new(PlatformSpec::agx_orin(), Method::InfiniGenP)
            .frame_step(&llama(), s, 1)
            .latency_ms();
        assert!(
            igp > flex,
            "at {s}: InfiniGenP {igp:.0} vs FlexGen {flex:.0}"
        );
    }
}

#[test]
fn fig13_rekv_beats_flexgen_modestly() {
    let s = 40_000;
    let flex = SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen)
        .frame_step(&llama(), s, 1)
        .latency_ms();
    let rekv = SystemModel::new(PlatformSpec::agx_orin(), Method::ReKV)
        .frame_step(&llama(), s, 1)
        .latency_ms();
    assert!(rekv < flex, "ReKV {rekv:.0} should beat FlexGen {flex:.0}");
    assert!(rekv > flex / 3.0, "but only modestly");
}

#[test]
fn fig14_e2e_speedup_grows_with_cache() {
    let vrex = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
    let agx = SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen);
    let e2e = |sys: &SystemModel, s| sys.interaction(&llama(), s, 1, 26, 25, 39).total_ps() as f64;
    let speedup_1k = e2e(&agx, 1_000) / e2e(&vrex, 1_000);
    let speedup_40k = e2e(&agx, 40_000) / e2e(&vrex, 40_000);
    // Paper: 2x at 1K rising to 5.4x at 40K.
    assert!(speedup_1k > 1.0, "1K e2e speedup {speedup_1k:.2}");
    assert!(
        speedup_40k > speedup_1k && speedup_40k < 15.0,
        "40K e2e speedup {speedup_40k:.2}"
    );
}

#[test]
fn fig15_oom_ordering() {
    let batch = 16;
    let vanilla = SystemModel::new(PlatformSpec::agx_orin(), Method::VanillaInMemory);
    let oaken = SystemModel::new(PlatformSpec::agx_orin(), Method::Oaken);
    let vrex = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
    let sweep = [1_000usize, 5_000, 10_000, 20_000, 40_000];
    let horizon = |sys: &SystemModel| {
        sweep
            .iter()
            .filter(|&&s| sys.fps(&llama(), s, batch).is_some())
            .count()
    };
    let hv = horizon(&vanilla);
    let ho = horizon(&oaken);
    let hr = horizon(&vrex);
    assert!(hv < ho, "Oaken must outlive vanilla ({hv} vs {ho})");
    assert_eq!(hr, sweep.len(), "V-Rex must never OOM");
    assert!(ho < sweep.len(), "Oaken must still OOM eventually");
}

#[test]
fn fig16_ladder_shape() {
    let ladder = fig16_ladder(&llama(), 40_000, 1);
    // Strictly monotone latency improvements down the ladder.
    for w in ladder.windows(2) {
        assert!(w[1].result.latency_ps < w[0].result.latency_ps);
    }
    // Biggest single contribution comes from hardware (KVPU or KVMU).
    let sw_gain = ladder[0].result.latency_ps as f64 / ladder[1].result.latency_ps as f64;
    let hw_gain = ladder[1].result.latency_ps as f64 / ladder[3].result.latency_ps as f64;
    assert!(sw_gain > 1.5, "software-only gain {sw_gain:.2}");
    assert!(hw_gain > 1.5, "hardware gain {hw_gain:.2}");
}

#[test]
fn fig18_roofline_fraction_ordering() {
    use vrex::hwsim::roofline::{Roof, RooflinePoint};
    let model = llama();
    // Workload-normalised accounting (see fig18 binary): credit every
    // system with the full workload's FLOPs/bytes.
    let batch = 4u64;
    let workload_flops = batch * model.total_flops(model.tokens_per_frame, 40_000)
        + batch * PlatformSpec::vrex8().vision_flops;
    let workload_bytes =
        model.param_bytes() as u64 + batch * 40_000 * model.kv_bytes_per_token() as u64;
    let mut fractions = Vec::new();
    for (platform, method) in [
        (PlatformSpec::agx_orin(), Method::FlexGen),
        (PlatformSpec::agx_orin(), Method::ReKV),
        (PlatformSpec::vrex8(), Method::ReSV),
    ] {
        let sys = SystemModel::new(platform.clone(), method);
        let r = sys.frame_step(&model, 40_000, 4);
        let roof = Roof {
            peak_flops: platform.compute.peak_flops(),
            mem_bytes_per_s: platform.dram.peak_bytes_per_s(),
        };
        let p = RooflinePoint::from_measurement(
            &sys.label(),
            roof,
            workload_flops,
            workload_bytes + r.fetch_bytes,
            r.latency_ps as f64 / 1e12,
        );
        fractions.push(p.fraction_of_attainable);
    }
    // Paper: FlexGen 6.6% < ReKV ~15% < V-Rex 71.5%.
    assert!(fractions[0] < fractions[1], "{fractions:?}");
    assert!(fractions[1] < fractions[2], "{fractions:?}");
    assert!(
        fractions[2] > 0.15,
        "V-Rex should reach a large fraction: {fractions:?}"
    );
    assert!(
        fractions[2] > 3.0 * fractions[0],
        "V-Rex should dwarf FlexGen: {fractions:?}"
    );
    assert!(
        fractions[0] < 0.15,
        "FlexGen should be badly underutilised: {fractions:?}"
    );
}

#[test]
fn tpot_is_weight_streaming_bound() {
    // TPOT at short cache ≈ weight-streaming time: 16 GB over the
    // device bandwidth. Sanity-anchors the absolute scale.
    let vrex = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
    let t = vrex.decode_step(&llama(), 1_000, 1).latency_ms();
    let weights_ms = llama().param_bytes() as f64 / 204.8e9 * 1000.0;
    assert!(
        t > weights_ms * 0.8,
        "TPOT {t:.0} below weight streaming {weights_ms:.0}"
    );
    assert!(
        t < weights_ms * 2.0,
        "TPOT {t:.0} way above weight streaming"
    );
}

#[test]
fn energy_efficiency_ordering_holds_everywhere() {
    let vrex = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
    let agx = SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen);
    for s in [1_000usize, 10_000, 40_000] {
        for batch in [1usize, 4] {
            let gv = vrex.frame_step(&llama(), s, batch).gops_per_watt();
            let ga = agx.frame_step(&llama(), s, batch).gops_per_watt();
            assert!(
                gv > ga,
                "at {s}/b{batch}: V-Rex {gv:.1} vs AGX {ga:.1} GOPS/W"
            );
        }
    }
}
