//! Cross-validation: the analytic overlap composition used by the
//! figure sweeps must agree with an explicit event-engine schedule of
//! the same per-layer tasks. This guards the Fig. 5 composition rules
//! against drift — if someone changes the analytic `layer_costs`
//! overlap logic, this test catches divergence from the schedule it is
//! supposed to summarise.

use vrex::hwsim::Engine;
use vrex::model::ModelConfig;
use vrex::system::pipeline::{layer_costs, Workload};
use vrex::system::{Method, PlatformSpec};

/// Schedules `n_layers` of the V-Rex pipeline explicitly: the LXE runs
/// dense+attention per layer; the DRE runs prediction concurrently; the
/// PCIe link fetches for the next layer ahead of time. The makespan
/// should match `n_layers × layer_ps` from the analytic model within a
/// small tolerance (the analytic model charges a steady-state layer).
fn engine_makespan(platform: &PlatformSpec, method: Method, w: &Workload, n_layers: u64) -> u64 {
    let c = layer_costs(platform, method, w);
    let mut e = Engine::new();
    let lxe = e.add_resource("LXE");
    let dre = e.add_resource("DRE");
    let pcie = e.add_resource("PCIe");

    let mut prev_layer_done = None;
    let mut fetch_done: Option<vrex::hwsim::TaskId> = None;
    for l in 0..n_layers {
        let deps: Vec<_> = prev_layer_done.into_iter().chain(fetch_done).collect();
        // Compute of layer l waits for its (prefetched) KV.
        let compute = e.schedule(
            lxe,
            c.dense_ps + c.attention_ps,
            &deps,
            &format!("L{l} compute"),
            0,
        );
        // Prediction for layer l+1 runs on the DRE beside compute.
        let pred = e.schedule(dre, c.prediction_ps, &deps, &format!("L{l} pred"), 0);
        // Fetch for layer l+1 starts once its selection is known.
        fetch_done = Some(e.schedule(
            pcie,
            c.fetch_ps,
            &[pred],
            &format!("L{l} fetch"),
            c.fetch_bytes,
        ));
        prev_layer_done = Some(compute);
    }
    e.makespan()
}

#[test]
fn analytic_layer_model_matches_event_schedule_for_vrex() {
    let model = ModelConfig::llama3_8b();
    let platform = PlatformSpec::vrex8();
    for cache in [1_000usize, 10_000, 40_000] {
        let w = Workload::frame(&model, cache, 1);
        let c = layer_costs(&platform, Method::ReSV, &w);
        let n_layers = model.n_layers as u64;
        let analytic = c.layer_ps * n_layers;
        let scheduled = engine_makespan(&platform, Method::ReSV, &w, n_layers);
        // The schedule may add up to ~one layer of pipeline fill/drain.
        let slack = c.layer_ps + c.fetch_ps + c.prediction_ps;
        assert!(
            scheduled <= analytic + slack,
            "at {cache}: scheduled {scheduled} far above analytic {analytic}"
        );
        assert!(
            scheduled + slack >= analytic,
            "at {cache}: scheduled {scheduled} far below analytic {analytic}"
        );
    }
}

#[test]
fn fetch_bound_regime_is_visible_in_the_schedule() {
    // At 40K the V-Rex frame stage is offload-bound: the PCIe resource
    // should be the busiest in the explicit schedule.
    let model = ModelConfig::llama3_8b();
    let platform = PlatformSpec::vrex8();
    let w = Workload::frame(&model, 40_000, 1);
    let c = layer_costs(&platform, Method::ReSV, &w);
    assert!(
        c.fetch_ps > c.dense_ps + c.attention_ps,
        "expected fetch-bound at 40K: fetch {} vs compute {}",
        c.fetch_ps,
        c.dense_ps + c.attention_ps
    );
    assert_eq!(
        c.layer_ps, c.fetch_ps,
        "overlap model must report the bottleneck"
    );
}

#[test]
fn compute_bound_regime_at_short_cache() {
    // At 1K everything selected is resident: the layer is compute-bound
    // and the schedule collapses to serial LXE time.
    let model = ModelConfig::llama3_8b();
    let platform = PlatformSpec::vrex8();
    let w = Workload::frame(&model, 1_000, 1);
    let c = layer_costs(&platform, Method::ReSV, &w);
    assert_eq!(c.fetch_ps, 0, "1K fits the hot window");
    assert_eq!(c.layer_ps, c.dense_ps + c.attention_ps);
}
