//! Integration: the functional KVMU's fetch plans, priced on the PCIe
//! and SSD models, demonstrate the §V-C claim end to end — cluster-
//! contiguous placement turns a selection into fewer, larger
//! transactions that move measurably faster over the offload path.

use vrex::hwsim::kvmu::Kvmu;
use vrex::hwsim::pcie::PcieConfig;
use vrex::hwsim::ssd::{Ssd, SsdConfig};

/// Per-token per-layer KV record of the Llama-3 8B config.
const TOKEN_BYTES: u64 = 4096;

/// Builds two KVMUs over the same interleaved stream: one with cluster
/// tags (KVMU mapping), one without. Returns the two fetch plans for
/// the members of cluster 0.
fn plans() -> (
    vrex::hwsim::kvmu::FetchPlan,
    vrex::hwsim::kvmu::FetchPlan,
    Vec<usize>,
) {
    let n_clusters = 8;
    let per_cluster = 32; // the paper's mean cluster occupancy
    let total = n_clusters * per_cluster;
    let mut mapped = Kvmu::new(total - 1, TOKEN_BYTES);
    let mut unmapped = Kvmu::new(0, TOKEN_BYTES);
    // Cluster members arrive interleaved over time (temporal spread).
    for _round in 0..per_cluster {
        for c in 0..n_clusters {
            mapped.append_token(Some(c));
            unmapped.append_token(None);
        }
    }
    let selection: Vec<usize> = (0..per_cluster).map(|i| i * n_clusters).collect();
    let p_mapped = mapped.plan_fetch(&selection);
    let p_unmapped = unmapped.plan_fetch(&selection);
    (p_mapped, p_unmapped, selection)
}

#[test]
fn cluster_mapping_collapses_transactions() {
    let (mapped, unmapped, selection) = plans();
    assert_eq!(mapped.transactions.len(), 1, "{mapped:?}");
    assert_eq!(unmapped.transactions.len(), selection.len());
    // Same useful bytes either way.
    let useful = mapped.total_bytes() + mapped.hot_hits as u64 * TOKEN_BYTES;
    let useful2 = unmapped.total_bytes();
    assert_eq!(useful, selection.len() as u64 * TOKEN_BYTES);
    assert_eq!(useful2, selection.len() as u64 * TOKEN_BYTES);
}

#[test]
fn mapped_plan_is_faster_on_pcie() {
    let (mapped, unmapped, _) = plans();
    let link = PcieConfig::gen3_x4();
    let t_mapped: u64 = mapped
        .transactions
        .iter()
        .map(|tx| link.transfer_ps(tx.bytes, tx.bytes))
        .sum();
    let t_unmapped: u64 = unmapped
        .transactions
        .iter()
        .map(|tx| link.transfer_ps(tx.bytes, tx.bytes))
        .sum();
    // On the PCIe link alone the gap comes from per-TLP framing and
    // per-descriptor setup (~1.35x here); the larger gap is on the SSD
    // side (next test) where scattered requests pay page reads.
    assert!(
        t_mapped * 12 < t_unmapped * 10,
        "cluster-contiguous {t_mapped} ps should be >1.2x faster than scattered {t_unmapped} ps"
    );
}

#[test]
fn mapped_plan_is_faster_on_ssd() {
    let (mapped, unmapped, _) = plans();
    let mut ssd_a = Ssd::new(SsdConfig::bg6_class());
    let mut ssd_b = Ssd::new(SsdConfig::bg6_class());
    let t_mapped: u64 = mapped
        .transactions
        .iter()
        .map(|tx| ssd_a.read_contiguous(tx.bytes))
        .sum();
    let t_unmapped: u64 = unmapped
        .transactions
        .iter()
        .map(|tx| ssd_b.read_scattered(1, tx.bytes))
        .sum();
    assert!(
        t_mapped < t_unmapped,
        "contiguous {t_mapped} ps should beat scattered {t_unmapped} ps"
    );
}

#[test]
fn hot_window_residency_avoids_traffic_entirely() {
    let mut k = Kvmu::new(1024, TOKEN_BYTES);
    for _ in 0..512 {
        k.append_token(Some(0));
    }
    let plan = k.plan_fetch(&(0..512).collect::<Vec<_>>());
    assert_eq!(plan.hot_hits, 512);
    assert_eq!(plan.total_bytes(), 0, "resident window needs no transfer");
}
