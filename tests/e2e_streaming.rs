//! End-to-end functional integration: every retrieval policy drives the
//! same streaming LLM through frames, a question, and generation.

use vrex::core::resv::{ResvConfig, ResvPolicy};
use vrex::model::{ModelConfig, RetrievalPolicy, RunStats, StreamingVideoLlm, VideoStream};
use vrex::retrieval::{FlexGenPolicy, InfiniGenPPolicy, InfiniGenPolicy, RekvPolicy};
use vrex::workload::{CoinTask, SessionGenerator};

fn policies(cfg: &ModelConfig) -> Vec<Box<dyn RetrievalPolicy>> {
    vec![
        Box::new(FlexGenPolicy::new()),
        Box::new(InfiniGenPolicy::paper_defaults()),
        Box::new(InfiniGenPPolicy::paper_defaults()),
        Box::new(RekvPolicy::paper_defaults(cfg.tokens_per_frame)),
        Box::new(ResvPolicy::new(cfg, ResvConfig::paper_defaults())),
        Box::new(ResvPolicy::new(cfg, ResvConfig::without_clustering())),
    ]
}

fn run_session(
    cfg: &ModelConfig,
    policy: &mut dyn RetrievalPolicy,
) -> (Vec<usize>, RunStats, RunStats) {
    let mut llm = StreamingVideoLlm::new(cfg.clone(), 21);
    let mut video =
        VideoStream::new(CoinTask::Step.video_config(cfg.tokens_per_frame, cfg.hidden_dim, 13));
    let mut questions = SessionGenerator::new(77);
    let mut prefill = RunStats::new(cfg, true);
    for _ in 0..10 {
        let f = video.next_frame();
        llm.process_frame(&f, policy, &mut prefill);
        llm.cache().assert_coherent();
    }
    let q = questions.question_ids(8);
    let hidden = llm.process_text(&q, policy, &mut prefill);
    let mut generation = RunStats::new(cfg, true);
    let answer = llm.generate(&hidden, 6, policy, &mut generation);
    llm.cache().assert_coherent();
    assert_eq!(
        llm.cache().len(),
        10 * cfg.tokens_per_frame + q.len() + answer.len(),
        "cache must grow by exactly the processed tokens"
    );
    (answer, prefill, generation)
}

#[test]
fn every_policy_completes_a_session_coherently() {
    let cfg = ModelConfig::tiny();
    for mut p in policies(&cfg) {
        let (answer, prefill, generation) = run_session(&cfg, p.as_mut());
        assert_eq!(answer.len(), 6, "{} produced wrong answer length", p.name());
        let ratio = prefill.overall_ratio();
        assert!((0.0..=1.0).contains(&ratio), "{}: ratio {ratio}", p.name());
        assert!(
            generation.overall_ratio() <= 1.0,
            "{}: generation ratio out of range",
            p.name()
        );
    }
}

#[test]
fn sessions_are_deterministic_per_policy() {
    let cfg = ModelConfig::tiny();
    let run = |mk: &dyn Fn() -> Box<dyn RetrievalPolicy>| {
        let mut p = mk();
        run_session(&cfg, p.as_mut()).0
    };
    let a = run(&|| Box::new(ResvPolicy::new(&cfg, ResvConfig::paper_defaults())));
    let b = run(&|| Box::new(ResvPolicy::new(&cfg, ResvConfig::paper_defaults())));
    assert_eq!(a, b);
}

#[test]
fn resv_ratio_is_lowest_among_prefill_retrievers() {
    // Table II's qualitative claim: ReSV's frame-stage ratio undercuts
    // the fixed-ratio baselines that retrieve during prefill.
    let cfg = ModelConfig::tiny();
    let ratio_of = |mut p: Box<dyn RetrievalPolicy>| {
        let (_, prefill, _) = run_session(&cfg, p.as_mut());
        prefill.overall_ratio()
    };
    let resv = ratio_of(Box::new(ResvPolicy::new(
        &cfg,
        ResvConfig::paper_defaults(),
    )));
    let igp = ratio_of(Box::new(InfiniGenPPolicy::paper_defaults()));
    let rekv = ratio_of(Box::new(RekvPolicy::paper_defaults(cfg.tokens_per_frame)));
    let infinigen = ratio_of(Box::new(InfiniGenPolicy::paper_defaults()));
    assert!(resv < igp, "ReSV {resv} vs InfiniGenP {igp}");
    assert!(resv < rekv, "ReSV {resv} vs ReKV {rekv}");
    assert!(
        (infinigen - 1.0).abs() < 1e-9,
        "InfiniGen fetches all during prefill"
    );
}

#[test]
fn recall_beats_ratio_for_prediction_policies() {
    // Any importance-driven selection must capture more attention mass
    // than a random subset of the same size would (recall > ratio).
    let cfg = ModelConfig::tiny();
    for mut p in policies(&cfg) {
        let name = p.name().to_string();
        let (_, prefill, _) = run_session(&cfg, p.as_mut());
        let (ratio, recall) = (prefill.overall_ratio(), prefill.mean_recall());
        if ratio < 0.99 {
            assert!(
                recall > ratio,
                "{name}: recall {recall:.3} does not beat ratio {ratio:.3}"
            );
        }
    }
}

#[test]
fn generation_ratios_are_below_prefill_ratios() {
    // Table II lower half: every retrieval method selects far less
    // during single-query generation than during multi-token prefill.
    let cfg = ModelConfig::tiny();
    let stage_filtering: Vec<Box<dyn RetrievalPolicy>> = vec![
        Box::new(InfiniGenPolicy::paper_defaults()),
        Box::new(InfiniGenPPolicy::paper_defaults()),
        Box::new(RekvPolicy::paper_defaults(cfg.tokens_per_frame)),
    ];
    for mut p in stage_filtering {
        let (_, prefill, generation) = run_session(&cfg, p.as_mut());
        assert!(
            generation.overall_ratio() <= prefill.overall_ratio() + 1e-9,
            "{}: generation ratio above prefill",
            p.name()
        );
    }
}
