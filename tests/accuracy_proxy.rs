//! Integration: the Table II accuracy-proxy pipeline across all tasks
//! and methods (functional model + retrieval algorithms + proxy map).

use vrex::core::resv::{ResvConfig, ResvPolicy};
use vrex::model::ModelConfig;
use vrex::retrieval::{FlexGenPolicy, InfiniGenPPolicy, RekvPolicy};
use vrex::workload::accuracy::{evaluate_policy, EvalConfig};
use vrex::workload::COIN_TASKS;

fn eval() -> EvalConfig {
    EvalConfig {
        frames: 10,
        question_tokens: 8,
        answer_tokens: 4,
        seed: 2024,
    }
}

#[test]
fn vanilla_scores_exactly_the_paper_baseline_on_every_task() {
    let cfg = ModelConfig::tiny();
    for task in COIN_TASKS {
        let mut p = FlexGenPolicy::new();
        let r = evaluate_policy(&cfg, task, &mut p, eval());
        assert!(
            (r.proxy_top1 - task.reference().vanilla_top1).abs() < 1e-9,
            "{}: full fetch must anchor at the vanilla baseline",
            task.label()
        );
        assert!(r.output_divergence < 1e-6);
    }
}

#[test]
fn resv_accuracy_drop_is_smaller_than_infinigenp_on_average() {
    // The small config (head_dim 32) is the smallest where hash-bit
    // clustering behaves like it does at Llama dimensions; the tiny
    // config's 16-dim heads let RoPE scramble too many hash bits.
    let cfg = ModelConfig::small();
    let e = EvalConfig {
        frames: 8,
        ..eval()
    };
    let mut resv_drop = 0.0;
    let mut igp_drop = 0.0;
    for task in COIN_TASKS.iter().take(3) {
        let base = task.reference().vanilla_top1;
        let mut resv = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
        resv_drop += base - evaluate_policy(&cfg, *task, &mut resv, e).proxy_top1;
        let mut igp = InfiniGenPPolicy::paper_defaults();
        igp_drop += base - evaluate_policy(&cfg, *task, &mut igp, e).proxy_top1;
    }
    assert!(
        resv_drop <= igp_drop + 0.25,
        "ReSV mean drop {:.3} should not exceed InfiniGenP {:.3}",
        resv_drop / 3.0,
        igp_drop / 3.0
    );
}

#[test]
fn resv_uses_fewer_tokens_than_rekv_in_both_stages() {
    // Paper: ReSV retrieves ~3x fewer tokens than ReKV on average. The
    // untrained functional model's flatter attention narrows the gap,
    // but the ordering must hold in both stages, decisively so during
    // generation.
    let cfg = ModelConfig::small();
    let e = EvalConfig {
        frames: 8,
        ..eval()
    };
    let (mut resv_f, mut resv_t, mut rekv_f, mut rekv_t) = (0.0, 0.0, 0.0, 0.0);
    for task in COIN_TASKS.iter().take(3) {
        let mut resv = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
        let r = evaluate_policy(&cfg, *task, &mut resv, e);
        resv_f += r.frame_ratio_pct;
        resv_t += r.text_ratio_pct;
        let mut rekv = RekvPolicy::paper_defaults(cfg.tokens_per_frame);
        let k = evaluate_policy(&cfg, *task, &mut rekv, e);
        rekv_f += k.frame_ratio_pct;
        rekv_t += k.text_ratio_pct;
    }
    assert!(
        resv_f < rekv_f,
        "frame: ReSV {resv_f:.1} vs ReKV {rekv_f:.1}"
    );
    assert!(
        resv_t * 1.5 < rekv_t,
        "text: ReSV {resv_t:.1} vs ReKV {rekv_t:.1}"
    );
}

#[test]
fn per_task_ratios_vary_with_task_statistics() {
    // Table II: ReSV's thresholding adapts per task (Proc. selects the
    // least; busier tasks more). We require measurable spread.
    let cfg = ModelConfig::tiny();
    let mut ratios = Vec::new();
    for task in COIN_TASKS {
        let mut resv = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
        ratios.push(evaluate_policy(&cfg, task, &mut resv, eval()).frame_ratio_pct);
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max - min > 0.5,
        "ratios should vary across tasks, got {ratios:?}"
    );
}

#[test]
fn divergence_correlates_with_recall_loss() {
    let cfg = ModelConfig::tiny();
    let mut points = Vec::new();
    for ratio in [0.05, 0.3, 0.9] {
        let mut p = InfiniGenPPolicy::new(ratio, ratio);
        let r = evaluate_policy(&cfg, COIN_TASKS[0], &mut p, eval());
        points.push((r.frame_recall, r.output_divergence));
    }
    // Higher recall -> lower divergence, monotonically here.
    assert!(points[0].0 < points[2].0);
    assert!(
        points[0].1 > points[2].1,
        "divergence should fall as recall rises: {points:?}"
    );
}
