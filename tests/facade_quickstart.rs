//! Smoke test mirroring the `vrex` facade's quickstart doctest
//! (`src/lib.rs`): the exact flow a new user copies must keep working
//! as a plain integration test too, where failures produce full
//! backtraces instead of doctest output.

use vrex::core::resv::{ResvConfig, ResvPolicy};
use vrex::model::policy::Selection;
use vrex::model::{ModelConfig, RunStats, StreamingVideoLlm};
use vrex::model::{VideoStream, VideoStreamConfig};

#[test]
fn quickstart_flow_runs_and_filters() {
    let cfg = ModelConfig::tiny();
    let mut llm = StreamingVideoLlm::new(cfg.clone(), 7);
    let mut policy = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
    let mut video = VideoStream::new(VideoStreamConfig::coin_like(
        cfg.tokens_per_frame,
        cfg.hidden_dim,
        9,
    ));
    let mut stats = RunStats::new(&cfg, false);
    for _ in 0..5 {
        let frame = video.next_frame();
        llm.process_frame(&frame, &mut policy, &mut stats);
    }
    let ratio = stats.overall_ratio();
    assert!(ratio > 0.0, "ratio must be positive, got {ratio}");
    assert!(ratio < 1.0, "ReSV must filter the cache, got {ratio}");
    assert_eq!(llm.cache().len(), 5 * cfg.tokens_per_frame);
}

#[test]
fn facade_reexports_cover_the_workspace() {
    // Every layer of the DAG is reachable through the facade; touching
    // one symbol per crate keeps the re-export seam honest.
    let _ = vrex::tensor::Matrix::zeros(2, 2);
    let _ = vrex::model::ModelConfig::tiny();
    let _ = vrex::core::resv::ResvConfig::paper_defaults();
    let _ = vrex::retrieval::FlexGenPolicy::new();
    let _ = vrex::hwsim::dram::DramConfig::lpddr5_204gb();
    let _ = vrex::workload::COIN_TASKS;
    let _ = vrex::system::PlatformSpec::vrex8();
}

#[test]
fn facade_exposes_the_refactored_selection_api() {
    let resolved = Selection::All.resolve(4);
    assert_eq!(resolved.indices(), &[0, 1, 2, 3]);
    assert!(Selection::All.materialized().is_none());
}
