//! Dense row-major `f32` matrix.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f32` values.
///
/// This is the single tensor type used across the whole V-Rex
/// reproduction. It is intentionally simple: owned storage, eager
/// operations, no views. Model dimensions in tests and functional
/// experiments are small enough that clarity wins over absolute speed,
/// while the benchmark harness exercises the O(n·m·k) kernels directly.
///
/// # Examples
///
/// ```
/// use vrex_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 6.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// # use vrex_tensor::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.data().iter().sum::<f32>(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from an owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns a new matrix containing the given rows, in order.
    ///
    /// Used by retrieval policies to gather selected KV entries.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Appends the rows of `other` below `self`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn append_rows(&mut self, other: &Matrix) {
        if self.rows == 0 && self.cols == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(self.cols, other.cols, "column mismatch in append_rows");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product against the transpose of `other`: `self · otherᵀ`.
    ///
    /// This is the attention-score kernel (`Q · Kᵀ`); it avoids
    /// materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy with every element multiplied by `s`.
    pub fn scaled(&self, s: f32) -> Matrix {
        let mut m = self.clone();
        m.scale_in_place(s);
        m
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch in add");
        assert_eq!(self.cols, rhs.cols, "shape mismatch in add");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch in sub");
        assert_eq!(self.cols, rhs.cols, "shape mismatch in sub");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f32) -> Matrix {
        self.scaled(s)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.25], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn matmul_transposed_equals_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, 2.0, 2.0]]);
        let via_t = a.matmul(&b.transposed());
        let fused = a.matmul_transposed(&b);
        assert!(via_t.max_abs_diff(&fused) < 1e-6);
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let m = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g, Matrix::from_rows(&[&[2.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    fn append_rows_grows_matrix() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0]]);
        m.append_rows(&Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn append_rows_into_empty_adopts_shape() {
        let mut m = Matrix::default();
        m.append_rows(&Matrix::from_rows(&[&[9.0, 8.0, 7.0]]));
        assert_eq!((m.rows(), m.cols()), (1, 3));
    }

    #[test]
    fn add_sub_are_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[11.0, 22.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[9.0, 18.0]]));
    }

    #[test]
    fn frobenius_norm_of_unit_axes() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn transposed_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn debug_is_never_empty() {
        let s = format!("{:?}", Matrix::zeros(0, 0));
        assert!(!s.is_empty());
    }
}
