//! Top-k selection primitives.
//!
//! Fixed top-k is the selection rule used by the GPU-oriented baselines
//! (FlexGen, InfiniGen, InfiniGenP, ReKV in the paper's framing); ReSV
//! replaces it with WiCSum thresholding (see `vrex-core::wicsum`). These
//! helpers implement the fixed-k primitive the baselines share.
//!
//! Both helpers order values with [`f32::total_cmp`], so NaN inputs rank
//! identically everywhere: positive NaN above `+inf`, negative NaN below
//! `-inf`. Selection runs as an `O(n)` partial selection
//! (`select_nth_unstable_by`) followed by an `O(k log k)` sort of the
//! survivors, rather than a full sort.

use std::cmp::Ordering;

/// Descending-value, ascending-index order over positions of `values`.
///
/// This single comparator drives both selection and the final sort, so
/// the documented tie rule (lower index first) holds throughout — and
/// holds for NaN ties too.
fn rank_desc(values: &[f32]) -> impl Fn(&usize, &usize) -> Ordering + '_ {
    move |&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b))
}

/// Returns the indices of the `k` largest values, in descending value
/// order. Ties resolve to the lower index first, which keeps selection
/// deterministic across runs.
///
/// If `k >= values.len()` all indices are returned (still sorted by
/// value). NaN values rank by `f32::total_cmp` (positive NaN sorts as
/// the largest value), consistent with [`top_k_threshold`].
///
/// # Examples
///
/// ```
/// use vrex_tensor::top_k_indices;
///
/// assert_eq!(top_k_indices(&[0.1, 0.9, 0.5], 2), vec![1, 2]);
/// ```
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let k = k.min(values.len());
    if k == 0 {
        return Vec::new();
    }
    let cmp = rank_desc(values);
    let mut idx: Vec<usize> = (0..values.len()).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, &cmp);
        idx.truncate(k);
    }
    idx.sort_unstable_by(&cmp);
    idx
}

/// Returns the value of the `k`-th largest element (1-indexed by rank),
/// i.e. the threshold a fixed top-k policy implicitly applies.
///
/// Returns `f32::NEG_INFINITY` when `k == 0`, the slice is empty, or
/// `k >= values.len()`: top-k then selects everything, so the implicit
/// threshold is −∞ (nothing is excluded). Ranking uses
/// [`f32::total_cmp`], consistent with [`top_k_indices`].
pub fn top_k_threshold(values: &[f32], k: usize) -> f32 {
    if k == 0 || k >= values.len() {
        return f32::NEG_INFINITY;
    }
    let mut sorted: Vec<f32> = values.to_vec();
    let (_, kth, _) = sorted.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
    *kth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_returns_largest_in_order() {
        let v = [3.0, 1.0, 4.0, 1.5, 9.0];
        assert_eq!(top_k_indices(&v, 3), vec![4, 2, 0]);
    }

    #[test]
    fn top_k_with_large_k_returns_all() {
        let v = [2.0, 1.0];
        assert_eq!(top_k_indices(&v, 10), vec![0, 1]);
    }

    #[test]
    fn top_k_ties_prefer_lower_index() {
        let v = [1.0, 1.0, 1.0];
        assert_eq!(top_k_indices(&v, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_zero_is_empty() {
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn threshold_matches_rank() {
        let v = [5.0, 3.0, 8.0, 1.0];
        assert_eq!(top_k_threshold(&v, 1), 8.0);
        assert_eq!(top_k_threshold(&v, 2), 5.0);
        assert_eq!(top_k_threshold(&v, 3), 3.0);
        assert_eq!(top_k_threshold(&v, 0), f32::NEG_INFINITY);
    }

    #[test]
    fn threshold_is_neg_infinity_when_k_selects_everything() {
        // k == len and k > len both select the whole slice; the
        // implicit cutoff is therefore −∞, not the minimum element.
        let v = [5.0, 3.0, 8.0, 1.0];
        assert_eq!(top_k_threshold(&v, 4), f32::NEG_INFINITY);
        assert_eq!(top_k_threshold(&v, 5), f32::NEG_INFINITY);
        assert_eq!(top_k_threshold(&[], 3), f32::NEG_INFINITY);
    }

    #[test]
    fn nan_ranks_identically_in_both_helpers() {
        // total_cmp puts positive NaN above +inf, so a NaN is the
        // rank-1 element for *both* helpers.
        let v = [1.0, f32::NAN, 3.0, 2.0];
        assert_eq!(top_k_indices(&v, 2), vec![1, 2]);
        assert!(top_k_threshold(&v, 1).is_nan());
        assert_eq!(top_k_threshold(&v, 2), 3.0);
        // The indices selected by threshold-k and index-k agree: the
        // values >= threshold (in total order) are exactly the top-k.
        let thr = top_k_threshold(&v, 2);
        let by_thr: Vec<usize> = (0..v.len())
            .filter(|&i| v[i].total_cmp(&thr).is_ge())
            .collect();
        let mut by_k = top_k_indices(&v, 2);
        by_k.sort_unstable();
        assert_eq!(by_thr, by_k);
    }

    #[test]
    fn nan_ties_prefer_lower_index() {
        let v = [f32::NAN, f32::NAN, 1.0];
        assert_eq!(top_k_indices(&v, 2), vec![0, 1]);
    }

    #[test]
    fn negative_nan_ranks_below_neg_infinity() {
        let neg_nan = -f32::NAN;
        let v = [neg_nan, f32::NEG_INFINITY, 0.0];
        assert_eq!(top_k_indices(&v, 3), vec![2, 1, 0]);
    }
}
