//! Top-k selection primitives.
//!
//! Fixed top-k is the selection rule used by the GPU-oriented baselines
//! (FlexGen, InfiniGen, InfiniGenP, ReKV in the paper's framing); ReSV
//! replaces it with WiCSum thresholding (see `vrex-core::wicsum`). These
//! helpers implement the fixed-k primitive the baselines share.

/// Returns the indices of the `k` largest values, in descending value
/// order. Ties resolve to the lower index first, which keeps selection
/// deterministic across runs.
///
/// If `k >= values.len()` all indices are returned (still sorted by
/// value).
///
/// # Examples
///
/// ```
/// use vrex_tensor::top_k_indices;
///
/// assert_eq!(top_k_indices(&[0.1, 0.9, 0.5], 2), vec![1, 2]);
/// ```
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k.min(values.len()));
    idx
}

/// Returns the value of the `k`-th largest element (1-indexed by rank),
/// i.e. the threshold a fixed top-k policy implicitly applies.
///
/// Returns `f32::NEG_INFINITY` when `k == 0` or the slice is empty.
pub fn top_k_threshold(values: &[f32], k: usize) -> f32 {
    if k == 0 || values.is_empty() {
        return f32::NEG_INFINITY;
    }
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    sorted[(k - 1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_returns_largest_in_order() {
        let v = [3.0, 1.0, 4.0, 1.5, 9.0];
        assert_eq!(top_k_indices(&v, 3), vec![4, 2, 0]);
    }

    #[test]
    fn top_k_with_large_k_returns_all() {
        let v = [2.0, 1.0];
        assert_eq!(top_k_indices(&v, 10), vec![0, 1]);
    }

    #[test]
    fn top_k_ties_prefer_lower_index() {
        let v = [1.0, 1.0, 1.0];
        assert_eq!(top_k_indices(&v, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_zero_is_empty() {
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn threshold_matches_rank() {
        let v = [5.0, 3.0, 8.0, 1.0];
        assert_eq!(top_k_threshold(&v, 1), 8.0);
        assert_eq!(top_k_threshold(&v, 2), 5.0);
        assert_eq!(top_k_threshold(&v, 4), 1.0);
        assert_eq!(top_k_threshold(&v, 0), f32::NEG_INFINITY);
    }
}
