//! Row-wise and element-wise neural-network operations.
//!
//! These are the handful of kernels the streaming video LLM pipeline
//! needs: numerically stable softmax, rotary position embeddings
//! (applied to queries/keys before any ReSV hashing, exactly as the
//! paper specifies — hash bits are computed *after* RoPE), RMS
//! normalisation, SiLU, and cosine similarity (used to validate the
//! hash-bit Hamming distance against true similarity, paper Fig. 7).

use crate::Matrix;

/// Applies a numerically stable softmax to each row in place.
///
/// Rows that are entirely `-inf` (fully masked) become all zeros rather
/// than NaN so downstream weighted sums stay finite.
///
/// # Examples
///
/// ```
/// use vrex_tensor::{Matrix, ops};
///
/// let mut m = Matrix::from_rows(&[&[0.0, 0.0]]);
/// ops::softmax_rows(&mut m);
/// assert!((m[(0, 0)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if max == f32::NEG_INFINITY {
            row.fill(0.0);
            continue;
        }
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Rotary position embedding applied to a `(tokens × dim)` matrix in
/// place, where row `i` is the token at absolute position
/// `start_pos + i`.
///
/// Pairs of dimensions `(2k, 2k+1)` are rotated by
/// `theta = pos · base^(-2k/dim)` with the conventional `base = 10000`.
///
/// # Panics
///
/// Panics if `dim` is odd.
pub fn apply_rope(m: &mut Matrix, start_pos: usize) {
    let dim = m.cols();
    assert!(
        dim % 2 == 0,
        "RoPE requires an even head dimension, got {dim}"
    );
    let half = dim / 2;
    let inv_freq: Vec<f32> = (0..half)
        .map(|k| 10000f32.powf(-2.0 * k as f32 / dim as f32))
        .collect();
    for r in 0..m.rows() {
        let pos = (start_pos + r) as f32;
        let row = m.row_mut(r);
        for k in 0..half {
            let theta = pos * inv_freq[k];
            let (sin, cos) = theta.sin_cos();
            let a = row[2 * k];
            let b = row[2 * k + 1];
            row[2 * k] = a * cos - b * sin;
            row[2 * k + 1] = a * sin + b * cos;
        }
    }
}

/// RMS-normalises each row in place and multiplies by `gain`.
///
/// # Panics
///
/// Panics if `gain.len() != m.cols()`.
pub fn rmsnorm_rows(m: &mut Matrix, gain: &[f32]) {
    assert_eq!(gain.len(), m.cols(), "gain length must match columns");
    const EPS: f32 = 1e-5;
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let ms = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
        let inv = 1.0 / (ms + EPS).sqrt();
        for (v, g) in row.iter_mut().zip(gain) {
            *v *= inv * g;
        }
    }
}

/// SiLU activation (`x · sigmoid(x)`) applied element-wise in place.
pub fn silu_in_place(m: &mut Matrix) {
    for v in m.data_mut() {
        *v = *v / (1.0 + (-*v).exp());
    }
}

/// Cosine similarity between two equal-length vectors.
///
/// Returns `0.0` when either vector has zero norm.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity length mismatch");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// Used to reproduce the paper's Fig. 7b claim that hash-bit Hamming
/// distance tracks cosine similarity with |r| ≈ 0.8.
///
/// Returns `0.0` for samples shorter than 2 or with zero variance.
pub fn pearson_correlation(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len(), "pearson_correlation length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f32>() / n as f32;
    let my = ys.iter().sum::<f32>() / n as f32;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        softmax_rows(&mut m);
        for r in 0..m.rows() {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let mut b = Matrix::from_rows(&[&[101.0, 102.0, 103.0]]);
        softmax_rows(&mut a);
        softmax_rows(&mut b);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn softmax_fully_masked_row_is_zero() {
        let mut m = Matrix::from_rows(&[&[f32::NEG_INFINITY, f32::NEG_INFINITY]]);
        softmax_rows(&mut m);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn rope_preserves_vector_norm() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let before = m.frobenius_norm();
        apply_rope(&mut m, 17);
        assert!((m.frobenius_norm() - before).abs() < 1e-5);
    }

    #[test]
    fn rope_at_position_zero_is_identity() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let orig = m.clone();
        apply_rope(&mut m, 0);
        assert!(m.max_abs_diff(&orig) < 1e-6);
    }

    #[test]
    fn rope_depends_on_absolute_position() {
        let mut a = Matrix::from_rows(&[&[1.0, 0.0]]);
        let mut b = Matrix::from_rows(&[&[1.0, 0.0]]);
        apply_rope(&mut a, 1);
        apply_rope(&mut b, 2);
        assert!(a.max_abs_diff(&b) > 1e-3);
    }

    #[test]
    fn rmsnorm_produces_unit_rms_with_unit_gain() {
        let mut m = Matrix::from_rows(&[&[3.0, -4.0, 12.0, 0.5]]);
        rmsnorm_rows(&mut m, &[1.0; 4]);
        let ms: f32 = m.row(0).iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((ms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn silu_matches_reference_values() {
        let mut m = Matrix::from_rows(&[&[0.0, 1.0]]);
        silu_in_place(&mut m);
        assert!((m[(0, 0)] - 0.0).abs() < 1e-6);
        assert!((m[(0, 1)] - 0.731_058_6).abs() < 1e-5);
    }

    #[test]
    fn cosine_similarity_identical_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-6);
        let neg: Vec<f32> = ys.iter().map(|v| -v).collect();
        assert!((pearson_correlation(&xs, &neg) + 1.0).abs() < 1e-6);
    }
}
