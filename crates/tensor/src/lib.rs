//! # vrex-tensor
//!
//! Minimal dense linear-algebra substrate for the V-Rex reproduction.
//!
//! The streaming video LLM (`vrex-model`), the ReSV retrieval algorithm
//! (`vrex-core`) and all baseline retrieval methods operate on plain
//! row-major `f32` matrices provided by this crate. The crate deliberately
//! implements only what the paper's pipeline needs — matrix products,
//! row-wise softmax, rotary position embeddings, RMS norm, activation
//! functions, top-k selection and the KV-cache quantization used by the
//! Oaken baseline — with no external BLAS dependency so the whole
//! reproduction is self-contained and deterministic.
//!
//! ```
//! use vrex_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

#![warn(missing_docs)]

pub mod matrix;
pub mod ops;
pub mod quant;
pub mod rng;
pub mod topk;

pub use matrix::Matrix;
pub use quant::{QuantScheme, QuantizedMatrix};
pub use topk::{top_k_indices, top_k_threshold};
