//! Seeded random matrix construction.
//!
//! Every stochastic component of the reproduction (model weights, ReSV
//! hyperplanes, synthetic video) is seeded so experiment binaries are
//! bit-reproducible run to run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Matrix;

/// Returns the workspace-standard deterministic RNG for `seed`.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
pub fn uniform_matrix(rng: &mut StdRng, rows: usize, cols: usize, scale: f32) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-scale..=scale))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Creates a matrix with approximately standard-normal entries scaled by
/// `std`, using a Box–Muller transform (keeps the dependency surface to
/// `rand` core only).
pub fn gaussian_matrix(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let mag = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mag * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(mag * theta.sin() * std);
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// Xavier-style initialisation for a `fan_in × fan_out` weight matrix.
pub fn xavier_matrix(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
    let scale = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_matrix(rng, fan_in, fan_out, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        let a = uniform_matrix(&mut seeded_rng(7), 4, 4, 1.0);
        let b = uniform_matrix(&mut seeded_rng(7), 4, 4, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform_matrix(&mut seeded_rng(1), 4, 4, 1.0);
        let b = uniform_matrix(&mut seeded_rng(2), 4, 4, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_scale() {
        let m = uniform_matrix(&mut seeded_rng(3), 32, 32, 0.5);
        assert!(m.data().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn gaussian_has_roughly_zero_mean_unit_std() {
        let m = gaussian_matrix(&mut seeded_rng(11), 64, 64, 1.0);
        let mean = m.mean();
        let var = m.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
