//! KV-cache quantization.
//!
//! Implements the group-wise low-bit quantization used by the Oaken
//! baseline (4-bit online KV-cache quantization, paper Fig. 15) plus a
//! bf16 rounding helper used when modelling BF16 storage footprints.

use crate::Matrix;

/// Quantization scheme for a [`QuantizedMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantScheme {
    /// 4-bit signed integers with a per-group scale (Oaken-style).
    Int4 {
        /// Number of consecutive elements sharing one scale.
        group_size: usize,
    },
    /// 8-bit signed integers with a per-group scale.
    Int8 {
        /// Number of consecutive elements sharing one scale.
        group_size: usize,
    },
}

impl QuantScheme {
    /// Bits per stored element (excluding scales).
    pub fn bits(&self) -> u32 {
        match self {
            QuantScheme::Int4 { .. } => 4,
            QuantScheme::Int8 { .. } => 8,
        }
    }

    fn group_size(&self) -> usize {
        match *self {
            QuantScheme::Int4 { group_size } | QuantScheme::Int8 { group_size } => group_size,
        }
    }

    fn qmax(&self) -> f32 {
        match self {
            QuantScheme::Int4 { .. } => 7.0,
            QuantScheme::Int8 { .. } => 127.0,
        }
    }

    /// Storage bytes needed for `elements` values under this scheme,
    /// including the per-group `f16` scales. This is the figure the
    /// memory-capacity model uses for Oaken's effective cache size.
    pub fn storage_bytes(&self, elements: usize) -> usize {
        let g = self.group_size();
        let groups = elements.div_ceil(g);
        (elements * self.bits() as usize).div_ceil(8) + groups * 2
    }
}

/// A matrix stored in group-quantized low precision.
///
/// Only the round trip (quantize → dequantize) and the storage size are
/// needed by the evaluation: Oaken's accuracy effect enters through the
/// dequantization error on attention keys/values, and its capacity
/// effect through [`QuantScheme::storage_bytes`].
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    scheme: QuantScheme,
    codes: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `m` row by row under `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if the scheme's group size is zero.
    pub fn quantize(m: &Matrix, scheme: QuantScheme) -> Self {
        let g = scheme.group_size();
        assert!(g > 0, "group size must be positive");
        let qmax = scheme.qmax();
        let mut codes = Vec::with_capacity(m.len());
        let mut scales = Vec::new();
        for row in m.iter_rows() {
            for group in row.chunks(g) {
                let amax = group.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                let scale = if amax == 0.0 { 1.0 } else { amax / qmax };
                scales.push(scale);
                for &v in group {
                    codes.push((v / scale).round().clamp(-qmax, qmax) as i8);
                }
            }
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            scheme,
            codes,
            scales,
        }
    }

    /// Reconstructs the full-precision approximation.
    pub fn dequantize(&self) -> Matrix {
        let g = self.scheme.group_size();
        let groups_per_row = self.cols.div_ceil(g);
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let group = r * groups_per_row + c / g;
                let code = self.codes[r * self.cols + c];
                data.push(code as f32 * self.scales[group]);
            }
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Storage bytes of this quantized matrix (codes + scales).
    pub fn storage_bytes(&self) -> usize {
        self.scheme.storage_bytes(self.rows * self.cols)
    }

    /// The scheme this matrix was quantized under.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }
}

/// Rounds an `f32` to the nearest bf16-representable value (truncating
/// the low 16 mantissa bits with round-to-nearest-even).
pub fn round_to_bf16(v: f32) -> f32 {
    let bits = v.to_bits();
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    f32::from_bits(rounded & 0xFFFF_0000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{gaussian_matrix, seeded_rng};

    #[test]
    fn int4_round_trip_error_is_bounded() {
        let m = gaussian_matrix(&mut seeded_rng(5), 16, 64, 1.0);
        let q = QuantizedMatrix::quantize(&m, QuantScheme::Int4 { group_size: 32 });
        let d = q.dequantize();
        // max error per group ≤ scale/2 = amax/14; amax ≤ ~4 sigma here.
        let err = m.max_abs_diff(&d);
        assert!(err < 0.5, "int4 error too large: {err}");
    }

    #[test]
    fn int8_is_more_accurate_than_int4() {
        let m = gaussian_matrix(&mut seeded_rng(6), 8, 64, 1.0);
        let e4 = m.max_abs_diff(
            &QuantizedMatrix::quantize(&m, QuantScheme::Int4 { group_size: 32 }).dequantize(),
        );
        let e8 = m.max_abs_diff(
            &QuantizedMatrix::quantize(&m, QuantScheme::Int8 { group_size: 32 }).dequantize(),
        );
        assert!(e8 < e4, "int8 err {e8} should beat int4 err {e4}");
    }

    #[test]
    fn zero_matrix_round_trips_exactly() {
        let m = Matrix::zeros(4, 8);
        let q = QuantizedMatrix::quantize(&m, QuantScheme::Int4 { group_size: 4 });
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn storage_bytes_counts_codes_and_scales() {
        // 128 elements int4 = 64 bytes + 4 groups * 2B scales = 72.
        let s = QuantScheme::Int4 { group_size: 32 }.storage_bytes(128);
        assert_eq!(s, 72);
        // int4 storage is ~4x smaller than f16.
        assert!(s * 3 < 128 * 2);
    }

    #[test]
    fn bf16_rounding_keeps_high_bits() {
        assert_eq!(round_to_bf16(1.0), 1.0);
        let v = 1.000_123_4_f32;
        let r = round_to_bf16(v);
        assert!((r - v).abs() < 0.01);
        assert_eq!(r.to_bits() & 0xFFFF, 0);
    }
}
