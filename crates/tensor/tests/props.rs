//! Property tests for the tensor substrate: algebraic identities the
//! rest of the reproduction silently relies on.

use proptest::prelude::*;
use vrex_tensor::rng::{gaussian_matrix, seeded_rng};
use vrex_tensor::{ops, Matrix, QuantScheme, QuantizedMatrix};

fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    gaussian_matrix(&mut seeded_rng(seed), rows, cols, 1.0)
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        n in 1usize..8, m in 1usize..8, k in 1usize..8, seed in 0u64..1000
    ) {
        let a = matrix(n, m, seed);
        let b = matrix(m, k, seed + 1);
        let c = matrix(m, k, seed + 2);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transpose_of_product_swaps_operands(
        n in 1usize..8, m in 1usize..8, k in 1usize..8, seed in 0u64..1000
    ) {
        let a = matrix(n, m, seed);
        let b = matrix(m, k, seed + 7);
        let lhs = a.matmul(&b).transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn matmul_transposed_is_consistent(
        n in 1usize..8, m in 1usize..8, k in 1usize..8, seed in 0u64..1000
    ) {
        let a = matrix(n, m, seed);
        let b = matrix(k, m, seed + 13);
        prop_assert!(a.matmul_transposed(&b).max_abs_diff(&a.matmul(&b.transposed())) < 1e-4);
    }

    #[test]
    fn softmax_rows_are_probability_distributions(
        rows in 1usize..8, cols in 1usize..16, seed in 0u64..1000
    ) {
        let mut m = matrix(rows, cols, seed);
        m.scale_in_place(5.0);
        ops::softmax_rows(&mut m);
        for r in 0..rows {
            let row = m.row(r);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row sums to {s}");
        }
    }

    #[test]
    fn softmax_preserves_ordering(cols in 2usize..16, seed in 0u64..1000) {
        let mut m = matrix(1, cols, seed);
        let orig = m.clone();
        ops::softmax_rows(&mut m);
        for i in 0..cols {
            for j in 0..cols {
                if orig[(0, i)] > orig[(0, j)] {
                    prop_assert!(m[(0, i)] >= m[(0, j)] - 1e-7);
                }
            }
        }
    }

    #[test]
    fn rope_is_an_isometry(tokens in 1usize..8, half_dim in 1usize..16, pos in 0usize..5000, seed in 0u64..1000) {
        let mut m = matrix(tokens, half_dim * 2, seed);
        let norms_before: Vec<f32> = (0..tokens)
            .map(|r| m.row(r).iter().map(|v| v * v).sum::<f32>().sqrt())
            .collect();
        ops::apply_rope(&mut m, pos);
        for (r, nb) in norms_before.iter().enumerate() {
            let na: f32 = m.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!((na - nb).abs() < 1e-3 * nb.max(1.0), "norm changed {nb} -> {na}");
        }
    }

    #[test]
    fn rope_preserves_relative_angles(half_dim in 1usize..8, pos in 0usize..1000, seed in 0u64..1000) {
        // RoPE's defining property: dot(q_i, k_j) depends only on i - j.
        // Rotating both vectors by the same position leaves the dot
        // product unchanged.
        let a = matrix(1, half_dim * 2, seed);
        let b = matrix(1, half_dim * 2, seed + 3);
        let dot = |x: &Matrix, y: &Matrix| -> f32 {
            x.row(0).iter().zip(y.row(0)).map(|(p, q)| p * q).sum()
        };
        let before = dot(&a, &b);
        let mut ar = a.clone();
        let mut br = b.clone();
        ops::apply_rope(&mut ar, pos);
        ops::apply_rope(&mut br, pos);
        prop_assert!((dot(&ar, &br) - before).abs() < 1e-2 * before.abs().max(1.0));
    }

    #[test]
    fn gather_rows_preserves_content(rows in 1usize..16, cols in 1usize..8, seed in 0u64..1000) {
        let m = matrix(rows, cols, seed);
        let idx: Vec<usize> = (0..rows).rev().collect();
        let g = m.gather_rows(&idx);
        for (out_r, &src_r) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(out_r), m.row(src_r));
        }
    }

    #[test]
    fn int4_quantization_error_is_bounded_by_half_step(
        rows in 1usize..6, cols in 1usize..64, seed in 0u64..1000
    ) {
        let m = matrix(rows, cols, seed);
        let q = QuantizedMatrix::quantize(&m, QuantScheme::Int4 { group_size: 16 });
        let d = q.dequantize();
        for r in 0..rows {
            for group_start in (0..cols).step_by(16) {
                let group_end = (group_start + 16).min(cols);
                let amax = m.row(r)[group_start..group_end]
                    .iter()
                    .fold(0.0f32, |a, &v| a.max(v.abs()));
                let step = if amax == 0.0 { 1.0 } else { amax / 7.0 };
                for c in group_start..group_end {
                    let err = (m[(r, c)] - d[(r, c)]).abs();
                    prop_assert!(err <= step / 2.0 + 1e-5, "err {err} > step/2 {}", step / 2.0);
                }
            }
        }
    }

    #[test]
    fn top_k_indices_are_actually_the_largest(
        values in proptest::collection::vec(-100.0f32..100.0, 1..64),
        k in 1usize..32,
    ) {
        let idx = vrex_tensor::top_k_indices(&values, k);
        let k_eff = k.min(values.len());
        prop_assert_eq!(idx.len(), k_eff);
        let threshold = idx.iter().map(|&i| values[i]).fold(f32::INFINITY, f32::min);
        let larger = values.iter().filter(|&&v| v > threshold).count();
        prop_assert!(larger < k_eff + 1);
        // No duplicates.
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), idx.len());
    }

    #[test]
    fn partial_top_k_matches_naive_full_sort(
        raw in proptest::collection::vec(-8i32..8, 1..64),
        k in 0usize..72,
    ) {
        // Quantized values force heavy ties, exercising the documented
        // lower-index tie rule on the select_nth fast path.
        let values: Vec<f32> = raw.iter().map(|&v| v as f32 * 0.5).collect();

        // Naive oracle: full sort by (value desc, index asc).
        let mut oracle: Vec<usize> = (0..values.len()).collect();
        oracle.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
        oracle.truncate(k.min(values.len()));

        prop_assert_eq!(vrex_tensor::top_k_indices(&values, k), oracle.clone());

        let expected_thr = if k == 0 || k >= values.len() {
            f32::NEG_INFINITY
        } else {
            values[oracle[k - 1]]
        };
        prop_assert_eq!(vrex_tensor::top_k_threshold(&values, k), expected_thr);
    }
}
