//! Multi-session traffic generation.
//!
//! The serving evaluation asks "how many concurrent COIN streams does a
//! platform sustain in real time?", so it needs a fleet of sessions
//! rather than the single stream of [`crate::session`]. This module
//! turns [`SessionGenerator`] output into per-session *plans*: a seeded
//! arrival time (staggered across a configurable window, so sessions
//! ramp up the way live traffic does instead of stampeding at t=0) plus
//! the session's event list. The serving scheduler in `vrex-system`
//! consumes the plans; this crate stays hardware-free.
//!
//! Arrival timestamps are integer picoseconds ([`SessionPlan::arrival_ps`],
//! via [`vrex_core::time`]): the event-driven scheduler compares and
//! adds timestamps exactly, so the float jitter draw is rounded to ps
//! once, here, and never re-enters time arithmetic.

use rand::Rng;
use vrex_core::time::{ps_to_seconds, seconds_to_ps};
use vrex_tensor::rng::seeded_rng;

use crate::session::{SessionEvent, SessionGenerator};

/// Parameters of a generated traffic fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Number of sessions offered to the system.
    pub sessions: usize,
    /// Interactions (frames + question + answer) per session.
    pub turns: usize,
    /// Arrivals are staggered uniformly at random across this window
    /// (seconds); 0 makes every session arrive at t=0.
    pub arrival_spread_s: f64,
    /// Seed for both arrival jitter and per-session event generation.
    pub seed: u64,
}

impl TrafficConfig {
    /// A small paper-average fleet: `sessions` streams of 2 turns each,
    /// ramping up over 10 seconds.
    pub fn paper_average(sessions: usize, seed: u64) -> Self {
        Self {
            sessions,
            turns: 2,
            arrival_spread_s: 10.0,
            seed,
        }
    }

    /// Generates the fleet: one [`SessionPlan`] per session, sorted by
    /// arrival time. Deterministic in `seed`.
    pub fn generate(&self) -> Vec<SessionPlan> {
        // Arrival jitter draws from an independent stream so changing
        // the session-content generator cannot reshuffle arrivals.
        let mut arrival_rng = seeded_rng(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut generator = SessionGenerator::new(self.seed);
        let slot = if self.sessions == 0 {
            0.0
        } else {
            self.arrival_spread_s / self.sessions as f64
        };
        let mut plans: Vec<SessionPlan> = (0..self.sessions)
            .map(|id| {
                // Staggered: one slot per session, jittered within it.
                let jitter = if slot > 0.0 {
                    arrival_rng.gen_range(0.0..slot)
                } else {
                    0.0
                };
                SessionPlan {
                    id,
                    arrival_ps: seconds_to_ps(id as f64 * slot + jitter),
                    events: generator.session(self.turns),
                }
            })
            .collect();
        plans.sort_by_key(|p| p.arrival_ps);
        plans
    }
}

/// One planned session: when it arrives and what it will do.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlan {
    /// Stable session id (assigned before arrival sorting).
    pub id: usize,
    /// Wall-clock arrival time (integer picoseconds).
    pub arrival_ps: u64,
    /// The session's event stream (frames, questions, answers).
    pub events: Vec<SessionEvent>,
}

impl SessionPlan {
    /// Arrival time in seconds (display/report convenience; all
    /// scheduling arithmetic stays on [`Self::arrival_ps`]).
    pub fn arrival_s(&self) -> f64 {
        ps_to_seconds(self.arrival_ps)
    }

    /// Total video frames across the session.
    pub fn total_frames(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SessionEvent::Frame))
            .count()
    }

    /// Total KV-cache tokens this session will ever append on top of
    /// its initial context: frames × tokens-per-frame plus every
    /// question and answer token. The serving scheduler uses this as
    /// the worst-case per-stream footprint for admission control.
    pub fn total_cache_growth_tokens(&self, tokens_per_frame: usize) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                SessionEvent::Frame => tokens_per_frame,
                SessionEvent::Question { tokens } | SessionEvent::Answer { tokens } => *tokens,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_core::time::PS_PER_SECOND;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TrafficConfig::paper_average(6, 42);
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn arrivals_are_sorted_and_within_the_window() {
        let cfg = TrafficConfig {
            sessions: 16,
            turns: 1,
            arrival_spread_s: 30.0,
            seed: 3,
        };
        let plans = cfg.generate();
        assert_eq!(plans.len(), 16);
        for w in plans.windows(2) {
            assert!(w[0].arrival_ps <= w[1].arrival_ps);
        }
        assert!(plans.iter().all(|p| p.arrival_ps < 30 * PS_PER_SECOND));
        // Staggering spreads arrivals: not everyone in the first slot.
        assert!(plans.last().unwrap().arrival_ps > 15 * PS_PER_SECOND);
    }

    #[test]
    fn zero_spread_arrives_at_t0() {
        let cfg = TrafficConfig {
            sessions: 3,
            turns: 1,
            arrival_spread_s: 0.0,
            seed: 9,
        };
        assert!(cfg.generate().iter().all(|p| p.arrival_ps == 0));
    }

    #[test]
    fn arrival_seconds_mirror_picoseconds() {
        let plan = SessionPlan {
            id: 0,
            arrival_ps: PS_PER_SECOND / 4,
            events: Vec::new(),
        };
        assert_eq!(plan.arrival_s(), 0.25);
    }

    #[test]
    fn cache_growth_counts_every_event() {
        let plan = SessionPlan {
            id: 0,
            arrival_ps: 0,
            events: vec![
                SessionEvent::Frame,
                SessionEvent::Frame,
                SessionEvent::Question { tokens: 5 },
                SessionEvent::Answer { tokens: 7 },
            ],
        };
        assert_eq!(plan.total_frames(), 2);
        assert_eq!(plan.total_cache_growth_tokens(10), 2 * 10 + 5 + 7);
    }

    #[test]
    fn sessions_have_requested_turn_count() {
        let plans = TrafficConfig {
            sessions: 4,
            turns: 3,
            arrival_spread_s: 5.0,
            seed: 1,
        }
        .generate();
        for p in &plans {
            let questions = p
                .events
                .iter()
                .filter(|e| matches!(e, SessionEvent::Question { .. }))
                .count();
            assert_eq!(questions, 3);
        }
    }
}
