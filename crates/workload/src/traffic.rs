//! Multi-session traffic generation.
//!
//! The serving evaluation asks "how many concurrent COIN streams does a
//! platform sustain in real time?", so it needs a fleet of sessions
//! rather than the single stream of [`crate::session`]. This module
//! turns [`SessionGenerator`] output into per-session *plans*: a seeded
//! arrival time (staggered across a configurable window, so sessions
//! ramp up the way live traffic does instead of stampeding at t=0) plus
//! the session's event list. The serving scheduler in `vrex-system`
//! consumes the plans; this crate stays hardware-free.
//!
//! Fleet-scale runs consume plans through the [`PlanSource`] streaming
//! seam instead of a materialized `Vec`: [`TrafficConfig::stream`]
//! yields the staggered fleet lazily, and [`OpenLoopConfig`] offers
//! open-loop Poisson traffic whose rate stays fixed as the fleet
//! scales to 10⁵–10⁶ sessions. Either way arrivals reach the scheduler
//! in nondecreasing order, so it holds at most the not-yet-arrived
//! head of the fleet in memory.
//!
//! Arrival timestamps are integer picoseconds ([`SessionPlan::arrival_ps`],
//! via [`vrex_core::time`]): the event-driven scheduler compares and
//! adds timestamps exactly, so the float jitter draw is rounded to ps
//! once, here, and never re-enters time arithmetic.

use rand::rngs::StdRng;
use rand::Rng;
use vrex_core::time::{ps_to_seconds, seconds_to_ps};
use vrex_tensor::rng::seeded_rng;

use crate::session::{SessionEvent, SessionGenerator};

/// Parameters of a generated traffic fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Number of sessions offered to the system.
    pub sessions: usize,
    /// Interactions (frames + question + answer) per session.
    pub turns: usize,
    /// Arrivals are staggered uniformly at random across this window
    /// (seconds); 0 makes every session arrive at t=0.
    pub arrival_spread_s: f64,
    /// Seed for both arrival jitter and per-session event generation.
    pub seed: u64,
}

impl TrafficConfig {
    /// A small paper-average fleet: `sessions` streams of 2 turns each,
    /// ramping up over 10 seconds.
    pub fn paper_average(sessions: usize, seed: u64) -> Self {
        Self {
            sessions,
            turns: 2,
            arrival_spread_s: 10.0,
            seed,
        }
    }

    /// Generates the fleet: one [`SessionPlan`] per session, sorted by
    /// arrival time. Deterministic in `seed`.
    ///
    /// Materializes the whole fleet; fleet-scale runs (10⁵+ sessions)
    /// should use [`Self::stream`] so plans are generated one at a
    /// time as the scheduler consumes them.
    pub fn generate(&self) -> Vec<SessionPlan> {
        let mut stream = self.stream();
        let mut plans = Vec::with_capacity(self.sessions);
        while let Some(p) = stream.next_plan() {
            plans.push(p);
        }
        // Arrivals are nondecreasing by construction (each session's
        // jitter stays inside its own slot), so the historical
        // stable sort is a no-op kept for its documentation value.
        plans.sort_by_key(|p| p.arrival_ps);
        plans
    }

    /// The same fleet as [`Self::generate`] — same seeds, same plans,
    /// same order — produced lazily, one plan per
    /// [`PlanSource::next_plan`] call, so the fleet is never resident
    /// all at once.
    pub fn stream(&self) -> PlanStream {
        PlanStream {
            // Arrival jitter draws from an independent stream so
            // changing the session-content generator cannot reshuffle
            // arrivals.
            arrival_rng: seeded_rng(self.seed ^ 0x9E37_79B9_7F4A_7C15),
            generator: SessionGenerator::new(self.seed),
            next_id: 0,
            sessions: self.sessions,
            turns: self.turns,
            slot_s: if self.sessions == 0 {
                0.0
            } else {
                self.arrival_spread_s / self.sessions as f64
            },
        }
    }
}

/// A fleet delivered one plan at a time, in nondecreasing arrival
/// order, so callers can simulate 10⁶-session fleets without ever
/// materializing every [`SessionPlan`] at once.
///
/// The contract the serving scheduler relies on: successive
/// [`Self::next_plan`] arrivals never decrease, and ties arrive in
/// yield order. Every implementation here guarantees it by
/// construction; consumers may `debug_assert` it.
pub trait PlanSource {
    /// The next session to offer, or `None` when the fleet is
    /// exhausted. Arrivals are nondecreasing across calls.
    fn next_plan(&mut self) -> Option<SessionPlan>;

    /// How many plans remain (exact where knowable; used only to
    /// pre-size scheduler buffers, never for control flow).
    fn remaining_hint(&self) -> usize {
        0
    }
}

/// Streaming [`TrafficConfig`] fleet (see [`TrafficConfig::stream`]).
///
/// Arrivals are nondecreasing by construction: session `id` arrives at
/// `id·slot + jitter` with `jitter < slot`, which is below
/// `(id+1)·slot`, and [`seconds_to_ps`] is monotone.
#[derive(Debug)]
pub struct PlanStream {
    arrival_rng: StdRng,
    generator: SessionGenerator,
    next_id: usize,
    sessions: usize,
    turns: usize,
    slot_s: f64,
}

impl PlanSource for PlanStream {
    fn next_plan(&mut self) -> Option<SessionPlan> {
        if self.next_id >= self.sessions {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        // Staggered: one slot per session, jittered within it.
        let jitter = if self.slot_s > 0.0 {
            self.arrival_rng.gen_range(0.0..self.slot_s)
        } else {
            0.0
        };
        Some(SessionPlan {
            id,
            arrival_ps: seconds_to_ps(id as f64 * self.slot_s + jitter),
            events: self.generator.session(self.turns),
        })
    }

    fn remaining_hint(&self) -> usize {
        self.sessions - self.next_id
    }
}

/// Adapts a materialized plan slice to [`PlanSource`], yielding clones
/// in `(arrival_ps, slice index)` order — exactly the order the
/// scheduler's admission queue historically used.
#[derive(Debug)]
pub struct SlicePlans<'a> {
    plans: &'a [SessionPlan],
    order: Vec<usize>,
    next: usize,
}

impl<'a> SlicePlans<'a> {
    /// Wraps a plan slice (arrivals in any order).
    pub fn new(plans: &'a [SessionPlan]) -> Self {
        let mut order: Vec<usize> = (0..plans.len()).collect();
        order.sort_by_key(|&i| (plans[i].arrival_ps, i));
        SlicePlans {
            plans,
            order,
            next: 0,
        }
    }
}

impl PlanSource for SlicePlans<'_> {
    fn next_plan(&mut self) -> Option<SessionPlan> {
        let &i = self.order.get(self.next)?;
        self.next += 1;
        Some(self.plans[i].clone())
    }

    fn remaining_hint(&self) -> usize {
        self.order.len() - self.next
    }
}

/// Open-loop Poisson traffic: arrivals at rate λ, independent of how
/// fast the system drains them — the fleet-scale load model (closed
/// [`TrafficConfig`] staggering couples arrival spacing to fleet size;
/// an open loop holds the offered rate fixed as sessions scale to
/// 10⁵–10⁶).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopConfig {
    /// Number of sessions offered.
    pub sessions: usize,
    /// Mean arrival rate λ (sessions per second, > 0): inter-arrival
    /// gaps are exponential with mean 1/λ.
    pub arrival_rate_per_s: f64,
    /// Interactions (frames + question + answer) per session.
    pub turns: usize,
    /// Seed for both arrival gaps and per-session event generation.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// The streaming fleet: deterministic in `seed`, arrivals strictly
    /// ordered by the running exponential-gap sum.
    pub fn stream(&self) -> OpenLoopStream {
        assert!(
            self.arrival_rate_per_s > 0.0,
            "open-loop arrival rate must be positive"
        );
        OpenLoopStream {
            arrival_rng: seeded_rng(self.seed ^ 0x9E37_79B9_7F4A_7C15),
            generator: SessionGenerator::new(self.seed),
            next_id: 0,
            next_arrival_ps: 0,
            cfg: *self,
        }
    }
}

/// Streaming [`OpenLoopConfig`] fleet. Arrivals are nondecreasing
/// because each is the previous plus a non-negative exponential gap,
/// accumulated in integer picoseconds (each float gap is rounded to ps
/// once and never re-enters time arithmetic, the same discipline as
/// the staggered generator).
#[derive(Debug)]
pub struct OpenLoopStream {
    arrival_rng: StdRng,
    generator: SessionGenerator,
    next_id: usize,
    next_arrival_ps: u64,
    cfg: OpenLoopConfig,
}

impl PlanSource for OpenLoopStream {
    fn next_plan(&mut self) -> Option<SessionPlan> {
        if self.next_id >= self.cfg.sessions {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let plan = SessionPlan {
            id,
            arrival_ps: self.next_arrival_ps,
            events: self.generator.session(self.cfg.turns),
        };
        // Inverse-CDF exponential draw; 1−u ∈ (0, 1] keeps ln finite.
        let u: f64 = self.arrival_rng.gen_range(0.0..1.0);
        let gap_s = -(1.0 - u).ln() / self.cfg.arrival_rate_per_s;
        self.next_arrival_ps = self.next_arrival_ps.saturating_add(seconds_to_ps(gap_s));
        Some(plan)
    }

    fn remaining_hint(&self) -> usize {
        self.cfg.sessions - self.next_id
    }
}

/// One planned session: when it arrives and what it will do.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlan {
    /// Stable session id (assigned before arrival sorting).
    pub id: usize,
    /// Wall-clock arrival time (integer picoseconds).
    pub arrival_ps: u64,
    /// The session's event stream (frames, questions, answers).
    pub events: Vec<SessionEvent>,
}

impl SessionPlan {
    /// Arrival time in seconds (display/report convenience; all
    /// scheduling arithmetic stays on [`Self::arrival_ps`]).
    pub fn arrival_s(&self) -> f64 {
        ps_to_seconds(self.arrival_ps)
    }

    /// Total video frames across the session.
    pub fn total_frames(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SessionEvent::Frame))
            .count()
    }

    /// Total KV-cache tokens this session will ever append on top of
    /// its initial context: frames × tokens-per-frame plus every
    /// question and answer token. The serving scheduler uses this as
    /// the worst-case per-stream footprint for admission control.
    pub fn total_cache_growth_tokens(&self, tokens_per_frame: usize) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                SessionEvent::Frame => tokens_per_frame,
                SessionEvent::Question { tokens } | SessionEvent::Answer { tokens } => *tokens,
            })
            .sum()
    }

    /// First-order estimate (ps) of how long this session occupies a
    /// server once admitted, at a camera interval of
    /// `frame_interval_ps`: the camera paces one event slot per frame
    /// interval, so the event count bounds the streaming span. Device
    /// placement uses this to expire routed sessions from its
    /// per-device load trackers; it is an estimate, not schedule truth
    /// (decode tokens finish faster, contention stretches tails), but
    /// it is integer, deterministic, and cheap — which is what a
    /// placement-time proxy must be.
    pub fn span_estimate_ps(&self, frame_interval_ps: u64) -> u64 {
        frame_interval_ps * self.events.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_core::time::PS_PER_SECOND;

    #[test]
    fn span_estimate_is_events_times_interval() {
        let plan = SessionPlan {
            id: 0,
            arrival_ps: 0,
            events: vec![
                SessionEvent::Frame,
                SessionEvent::Frame,
                SessionEvent::Question { tokens: 32 },
                SessionEvent::Answer { tokens: 64 },
            ],
        };
        assert_eq!(plan.span_estimate_ps(500_000_000_000), 4 * 500_000_000_000);
        assert_eq!(plan.span_estimate_ps(0), 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TrafficConfig::paper_average(6, 42);
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn arrivals_are_sorted_and_within_the_window() {
        let cfg = TrafficConfig {
            sessions: 16,
            turns: 1,
            arrival_spread_s: 30.0,
            seed: 3,
        };
        let plans = cfg.generate();
        assert_eq!(plans.len(), 16);
        for w in plans.windows(2) {
            assert!(w[0].arrival_ps <= w[1].arrival_ps);
        }
        assert!(plans.iter().all(|p| p.arrival_ps < 30 * PS_PER_SECOND));
        // Staggering spreads arrivals: not everyone in the first slot.
        assert!(plans.last().unwrap().arrival_ps > 15 * PS_PER_SECOND);
    }

    #[test]
    fn zero_spread_arrives_at_t0() {
        let cfg = TrafficConfig {
            sessions: 3,
            turns: 1,
            arrival_spread_s: 0.0,
            seed: 9,
        };
        assert!(cfg.generate().iter().all(|p| p.arrival_ps == 0));
    }

    #[test]
    fn arrival_seconds_mirror_picoseconds() {
        let plan = SessionPlan {
            id: 0,
            arrival_ps: PS_PER_SECOND / 4,
            events: Vec::new(),
        };
        assert_eq!(plan.arrival_s(), 0.25);
    }

    #[test]
    fn cache_growth_counts_every_event() {
        let plan = SessionPlan {
            id: 0,
            arrival_ps: 0,
            events: vec![
                SessionEvent::Frame,
                SessionEvent::Frame,
                SessionEvent::Question { tokens: 5 },
                SessionEvent::Answer { tokens: 7 },
            ],
        };
        assert_eq!(plan.total_frames(), 2);
        assert_eq!(plan.total_cache_growth_tokens(10), 2 * 10 + 5 + 7);
    }

    #[test]
    fn stream_reproduces_generate_exactly() {
        // The streaming generator must be plan-for-plan identical to
        // the materializing one (same seeds, same order) so existing
        // callers can switch without moving any golden numbers.
        for (sessions, spread) in [(0usize, 10.0), (1, 0.0), (16, 30.0), (64, 5.0)] {
            let cfg = TrafficConfig {
                sessions,
                turns: 2,
                arrival_spread_s: spread,
                seed: 17,
            };
            let mut stream = cfg.stream();
            let mut streamed = Vec::new();
            while let Some(p) = stream.next_plan() {
                assert_eq!(stream.remaining_hint(), sessions - streamed.len() - 1);
                streamed.push(p);
            }
            assert_eq!(streamed, cfg.generate());
        }
    }

    #[test]
    fn slice_source_yields_arrival_order_clones() {
        let mut plans = TrafficConfig::paper_average(8, 3).generate();
        plans.reverse(); // any slice order is accepted
        let mut src = SlicePlans::new(&plans);
        assert_eq!(src.remaining_hint(), 8);
        let mut last = 0u64;
        let mut seen = 0;
        while let Some(p) = src.next_plan() {
            assert!(p.arrival_ps >= last, "slice source must sort arrivals");
            last = p.arrival_ps;
            seen += 1;
        }
        assert_eq!(seen, 8);
        assert_eq!(src.remaining_hint(), 0);
    }

    #[test]
    fn open_loop_arrivals_are_poisson_like_and_deterministic() {
        let cfg = OpenLoopConfig {
            sessions: 4_000,
            arrival_rate_per_s: 2.0,
            turns: 1,
            seed: 7,
        };
        let collect = || {
            let mut s = cfg.stream();
            let mut v = Vec::new();
            while let Some(p) = s.next_plan() {
                v.push(p);
            }
            v
        };
        let a = collect();
        assert_eq!(a, collect(), "open-loop streams must be deterministic");
        assert_eq!(a.len(), 4_000);
        for w in a.windows(2) {
            assert!(w[0].arrival_ps <= w[1].arrival_ps);
        }
        // Mean inter-arrival ≈ 1/λ = 0.5 s over 4k draws.
        let span_s = ps_to_seconds(a.last().unwrap().arrival_ps);
        let mean_gap = span_s / (a.len() - 1) as f64;
        assert!(
            (mean_gap - 0.5).abs() < 0.05,
            "mean gap {mean_gap} off the 1/λ target"
        );
        // Exponential gaps are bursty: some gap is well below the
        // mean, some well above (a staggered fleet has neither).
        let gaps: Vec<u64> = a
            .windows(2)
            .map(|w| w[1].arrival_ps - w[0].arrival_ps)
            .collect();
        assert!(gaps.iter().any(|&g| g < seconds_to_ps(0.05)));
        assert!(gaps.iter().any(|&g| g > seconds_to_ps(1.5)));
    }

    #[test]
    fn sessions_have_requested_turn_count() {
        let plans = TrafficConfig {
            sessions: 4,
            turns: 3,
            arrival_spread_s: 5.0,
            seed: 1,
        }
        .generate();
        for p in &plans {
            let questions = p
                .events
                .iter()
                .filter(|e| matches!(e, SessionEvent::Question { .. }))
                .count();
            assert_eq!(questions, 3);
        }
    }
}
