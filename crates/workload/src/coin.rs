//! The five COIN benchmark task profiles (paper Table II).
//!
//! Each profile records the paper's measured VideoLLM-Online baseline
//! accuracy plus per-task retrieval ratios of the published methods
//! (used as reference columns in the Table II reproduction) and the
//! video statistics that shape the task's attention distributions.

use vrex_model::VideoStreamConfig;

/// One COIN task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoinTask {
    /// Step recognition.
    Step,
    /// Next-step prediction.
    Next,
    /// Task recognition.
    Task,
    /// Procedure recognition.
    Proc,
    /// Procedure+ (extended procedure understanding).
    ProcPlus,
}

/// All five tasks in Table II column order.
pub const COIN_TASKS: [CoinTask; 5] = [
    CoinTask::Step,
    CoinTask::Next,
    CoinTask::Task,
    CoinTask::Proc,
    CoinTask::ProcPlus,
];

/// Published per-task reference numbers (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskReference {
    /// VideoLLM-Online (vanilla) Top-1 accuracy.
    pub vanilla_top1: f64,
    /// ReSV Top-1 accuracy.
    pub resv_top1: f64,
    /// ReSV retrieval ratio (frame stage, %).
    pub resv_ratio_frame: f64,
    /// ReSV retrieval ratio (generation stage, %).
    pub resv_ratio_text: f64,
    /// ReKV retrieval ratio (frame stage, %).
    pub rekv_ratio_frame: f64,
    /// ReKV retrieval ratio (generation stage, %).
    pub rekv_ratio_text: f64,
}

impl CoinTask {
    /// Short column label as in Table II.
    pub fn label(&self) -> &'static str {
        match self {
            CoinTask::Step => "Step",
            CoinTask::Next => "Next",
            CoinTask::Task => "Task",
            CoinTask::Proc => "Proc.",
            CoinTask::ProcPlus => "Proc.+",
        }
    }

    /// Paper Table II reference values for this task.
    pub fn reference(&self) -> TaskReference {
        match self {
            CoinTask::Step => TaskReference {
                vanilla_top1: 49.0,
                resv_top1: 47.5,
                resv_ratio_frame: 32.4,
                resv_ratio_text: 2.8,
                rekv_ratio_frame: 56.7,
                rekv_ratio_text: 34.5,
            },
            CoinTask::Next => TaskReference {
                vanilla_top1: 62.1,
                resv_top1: 62.0,
                resv_ratio_frame: 34.3,
                resv_ratio_text: 2.4,
                rekv_ratio_frame: 59.7,
                rekv_ratio_text: 33.4,
            },
            CoinTask::Task => TaskReference {
                vanilla_top1: 51.6,
                resv_top1: 50.5,
                resv_ratio_frame: 36.1,
                resv_ratio_text: 2.9,
                rekv_ratio_frame: 62.5,
                rekv_ratio_text: 37.9,
            },
            CoinTask::Proc => TaskReference {
                vanilla_top1: 92.5,
                resv_top1: 92.2,
                resv_ratio_frame: 25.1,
                resv_ratio_text: 1.4,
                rekv_ratio_frame: 51.4,
                rekv_ratio_text: 13.6,
            },
            CoinTask::ProcPlus => TaskReference {
                vanilla_top1: 49.5,
                resv_top1: 48.2,
                resv_ratio_frame: 35.5,
                resv_ratio_text: 2.9,
                rekv_ratio_frame: 61.7,
                rekv_ratio_text: 36.7,
            },
        }
    }

    /// Video statistics for this task's streams. Tasks whose paper
    /// retrieval ratio is low (`Proc.`) have the most static video
    /// (long scenes, low noise ⇒ concentrated attention and heavy
    /// clustering); tasks with high ratios get busier video.
    pub fn video_config(
        &self,
        tokens_per_frame: usize,
        dim: usize,
        seed: u64,
    ) -> VideoStreamConfig {
        let (cut, drift, noise) = match self {
            CoinTask::Step => (0.012, 0.05, 0.20),
            CoinTask::Next => (0.015, 0.06, 0.22),
            CoinTask::Task => (0.020, 0.07, 0.25),
            CoinTask::Proc => (0.005, 0.03, 0.12),
            CoinTask::ProcPlus => (0.018, 0.06, 0.24),
        };
        VideoStreamConfig {
            tokens_per_frame,
            dim,
            scene_cut_prob: cut,
            drift_std: drift,
            noise_std: noise,
            seed,
        }
    }
}

/// Average vanilla accuracy over the five tasks (paper: ~60.9).
pub fn vanilla_average_top1() -> f64 {
    COIN_TASKS
        .iter()
        .map(|t| t.reference().vanilla_top1)
        .sum::<f64>()
        / COIN_TASKS.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tasks_with_distinct_labels() {
        let labels: std::collections::BTreeSet<_> = COIN_TASKS.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn resv_drop_is_marginal_in_reference_data() {
        // Paper: ReSV's average accuracy drop vs vanilla is ~0.8 points.
        let drop: f64 = COIN_TASKS
            .iter()
            .map(|t| {
                let r = t.reference();
                r.vanilla_top1 - r.resv_top1
            })
            .sum::<f64>()
            / 5.0;
        assert!((0.5..=1.1).contains(&drop), "mean drop {drop}");
    }

    #[test]
    fn resv_ratios_beat_rekv_everywhere() {
        for t in COIN_TASKS {
            let r = t.reference();
            assert!(r.resv_ratio_frame < r.rekv_ratio_frame);
            assert!(r.resv_ratio_text < r.rekv_ratio_text);
        }
    }

    #[test]
    fn proc_task_has_most_static_video() {
        let proc = CoinTask::Proc.video_config(8, 64, 1);
        for t in COIN_TASKS.iter().filter(|t| **t != CoinTask::Proc) {
            let other = t.video_config(8, 64, 1);
            assert!(proc.scene_cut_prob < other.scene_cut_prob);
            assert!(proc.noise_std < other.noise_std);
        }
    }

    #[test]
    fn vanilla_average_matches_paper() {
        let avg = vanilla_average_top1();
        assert!((avg - 60.94).abs() < 0.1, "avg {avg}");
    }
}
