//! Streaming-session event generation.
//!
//! A streaming video LLM session interleaves continuously arriving
//! frames with multi-turn user queries. The paper's latency evaluation
//! models "the average working scenario on the COIN benchmark": 26
//! frames per interaction, 25 question tokens, 39 answer tokens.

use rand::rngs::StdRng;
use rand::Rng;
use vrex_tensor::rng::seeded_rng;

/// One event of a streaming session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A video frame arrives (processed by iterative prefill).
    Frame,
    /// The user asks a question of `tokens` tokens (prefill).
    Question {
        /// Question length in tokens.
        tokens: usize,
    },
    /// The model answers with `tokens` tokens (generation).
    Answer {
        /// Answer length in tokens.
        tokens: usize,
    },
}

/// The paper's average COIN interaction scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoinScenario {
    /// Frames processed per interaction.
    pub frames_per_query: usize,
    /// Question length (tokens).
    pub question_tokens: usize,
    /// Answer length (tokens).
    pub answer_tokens: usize,
}

impl CoinScenario {
    /// 26 frames, 25 question tokens, 39 answer tokens (paper §III-A).
    pub fn paper_average() -> Self {
        Self {
            frames_per_query: 26,
            question_tokens: 25,
            answer_tokens: 39,
        }
    }

    /// Events of one full interaction (frames, question, answer).
    pub fn interaction(&self) -> Vec<SessionEvent> {
        let mut events = vec![SessionEvent::Frame; self.frames_per_query];
        events.push(SessionEvent::Question {
            tokens: self.question_tokens,
        });
        events.push(SessionEvent::Answer {
            tokens: self.answer_tokens,
        });
        events
    }
}

/// Randomised multi-turn session generator (for functional accuracy
/// runs, which want variety rather than the fixed average case).
#[derive(Debug)]
pub struct SessionGenerator {
    rng: StdRng,
    mean_frames: usize,
    question_tokens: usize,
    answer_tokens: usize,
}

impl SessionGenerator {
    /// Creates a generator around the paper-average scenario.
    pub fn new(seed: u64) -> Self {
        let s = CoinScenario::paper_average();
        Self {
            rng: seeded_rng(seed),
            mean_frames: s.frames_per_query,
            question_tokens: s.question_tokens,
            answer_tokens: s.answer_tokens,
        }
    }

    /// Generates `turns` interactions with ±50% jitter on frame counts
    /// and ±20% on token counts.
    pub fn session(&mut self, turns: usize) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        for _ in 0..turns {
            let frames = self
                .rng
                .gen_range(self.mean_frames / 2..=self.mean_frames * 3 / 2);
            for _ in 0..frames {
                events.push(SessionEvent::Frame);
            }
            events.push(SessionEvent::Question {
                tokens: self
                    .rng
                    .gen_range(self.question_tokens * 4 / 5..=self.question_tokens * 6 / 5),
            });
            events.push(SessionEvent::Answer {
                tokens: self
                    .rng
                    .gen_range(self.answer_tokens * 4 / 5..=self.answer_tokens * 6 / 5),
            });
        }
        events
    }

    /// Generates random question token ids (hashed into a vocabulary by
    /// the model's embedding).
    pub fn question_ids(&mut self, tokens: usize) -> Vec<usize> {
        (0..tokens)
            .map(|_| self.rng.gen_range(0..100_000))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_average_matches_section3() {
        let s = CoinScenario::paper_average();
        assert_eq!(s.frames_per_query, 26);
        assert_eq!(s.question_tokens, 25);
        assert_eq!(s.answer_tokens, 39);
        let ev = s.interaction();
        assert_eq!(ev.len(), 28);
        assert_eq!(ev.iter().filter(|e| **e == SessionEvent::Frame).count(), 26);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = SessionGenerator::new(5).session(3);
        let b = SessionGenerator::new(5).session(3);
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_have_expected_structure() {
        let events = SessionGenerator::new(7).session(4);
        let questions = events
            .iter()
            .filter(|e| matches!(e, SessionEvent::Question { .. }))
            .count();
        let answers = events
            .iter()
            .filter(|e| matches!(e, SessionEvent::Answer { .. }))
            .count();
        assert_eq!(questions, 4);
        assert_eq!(answers, 4);
        // Each turn ends Question -> Answer.
        for w in events.windows(2) {
            if matches!(w[0], SessionEvent::Question { .. }) {
                assert!(matches!(w[1], SessionEvent::Answer { .. }));
            }
        }
    }

    #[test]
    fn question_ids_in_range() {
        let ids = SessionGenerator::new(9).question_ids(25);
        assert_eq!(ids.len(), 25);
        assert!(ids.iter().all(|&i| i < 100_000));
    }
}
