//! Streaming-session event generation.
//!
//! A streaming video LLM session interleaves continuously arriving
//! frames with multi-turn user queries. The paper's latency evaluation
//! models "the average working scenario on the COIN benchmark": 26
//! frames per interaction, 25 question tokens, 39 answer tokens.

use rand::rngs::StdRng;
use rand::Rng;
use vrex_tensor::rng::seeded_rng;

/// One event of a streaming session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A video frame arrives (processed by iterative prefill).
    Frame,
    /// The user asks a question of `tokens` tokens (prefill).
    Question {
        /// Question length in tokens.
        tokens: usize,
    },
    /// The model answers with `tokens` tokens (generation).
    Answer {
        /// Answer length in tokens.
        tokens: usize,
    },
}

/// The paper's average COIN interaction scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoinScenario {
    /// Frames processed per interaction.
    pub frames_per_query: usize,
    /// Question length (tokens).
    pub question_tokens: usize,
    /// Answer length (tokens).
    pub answer_tokens: usize,
}

impl CoinScenario {
    /// 26 frames, 25 question tokens, 39 answer tokens (paper §III-A).
    pub fn paper_average() -> Self {
        Self {
            frames_per_query: 26,
            question_tokens: 25,
            answer_tokens: 39,
        }
    }

    /// Events of one full interaction (frames, question, answer).
    pub fn interaction(&self) -> Vec<SessionEvent> {
        let mut events = vec![SessionEvent::Frame; self.frames_per_query];
        events.push(SessionEvent::Question {
            tokens: self.question_tokens,
        });
        events.push(SessionEvent::Answer {
            tokens: self.answer_tokens,
        });
        events
    }
}

/// Randomised multi-turn session generator (for functional accuracy
/// runs, which want variety rather than the fixed average case).
#[derive(Debug)]
pub struct SessionGenerator {
    rng: StdRng,
    mean_frames: usize,
    question_tokens: usize,
    answer_tokens: usize,
}

impl SessionGenerator {
    /// Creates a generator around the paper-average scenario.
    pub fn new(seed: u64) -> Self {
        Self::with_scenario(seed, CoinScenario::paper_average())
    }

    /// Creates a generator around an explicit scenario (mean frame and
    /// token counts).
    pub fn with_scenario(seed: u64, scenario: CoinScenario) -> Self {
        Self {
            rng: seeded_rng(seed),
            mean_frames: scenario.frames_per_query,
            question_tokens: scenario.question_tokens,
            answer_tokens: scenario.answer_tokens,
        }
    }

    /// Uniform draw from `mean ± round(mean * num / den)`.
    ///
    /// The window is built from a single rounded half-width so it is
    /// symmetric around `mean` for *every* mean — flooring both bounds
    /// independently (the previous scheme) skewed the window low
    /// whenever `mean` was not a multiple of `den`.
    fn centred_jitter(&mut self, mean: usize, num: usize, den: usize) -> usize {
        let half = (mean * num + den / 2) / den;
        self.rng.gen_range(mean.saturating_sub(half)..=mean + half)
    }

    /// Generates `turns` interactions with ±50% jitter on frame counts
    /// and ±20% on token counts, each window centred on its mean.
    pub fn session(&mut self, turns: usize) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        for _ in 0..turns {
            let frames = self.centred_jitter(self.mean_frames, 1, 2);
            for _ in 0..frames {
                events.push(SessionEvent::Frame);
            }
            events.push(SessionEvent::Question {
                tokens: self.centred_jitter(self.question_tokens, 1, 5),
            });
            events.push(SessionEvent::Answer {
                tokens: self.centred_jitter(self.answer_tokens, 1, 5),
            });
        }
        events
    }

    /// Generates random question token ids (hashed into a vocabulary by
    /// the model's embedding).
    pub fn question_ids(&mut self, tokens: usize) -> Vec<usize> {
        (0..tokens)
            .map(|_| self.rng.gen_range(0..100_000))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_average_matches_section3() {
        let s = CoinScenario::paper_average();
        assert_eq!(s.frames_per_query, 26);
        assert_eq!(s.question_tokens, 25);
        assert_eq!(s.answer_tokens, 39);
        let ev = s.interaction();
        assert_eq!(ev.len(), 28);
        assert_eq!(ev.iter().filter(|e| **e == SessionEvent::Frame).count(), 26);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = SessionGenerator::new(5).session(3);
        let b = SessionGenerator::new(5).session(3);
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_have_expected_structure() {
        let events = SessionGenerator::new(7).session(4);
        let questions = events
            .iter()
            .filter(|e| matches!(e, SessionEvent::Question { .. }))
            .count();
        let answers = events
            .iter()
            .filter(|e| matches!(e, SessionEvent::Answer { .. }))
            .count();
        assert_eq!(questions, 4);
        assert_eq!(answers, 4);
        // Each turn ends Question -> Answer.
        for w in events.windows(2) {
            if matches!(w[0], SessionEvent::Question { .. }) {
                assert!(matches!(w[1], SessionEvent::Answer { .. }));
            }
        }
    }

    #[test]
    fn jitter_windows_are_centred_on_the_mean() {
        // 7 and 39 are not multiples of 5, the case the old
        // floor-both-bounds window skewed low (e.g. tokens*4/5 and
        // tokens*6/5 for 39 gave [31, 46], mean 38.5).
        let scenario = CoinScenario {
            frames_per_query: 7,
            question_tokens: 7,
            answer_tokens: 39,
        };
        let mut g = SessionGenerator::with_scenario(11, scenario);
        let turns = 4_000;
        let events = g.session(turns);
        let mut frames = 0usize;
        let mut q_sum = 0usize;
        let mut a_sum = 0usize;
        for e in &events {
            match e {
                SessionEvent::Frame => frames += 1,
                SessionEvent::Question { tokens } => q_sum += tokens,
                SessionEvent::Answer { tokens } => a_sum += tokens,
            }
        }
        let mean = |sum: usize| sum as f64 / turns as f64;
        assert!(
            (mean(frames) - 7.0).abs() < 0.1,
            "frame mean {} not centred on 7",
            mean(frames)
        );
        assert!(
            (mean(q_sum) - 7.0).abs() < 0.1,
            "question mean {} not centred on 7",
            mean(q_sum)
        );
        assert!(
            (mean(a_sum) - 39.0).abs() < 0.25,
            "answer mean {} not centred on 39",
            mean(a_sum)
        );
    }

    #[test]
    fn question_ids_in_range() {
        let ids = SessionGenerator::new(9).question_ids(25);
        assert_eq!(ids.len(), 25);
        assert!(ids.iter().all(|&i| i < 100_000));
    }
}
