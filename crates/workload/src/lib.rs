//! # vrex-workload
//!
//! COIN-benchmark-like workloads and the accuracy-proxy evaluation.
//!
//! The paper evaluates on five COIN instructional-video tasks with
//! VideoLLM-Online. The dataset is not available here, so this crate
//! provides (DESIGN.md §1):
//!
//! * [`coin`] — the five task profiles with the paper's baseline Top-1
//!   accuracies and workload statistics (the paper's "average working
//!   scenario": 26 frames, 25 question tokens, 39 answer tokens), each
//!   with video-statistics knobs (scene-cut rate, drift, noise) that
//!   shape attention the way the task shapes it;
//! * [`session`] — streaming session event generation (frames
//!   interleaved with multi-turn queries);
//! * [`traffic`] — multi-session fleets: seeded staggered arrivals over
//!   [`session`] event streams, consumed by the serving scheduler in
//!   `vrex-system`;
//! * [`accuracy`] — the accuracy proxy: run the *functional* model with
//!   a retrieval policy, measure how much true attention mass and
//!   output fidelity the policy preserves, and map that to a Top-1
//!   estimate anchored at the paper's vanilla baseline.

#![warn(missing_docs)]

pub mod accuracy;
pub mod coin;
pub mod session;
pub mod traffic;

pub use accuracy::{evaluate_policy, AccuracyReport};
pub use coin::{CoinTask, COIN_TASKS};
pub use session::{CoinScenario, SessionEvent, SessionGenerator};
pub use traffic::{
    OpenLoopConfig, OpenLoopStream, PlanSource, PlanStream, SessionPlan, SlicePlans, TrafficConfig,
};
