//! The accuracy proxy (Table II / Fig. 19 substitute).
//!
//! The paper reports COIN Top-1 accuracy of VideoLLM-Online under each
//! retrieval method. Without the trained model or the dataset, absolute
//! Top-1 cannot be measured — but what Table II actually compares is
//! how much each method *degrades* the vanilla model at its retrieval
//! ratio, and degradation is driven by how much of the true attention
//! mass the method's selection discards. That we can measure exactly,
//! because our functional model and the retrieval algorithms are real.
//!
//! The proxy therefore reports, per task:
//!
//! * the measured **retrieval ratio** per stage (Table II's lower half),
//! * the measured **attention recall** per stage,
//! * the measured **output divergence** (relative error of the
//!   question's final hidden state vs. the full-attention reference),
//! * a **proxy Top-1**: the paper's vanilla baseline for the task,
//!   degraded by the measured recall through a fixed monotone map
//!   (anchored so a perfect policy scores exactly the baseline).

use vrex_model::policy::RetrievalPolicy;
use vrex_model::{ModelConfig, RunStats, SelectAll, StreamingVideoLlm, VideoStream};
use vrex_tensor::Matrix;

use crate::coin::CoinTask;
use crate::session::SessionGenerator;

/// Coefficient of the recall → accuracy-drop map. Calibrated so the
/// relative degradations of the reference methods land in the range
/// Table II reports (vanishing drop at recall → 1, a few points at the
/// recall a 50% fixed top-k achieves).
pub const DROP_COEFFICIENT: f64 = 0.12;

/// Exponent of the recall → accuracy-drop map.
pub const DROP_EXPONENT: f64 = 1.5;

/// Maps measured attention recall to a proxy Top-1 given the task's
/// vanilla baseline.
pub fn proxy_top1(vanilla_top1: f64, recall: f64) -> f64 {
    let recall = recall.clamp(0.0, 1.0);
    vanilla_top1 * (1.0 - DROP_COEFFICIENT * (1.0 - recall).powf(DROP_EXPONENT))
}

/// Per-task accuracy-proxy results for one retrieval method.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Method name.
    pub method: String,
    /// Task evaluated.
    pub task: CoinTask,
    /// Selected fraction of the history, frame-processing stage (%).
    pub frame_ratio_pct: f64,
    /// Selected fraction, generation stage (%).
    pub text_ratio_pct: f64,
    /// Attention recall, frame stage.
    pub frame_recall: f64,
    /// Attention recall, generation stage.
    pub text_recall: f64,
    /// Relative error of the question's final hidden state vs. the
    /// full-attention reference run.
    pub output_divergence: f64,
    /// Proxy Top-1 (see module docs).
    pub proxy_top1: f64,
}

/// Evaluation length knobs (kept small: the functional model is the
/// slow part of the reproduction).
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Frames prefilled before the question.
    pub frames: usize,
    /// Question tokens.
    pub question_tokens: usize,
    /// Answer tokens generated.
    pub answer_tokens: usize,
    /// Weight / stream seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            frames: 12,
            question_tokens: 10,
            answer_tokens: 6,
            seed: 1234,
        }
    }
}

/// Runs the accuracy proxy for `policy` on `task`.
///
/// The same weights, video stream and question are replayed against a
/// full-attention reference ([`SelectAll`]) to obtain the divergence
/// baseline.
pub fn evaluate_policy(
    model_cfg: &ModelConfig,
    task: CoinTask,
    policy: &mut dyn RetrievalPolicy,
    eval: EvalConfig,
) -> AccuracyReport {
    let reference_hidden = run_once(model_cfg, task, &mut SelectAll::new(), eval, None, None);
    let mut frame_stats = RunStats::new(model_cfg, true);
    let mut text_stats = RunStats::new(model_cfg, true);
    let policy_hidden = run_once(
        model_cfg,
        task,
        policy,
        eval,
        Some(&mut frame_stats),
        Some(&mut text_stats),
    );

    let divergence = {
        let diff = (&reference_hidden - &policy_hidden).frobenius_norm();
        let norm = reference_hidden.frobenius_norm().max(1e-12);
        (diff / norm) as f64
    };
    let frame_recall = frame_stats.mean_recall();
    let text_recall = text_stats.mean_recall();
    // Frame-stage attention dominates the cache the answer depends on;
    // weight the stages by their step counts.
    let total_recall = (frame_recall * eval.frames as f64
        + text_recall * eval.answer_tokens as f64)
        / (eval.frames + eval.answer_tokens) as f64;
    AccuracyReport {
        method: policy.name().to_string(),
        task,
        frame_ratio_pct: frame_stats.overall_ratio() * 100.0,
        text_ratio_pct: text_stats.overall_ratio() * 100.0,
        frame_recall,
        text_recall,
        output_divergence: divergence,
        proxy_top1: proxy_top1(task.reference().vanilla_top1, total_recall),
    }
}

fn run_once(
    model_cfg: &ModelConfig,
    task: CoinTask,
    policy: &mut dyn RetrievalPolicy,
    eval: EvalConfig,
    frame_stats: Option<&mut RunStats>,
    text_stats: Option<&mut RunStats>,
) -> Matrix {
    let mut llm = StreamingVideoLlm::new(model_cfg.clone(), eval.seed);
    let video_cfg = task.video_config(
        model_cfg.tokens_per_frame,
        model_cfg.hidden_dim,
        eval.seed ^ 0x5151,
    );
    let mut video = VideoStream::new(video_cfg);
    let mut questions = SessionGenerator::new(eval.seed ^ 0xABCD);

    let mut local_frame = RunStats::new(model_cfg, frame_stats.is_some());
    let mut local_text = RunStats::new(model_cfg, text_stats.is_some());

    for _ in 0..eval.frames {
        let f = video.next_frame();
        llm.process_frame(&f, policy, &mut local_frame);
    }
    let ids = questions.question_ids(eval.question_tokens);
    let hidden = llm.process_text(&ids, policy, &mut local_frame);
    llm.generate(&hidden, eval.answer_tokens, policy, &mut local_text);

    if let Some(s) = frame_stats {
        *s = local_frame;
    }
    if let Some(s) = text_stats {
        *s = local_text;
    }
    hidden
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_core::resv::{ResvConfig, ResvPolicy};
    use vrex_retrieval::{FlexGenPolicy, InfiniGenPPolicy};

    #[test]
    fn proxy_map_is_anchored_and_monotone() {
        assert_eq!(proxy_top1(60.0, 1.0), 60.0);
        assert!(proxy_top1(60.0, 0.9) > proxy_top1(60.0, 0.5));
        assert!(proxy_top1(60.0, 0.0) >= 60.0 * (1.0 - DROP_COEFFICIENT) - 1e-9);
    }

    #[test]
    fn full_fetch_policy_is_lossless() {
        let cfg = ModelConfig::tiny();
        let mut p = FlexGenPolicy::new();
        let r = evaluate_policy(&cfg, CoinTask::Step, &mut p, EvalConfig::default());
        assert!(
            r.output_divergence < 1e-6,
            "divergence {}",
            r.output_divergence
        );
        assert_eq!(r.frame_ratio_pct, 100.0);
        assert!((r.proxy_top1 - 49.0).abs() < 1e-9);
    }

    #[test]
    fn resv_beats_fixed_topk_at_lower_ratio() {
        let cfg = ModelConfig::tiny();
        let eval = EvalConfig {
            frames: 8,
            ..EvalConfig::default()
        };
        let mut resv = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
        let r_resv = evaluate_policy(&cfg, CoinTask::Step, &mut resv, eval);
        let mut igp = InfiniGenPPolicy::paper_defaults();
        let r_igp = evaluate_policy(&cfg, CoinTask::Step, &mut igp, eval);
        // The paper's headline: ReSV retrieves fewer tokens than the
        // 50% fixed top-k yet keeps accuracy at least as high.
        assert!(
            r_resv.frame_ratio_pct < r_igp.frame_ratio_pct,
            "ReSV ratio {} vs InfiniGenP {}",
            r_resv.frame_ratio_pct,
            r_igp.frame_ratio_pct
        );
        assert!(
            r_resv.proxy_top1 >= r_igp.proxy_top1 - 0.5,
            "ReSV top1 {} vs InfiniGenP {}",
            r_resv.proxy_top1,
            r_igp.proxy_top1
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let cfg = ModelConfig::tiny();
        let run = || {
            let mut p = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
            evaluate_policy(&cfg, CoinTask::Proc, &mut p, EvalConfig::default())
        };
        let (a, b) = (run(), run());
        assert_eq!(a.frame_ratio_pct, b.frame_ratio_pct);
        assert_eq!(a.output_divergence, b.output_divergence);
    }

    #[test]
    fn divergence_grows_as_selection_shrinks() {
        let cfg = ModelConfig::tiny();
        let eval = EvalConfig::default();
        let mut generous = InfiniGenPPolicy::new(0.9, 0.9);
        let mut stingy = InfiniGenPPolicy::new(0.05, 0.05);
        let rg = evaluate_policy(&cfg, CoinTask::Next, &mut generous, eval);
        let rs = evaluate_policy(&cfg, CoinTask::Next, &mut stingy, eval);
        assert!(
            rs.output_divergence > rg.output_divergence,
            "stingy {} vs generous {}",
            rs.output_divergence,
            rg.output_divergence
        );
        assert!(rs.proxy_top1 < rg.proxy_top1);
    }
}
