//! Property tests for the baseline retrieval policies.

use proptest::prelude::*;
use vrex_model::policy::{RetrievalPolicy, Selection, SelectionRequest, Stage};
use vrex_retrieval::{InfiniGenPPolicy, InfiniGenPolicy, OakenModel, RekvPolicy};
use vrex_tensor::rng::{gaussian_matrix, seeded_rng};
use vrex_tensor::Matrix;

fn request<'a>(q: &'a Matrix, k: &'a Matrix, stage: Stage) -> SelectionRequest<'a> {
    SelectionRequest {
        layer: 0,
        query_head: 0,
        kv_head: 0,
        queries: q,
        keys: k,
        stage,
    }
}

fn check_selection(sel: &Selection, history: usize) {
    let resolved = sel.resolve(history);
    let idx = resolved.indices();
    assert!(
        idx.windows(2).all(|w| w[0] < w[1]),
        "not strictly ascending"
    );
    assert!(idx.iter().all(|&i| i < history), "index beyond history");
}

proptest! {
    /// Top-k baselines honour their ratio to within one token, return
    /// sorted unique in-range indices, and are deterministic.
    #[test]
    fn infinigenp_selection_size_matches_ratio(
        history in 1usize..200,
        new in 1usize..8,
        ratio_pct in 1u32..100,
        seed in 0u64..300,
    ) {
        let ratio = ratio_pct as f64 / 100.0;
        let mut rng = seeded_rng(seed);
        let q = gaussian_matrix(&mut rng, new, 8, 1.0);
        let k = gaussian_matrix(&mut rng, history + new, 8, 1.0);
        let mut p = InfiniGenPPolicy::new(ratio, ratio);
        let sel = p.select(&request(&q, &k, Stage::Prefill));
        check_selection(&sel, history);
        let expected = ((history as f64 * ratio).ceil() as usize).min(history);
        prop_assert_eq!(sel.selected_count(history), expected);
        // Determinism.
        let sel2 = p.select(&request(&q, &k, Stage::Prefill));
        prop_assert_eq!(sel, sel2);
    }

    /// InfiniGen never filters during prefill, always filters during
    /// generation (when the ratio would remove something).
    #[test]
    fn infinigen_is_generation_only(
        history in 20usize..200,
        seed in 0u64..300,
    ) {
        let mut rng = seeded_rng(seed);
        let q = gaussian_matrix(&mut rng, 1, 8, 1.0);
        let k = gaussian_matrix(&mut rng, history + 1, 8, 1.0);
        let mut p = InfiniGenPolicy::new(0.1);
        prop_assert_eq!(p.select(&request(&q, &k, Stage::Prefill)), Selection::All);
        let generation = p.select(&request(&q, &k, Stage::Generation)).resolve(history);
        prop_assert!(!generation.is_total(), "generation must filter");
        prop_assert!(generation.len() < history);
    }

    /// ReKV selections consist of whole frames except possibly the last
    /// partial frame of the history.
    #[test]
    fn rekv_selects_frame_aligned_runs(
        frames in 2usize..20,
        tpf in 1usize..8,
        ratio_pct in 10u32..90,
        seed in 0u64..300,
    ) {
        let history = frames * tpf;
        let mut rng = seeded_rng(seed);
        let q = gaussian_matrix(&mut rng, 2, 8, 1.0);
        let k = gaussian_matrix(&mut rng, history + 2, 8, 1.0);
        let mut p = RekvPolicy::new(tpf, ratio_pct as f64 / 100.0, 0.5);
        let sel = p.select(&request(&q, &k, Stage::Prefill));
        check_selection(&sel, history);
        // Group indices by frame: every touched frame is complete.
        let resolved = sel.resolve(history);
        let mut per_frame = vec![0usize; frames];
        for &i in resolved.indices() {
            per_frame[i / tpf] += 1;
        }
        for (f, &count) in per_frame.iter().enumerate() {
            prop_assert!(
                count == 0 || count == tpf,
                "frame {f} partially selected ({count}/{tpf})"
            );
        }
    }

    /// Oaken's quantized round trip preserves sign structure and its
    /// storage size beats BF16 by design.
    #[test]
    fn oaken_round_trip_and_capacity(rows in 1usize..8, seed in 0u64..300) {
        let m = OakenModel::paper_defaults();
        let kv = gaussian_matrix(&mut seeded_rng(seed), rows, 128, 1.0);
        let rt = m.round_trip(&kv);
        let rel = (&kv - &rt).frobenius_norm() / kv.frobenius_norm().max(1e-6);
        prop_assert!(rel < 0.2, "relative error {rel}");
        let gain = m.capacity_gain(&vrex_model::ModelConfig::llama3_8b());
        prop_assert!(gain > 3.0 && gain < 4.5);
    }
}
