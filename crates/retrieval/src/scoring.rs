//! Shared importance scoring for the top-k baselines.
//!
//! InfiniGen-style methods predict per-token importance from
//! query/key dot products (optionally in a reduced sketch dimension, as
//! InfiniGen does with partial SVD weights). For a multi-token query
//! block — the streaming-prefill case the paper highlights — each
//! query row needs its own tokens, so block importance is the maximum
//! score over the rows (a token matters if *any* query attends to it).

use vrex_tensor::Matrix;

/// Per-history-token importance for a query block: max over query rows
/// of the scaled dot product.
///
/// `history_len` restricts scoring to the cached history (the block's
/// own tokens are always attended and never need retrieval).
///
/// # Panics
///
/// Panics if `history_len > keys.rows()` or widths mismatch.
pub fn block_importance(queries: &Matrix, keys: &Matrix, history_len: usize) -> Vec<f32> {
    assert!(history_len <= keys.rows(), "history longer than cache");
    assert_eq!(queries.cols(), keys.cols(), "query/key width mismatch");
    let scale = 1.0 / (queries.cols() as f32).sqrt();
    let mut importance = vec![f32::NEG_INFINITY; history_len];
    for r in 0..queries.rows() {
        let q = queries.row(r);
        for (j, imp) in importance.iter_mut().enumerate() {
            let k = keys.row(j);
            let dot: f32 = q.iter().zip(k).map(|(a, b)| a * b).sum();
            let s = dot * scale;
            if s > *imp {
                *imp = s;
            }
        }
    }
    importance
}

/// FLOPs charged for computing [`block_importance`] exactly
/// (`2 · rows · history · dim`) — the "KV prediction" cost the paper's
/// Fig. 4c attributes 40% of prefill latency to.
pub fn importance_flops(query_rows: usize, history_len: usize, dim: usize) -> u64 {
    2 * query_rows as u64 * history_len as u64 * dim as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

    #[test]
    fn importance_is_max_over_rows() {
        let q = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let k = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[9.0, 9.0]]);
        let imp = block_importance(&q, &k, 2);
        let s = 1.0 / 2f32.sqrt();
        assert!((imp[0] - 2.0 * s).abs() < 1e-6);
        assert!((imp[1] - 3.0 * s).abs() < 1e-6);
    }

    #[test]
    fn zero_history_gives_empty_importance() {
        let mut rng = seeded_rng(1);
        let q = gaussian_matrix(&mut rng, 2, 4, 1.0);
        let k = gaussian_matrix(&mut rng, 2, 4, 1.0);
        assert!(block_importance(&q, &k, 0).is_empty());
    }

    #[test]
    fn flops_formula() {
        assert_eq!(importance_flops(10, 1000, 128), 2 * 10 * 1000 * 128);
    }
}
