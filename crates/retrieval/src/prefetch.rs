//! Speculative KV-prefetch policy seam (InfiniGen-style).
//!
//! When a session's resident KV has been spilled to a lower memory tier
//! (host DRAM or SSD), the next inference step must stream the spilled
//! part of its working set back across PCIe. *When* that stream starts
//! is a retrieval-policy decision:
//!
//! * **demand** fetching ([`NoPrefetch`]) waits until the step executes
//!   and pays the full migration latency on the critical path — the
//!   FlexGen regime;
//! * **speculative** prefetching ([`SpeculativePrefetch`]) predicts the
//!   working set ahead of the step (InfiniGen predicts next-layer
//!   attention inputs from the current layer's partial computation) and
//!   issues the migration early, so the transfer overlaps the wait
//!   window and the step's own layer-by-layer compute. Mispredicted
//!   tokens still demand-fetch;
//! * **cluster** prefetching ([`ClusterPrefetch`]) speculates at hash-
//!   cluster granularity: the predicted set is the WiCSum-mass rank
//!   prefix from the previous step ([`ClusterPlan`]), so a
//!   cluster-aware tier manager only restores the *accessed* spilled
//!   clusters instead of a flat share of every spilled byte.
//!
//! The seam is deliberately tiny: the serving scheduler in
//! `vrex-system` describes the step ([`PrefetchRequest`]) and the
//! policy answers with how many bytes it will have in flight before the
//! step starts and how accurate the speculation is ([`PrefetchPlan`]).
//! The scheduler turns the plan into overlapped-vs-exposed migration
//! time; the policy never sees scheduler state, so new policies (e.g.
//! cluster-aware prefetch over the ReSV hash table) drop in without
//! touching the scheduler.

/// One upcoming inference step, as the prefetcher sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchRequest {
    /// Bytes of this session's resident KV currently below the device
    /// tier (spilled to host DRAM / SSD).
    pub cold_bytes: u64,
    /// Fraction of the cache the step's retrieval method will actually
    /// attend to (the method's calibrated selection ratio).
    pub selection_ratio: f64,
    /// `true` for a text-generation (decode) step.
    pub generation: bool,
}

impl PrefetchRequest {
    /// Bytes the step needs from below the device tier: the selected
    /// share of the spilled residency.
    pub fn needed_bytes(&self) -> u64 {
        (self.cold_bytes as f64 * self.selection_ratio.clamp(0.0, 1.0)).ceil() as u64
    }
}

/// What a prefetch policy promises to have in flight before the step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchPlan {
    /// Bytes speculatively issued ahead of the step (0 = pure demand).
    pub bytes: u64,
    /// Fraction of the issued bytes that turn out to be the right ones;
    /// the rest are re-fetched on demand.
    pub accuracy: f64,
}

impl PrefetchPlan {
    /// A plan that prefetches nothing.
    pub fn demand() -> Self {
        Self {
            bytes: 0,
            accuracy: 0.0,
        }
    }

    /// Fraction of `needed` bytes this plan hides ahead of the step.
    pub fn coverage(&self, needed: u64) -> f64 {
        if needed == 0 {
            return 0.0;
        }
        (self.bytes.min(needed) as f64 / needed as f64) * self.accuracy.clamp(0.0, 1.0)
    }
}

/// One upcoming inference step, described at hash-cluster granularity.
///
/// Clusters are identified by **rank**: rank 0 carried the most WiCSum
/// mass in the previous step, rank `clusters - 1` the least. The tier
/// manager owns the rank → residency map; the policy only decides how
/// deep into the ranking speculation reaches and how many predictions
/// miss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterPrefetchRequest {
    /// Hash clusters in the session's resident window.
    pub clusters: u64,
    /// Fraction of the cache the step's retrieval method will actually
    /// attend to (the method's calibrated selection ratio).
    pub selection_ratio: f64,
    /// `true` for a text-generation (decode) step.
    pub generation: bool,
    /// Deterministic per-session step counter — policies may use it to
    /// rotate *which* predictions miss, so mispredictions are not
    /// pinned to fixed ranks.
    pub step_seq: u64,
}

/// A ranked cluster set a policy promises to speculate on.
///
/// The predicted set is the rank prefix `[0, predicted)`; the actual
/// access swaps the `mispredicted` weakest predictions for tail
/// clusters the ranking missed, which must be demand-fetched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterPlan {
    /// Clusters speculatively issued ahead of the step: the WiCSum rank
    /// prefix `[0, predicted)`.
    pub predicted: u64,
    /// Predictions that turn out wrong; the step instead touches that
    /// many clusters from the tail `[predicted, clusters)`, fetched on
    /// demand at batch formation.
    pub mispredicted: u64,
}

/// Decides how much spilled KV to stream up *before* a step executes.
pub trait PrefetchPolicy {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Plans the speculative transfer for one step.
    fn plan(&self, req: &PrefetchRequest) -> PrefetchPlan;

    /// Plans the speculation as a ranked cluster set instead of a flat
    /// byte fraction. `None` (the default) means the policy is
    /// cluster-blind and the tier manager must fall back to [`plan`]
    /// (keeping the flat policies bit-identical).
    ///
    /// [`plan`]: PrefetchPolicy::plan
    fn cluster_plan(&self, req: &ClusterPrefetchRequest) -> Option<ClusterPlan> {
        let _ = req;
        None
    }
}

/// Pure demand fetching: nothing moves until the step needs it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPrefetch;

impl PrefetchPolicy for NoPrefetch {
    fn name(&self) -> &'static str {
        "demand"
    }

    fn plan(&self, _req: &PrefetchRequest) -> PrefetchPlan {
        PrefetchPlan::demand()
    }
}

/// InfiniGen-style speculation: issue the predicted working set (the
/// selected share of the spilled bytes) ahead of the step, with a
/// calibrated prediction accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculativePrefetch {
    /// Fraction of speculated bytes that are the right ones (InfiniGen
    /// reports ~90% attention recall from partial-computation
    /// speculation).
    pub accuracy: f64,
}

impl SpeculativePrefetch {
    /// The calibrated InfiniGen-style default (90% speculation
    /// accuracy).
    pub fn infinigen_default() -> Self {
        Self { accuracy: 0.9 }
    }
}

impl PrefetchPolicy for SpeculativePrefetch {
    fn name(&self) -> &'static str {
        "speculative"
    }

    fn plan(&self, req: &PrefetchRequest) -> PrefetchPlan {
        PrefetchPlan {
            bytes: req.needed_bytes(),
            accuracy: self.accuracy,
        }
    }
}

/// WiCSum-scored cluster speculation: predict the rank prefix that the
/// previous step's cluster mass ordering says the next step will touch.
///
/// ReSV's WiCSum selection is a mass-threshold over *cluster* scores —
/// for the calibrated selection ratio `r` over `n` clusters the
/// selected set is the top `⌈r·n⌉` ranks (score-descending prefix; see
/// `vrex_core::wicsum`). This policy speculates exactly that prefix and
/// charges itself `⌈(1 − accuracy)·k⌉` misses: that many weak
/// predictions are swapped for tail clusters the ranking did not
/// foresee, which the scheduler demand-fetches at batch formation.
/// Which tail clusters miss rotates deterministically with the step
/// counter, so the miss set is not pinned to fixed ranks.
///
/// The flat [`plan`](PrefetchPolicy::plan) fallback is byte-identical
/// to [`SpeculativePrefetch`], so a tier manager without cluster state
/// degrades gracefully to the InfiniGen-style behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterPrefetch {
    /// Fraction of predicted clusters that are the right ones.
    pub accuracy: f64,
}

impl ClusterPrefetch {
    /// Default calibration: the same 90% speculation accuracy the
    /// InfiniGen-style flat policy uses, now counted in clusters.
    pub fn wicsum_default() -> Self {
        Self { accuracy: 0.9 }
    }
}

impl PrefetchPolicy for ClusterPrefetch {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn plan(&self, req: &PrefetchRequest) -> PrefetchPlan {
        PrefetchPlan {
            bytes: req.needed_bytes(),
            accuracy: self.accuracy,
        }
    }

    fn cluster_plan(&self, req: &ClusterPrefetchRequest) -> Option<ClusterPlan> {
        if req.clusters == 0 {
            return Some(ClusterPlan::default());
        }
        let ratio = req.selection_ratio.clamp(0.0, 1.0);
        let predicted = ((req.clusters as f64 * ratio).ceil() as u64).min(req.clusters);
        let tail = req.clusters - predicted;
        let miss_rate = (1.0 - self.accuracy.clamp(0.0, 1.0)).clamp(0.0, 1.0);
        let mispredicted = ((predicted as f64 * miss_rate).ceil() as u64).min(tail);
        Some(ClusterPlan {
            predicted,
            mispredicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cold: u64, ratio: f64) -> PrefetchRequest {
        PrefetchRequest {
            cold_bytes: cold,
            selection_ratio: ratio,
            generation: false,
        }
    }

    #[test]
    fn needed_bytes_is_the_selected_share_of_the_spill() {
        assert_eq!(req(1000, 0.25).needed_bytes(), 250);
        assert_eq!(req(1000, 1.0).needed_bytes(), 1000);
        assert_eq!(req(0, 0.5).needed_bytes(), 0);
        // Ratios are clamped into [0, 1].
        assert_eq!(req(1000, 7.0).needed_bytes(), 1000);
    }

    #[test]
    fn demand_policy_covers_nothing() {
        let plan = NoPrefetch.plan(&req(4096, 0.5));
        assert_eq!(plan.bytes, 0);
        assert_eq!(plan.coverage(2048), 0.0);
        assert_eq!(NoPrefetch.name(), "demand");
    }

    #[test]
    fn speculative_policy_covers_needed_bytes_at_its_accuracy() {
        let policy = SpeculativePrefetch::infinigen_default();
        let r = req(10_000, 0.3);
        let plan = policy.plan(&r);
        assert_eq!(plan.bytes, r.needed_bytes());
        assert!((plan.coverage(r.needed_bytes()) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn coverage_saturates_at_the_needed_bytes() {
        let plan = PrefetchPlan {
            bytes: 1_000_000,
            accuracy: 1.0,
        };
        assert!((plan.coverage(10) - 1.0).abs() < 1e-12);
        assert_eq!(plan.coverage(0), 0.0);
    }

    fn creq(clusters: u64, ratio: f64, seq: u64) -> ClusterPrefetchRequest {
        ClusterPrefetchRequest {
            clusters,
            selection_ratio: ratio,
            generation: false,
            step_seq: seq,
        }
    }

    #[test]
    fn flat_policies_are_cluster_blind() {
        assert_eq!(NoPrefetch.cluster_plan(&creq(100, 0.3, 0)), None);
        let spec = SpeculativePrefetch::infinigen_default();
        assert_eq!(spec.cluster_plan(&creq(100, 0.3, 0)), None);
    }

    #[test]
    fn cluster_plan_predicts_the_wicsum_prefix() {
        let p = ClusterPrefetch::wicsum_default();
        let plan = p.cluster_plan(&creq(100, 0.327, 3)).unwrap();
        // ⌈0.327·100⌉ = 33 predicted, ⌈0.1·33⌉ = 4 mispredicted.
        assert_eq!(plan.predicted, 33);
        assert_eq!(plan.mispredicted, 4);
        // The miss count never exceeds the tail that could replace it.
        let full = p.cluster_plan(&creq(10, 1.0, 0)).unwrap();
        assert_eq!(full.predicted, 10);
        assert_eq!(full.mispredicted, 0, "no tail to mispredict into");
    }

    #[test]
    fn cluster_plan_handles_empty_windows_and_clamps_ratio() {
        let p = ClusterPrefetch { accuracy: 0.5 };
        assert_eq!(
            p.cluster_plan(&creq(0, 0.3, 0)).unwrap(),
            ClusterPlan::default()
        );
        let plan = p.cluster_plan(&creq(8, 9.0, 0)).unwrap();
        assert_eq!(plan.predicted, 8);
        assert_eq!(plan.mispredicted, 0);
    }

    #[test]
    fn cluster_policy_flat_fallback_matches_speculative() {
        let flat = SpeculativePrefetch { accuracy: 0.9 };
        let clustered = ClusterPrefetch { accuracy: 0.9 };
        let r = req(10_000, 0.3);
        assert_eq!(clustered.plan(&r), flat.plan(&r));
        assert_eq!(clustered.name(), "cluster");
    }
}
