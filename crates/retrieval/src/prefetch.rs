//! Speculative KV-prefetch policy seam (InfiniGen-style).
//!
//! When a session's resident KV has been spilled to a lower memory tier
//! (host DRAM or SSD), the next inference step must stream the spilled
//! part of its working set back across PCIe. *When* that stream starts
//! is a retrieval-policy decision:
//!
//! * **demand** fetching ([`NoPrefetch`]) waits until the step executes
//!   and pays the full migration latency on the critical path — the
//!   FlexGen regime;
//! * **speculative** prefetching ([`SpeculativePrefetch`]) predicts the
//!   working set ahead of the step (InfiniGen predicts next-layer
//!   attention inputs from the current layer's partial computation) and
//!   issues the migration early, so the transfer overlaps the wait
//!   window and the step's own layer-by-layer compute. Mispredicted
//!   tokens still demand-fetch.
//!
//! The seam is deliberately tiny: the serving scheduler in
//! `vrex-system` describes the step ([`PrefetchRequest`]) and the
//! policy answers with how many bytes it will have in flight before the
//! step starts and how accurate the speculation is ([`PrefetchPlan`]).
//! The scheduler turns the plan into overlapped-vs-exposed migration
//! time; the policy never sees scheduler state, so new policies (e.g.
//! cluster-aware prefetch over the ReSV hash table) drop in without
//! touching the scheduler.

/// One upcoming inference step, as the prefetcher sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchRequest {
    /// Bytes of this session's resident KV currently below the device
    /// tier (spilled to host DRAM / SSD).
    pub cold_bytes: u64,
    /// Fraction of the cache the step's retrieval method will actually
    /// attend to (the method's calibrated selection ratio).
    pub selection_ratio: f64,
    /// `true` for a text-generation (decode) step.
    pub generation: bool,
}

impl PrefetchRequest {
    /// Bytes the step needs from below the device tier: the selected
    /// share of the spilled residency.
    pub fn needed_bytes(&self) -> u64 {
        (self.cold_bytes as f64 * self.selection_ratio.clamp(0.0, 1.0)).ceil() as u64
    }
}

/// What a prefetch policy promises to have in flight before the step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchPlan {
    /// Bytes speculatively issued ahead of the step (0 = pure demand).
    pub bytes: u64,
    /// Fraction of the issued bytes that turn out to be the right ones;
    /// the rest are re-fetched on demand.
    pub accuracy: f64,
}

impl PrefetchPlan {
    /// A plan that prefetches nothing.
    pub fn demand() -> Self {
        Self {
            bytes: 0,
            accuracy: 0.0,
        }
    }

    /// Fraction of `needed` bytes this plan hides ahead of the step.
    pub fn coverage(&self, needed: u64) -> f64 {
        if needed == 0 {
            return 0.0;
        }
        (self.bytes.min(needed) as f64 / needed as f64) * self.accuracy.clamp(0.0, 1.0)
    }
}

/// Decides how much spilled KV to stream up *before* a step executes.
pub trait PrefetchPolicy {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Plans the speculative transfer for one step.
    fn plan(&self, req: &PrefetchRequest) -> PrefetchPlan;
}

/// Pure demand fetching: nothing moves until the step needs it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPrefetch;

impl PrefetchPolicy for NoPrefetch {
    fn name(&self) -> &'static str {
        "demand"
    }

    fn plan(&self, _req: &PrefetchRequest) -> PrefetchPlan {
        PrefetchPlan::demand()
    }
}

/// InfiniGen-style speculation: issue the predicted working set (the
/// selected share of the spilled bytes) ahead of the step, with a
/// calibrated prediction accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculativePrefetch {
    /// Fraction of speculated bytes that are the right ones (InfiniGen
    /// reports ~90% attention recall from partial-computation
    /// speculation).
    pub accuracy: f64,
}

impl SpeculativePrefetch {
    /// The calibrated InfiniGen-style default (90% speculation
    /// accuracy).
    pub fn infinigen_default() -> Self {
        Self { accuracy: 0.9 }
    }
}

impl PrefetchPolicy for SpeculativePrefetch {
    fn name(&self) -> &'static str {
        "speculative"
    }

    fn plan(&self, req: &PrefetchRequest) -> PrefetchPlan {
        PrefetchPlan {
            bytes: req.needed_bytes(),
            accuracy: self.accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cold: u64, ratio: f64) -> PrefetchRequest {
        PrefetchRequest {
            cold_bytes: cold,
            selection_ratio: ratio,
            generation: false,
        }
    }

    #[test]
    fn needed_bytes_is_the_selected_share_of_the_spill() {
        assert_eq!(req(1000, 0.25).needed_bytes(), 250);
        assert_eq!(req(1000, 1.0).needed_bytes(), 1000);
        assert_eq!(req(0, 0.5).needed_bytes(), 0);
        // Ratios are clamped into [0, 1].
        assert_eq!(req(1000, 7.0).needed_bytes(), 1000);
    }

    #[test]
    fn demand_policy_covers_nothing() {
        let plan = NoPrefetch.plan(&req(4096, 0.5));
        assert_eq!(plan.bytes, 0);
        assert_eq!(plan.coverage(2048), 0.0);
        assert_eq!(NoPrefetch.name(), "demand");
    }

    #[test]
    fn speculative_policy_covers_needed_bytes_at_its_accuracy() {
        let policy = SpeculativePrefetch::infinigen_default();
        let r = req(10_000, 0.3);
        let plan = policy.plan(&r);
        assert_eq!(plan.bytes, r.needed_bytes());
        assert!((plan.coverage(r.needed_bytes()) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn coverage_saturates_at_the_needed_bytes() {
        let plan = PrefetchPlan {
            bytes: 1_000_000,
            accuracy: 1.0,
        };
        assert!((plan.coverage(10) - 1.0).abs() < 1e-12);
        assert_eq!(plan.coverage(0), 0.0);
    }
}
