//! # vrex-retrieval
//!
//! The baseline KV-cache retrieval methods the paper compares ReSV
//! against, implemented from scratch over the same
//! [`vrex_model::RetrievalPolicy`] interface:
//!
//! | Policy | Paper role | Behaviour |
//! |---|---|---|
//! | [`FlexGenPolicy`] | offload baseline | offloads everything, fetches **all** tokens every step, no prediction |
//! | [`InfiniGenPolicy`] | generation-only retrieval | top-k during generation, full fetch during prefill |
//! | [`InfiniGenPPolicy`] | prefill-extended InfiniGen | fixed top-k in *both* stages |
//! | [`RekvPolicy`] | frame-level retrieval | selects whole frames by centroid score until a token budget |
//! | [`oaken::OakenModel`] | quantized-cache accelerator | 4-bit online KV quantization (capacity model + functional round trip); selects the whole cache |
//!
//! All baselines use **fixed top-k** selection — the rigidity ReSV's
//! WiCSum thresholding removes (paper §III-C). Their selection ratios
//! are configurable because the paper calibrates each method's ratio to
//! match baseline accuracy (§VI-B).

pub mod flexgen;
pub mod infinigen;
pub mod oaken;
pub mod rekv;
pub mod scoring;

pub use flexgen::FlexGenPolicy;
pub use infinigen::{InfiniGenPPolicy, InfiniGenPolicy};
pub use oaken::OakenModel;
pub use rekv::RekvPolicy;
