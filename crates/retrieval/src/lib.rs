//! # vrex-retrieval
//!
//! The baseline KV-cache retrieval methods the paper compares ReSV
//! against, implemented from scratch over the same
//! [`vrex_model::RetrievalPolicy`] interface:
//!
//! | Policy | Paper role | Behaviour |
//! |---|---|---|
//! | [`FlexGenPolicy`] | offload baseline | offloads everything, fetches **all** tokens every step, no prediction |
//! | [`InfiniGenPolicy`] | generation-only retrieval | top-k during generation, full fetch during prefill |
//! | [`InfiniGenPPolicy`] | prefill-extended InfiniGen | fixed top-k in *both* stages |
//! | [`RekvPolicy`] | frame-level retrieval | selects whole frames by centroid score until a token budget |
//! | [`oaken::OakenModel`] | quantized-cache accelerator | 4-bit online KV quantization (capacity model + functional round trip); selects the whole cache |
//!
//! All baselines use **fixed top-k** selection — the rigidity ReSV's
//! WiCSum thresholding removes (paper §III-C). Their selection ratios
//! are configurable because the paper calibrates each method's ratio to
//! match baseline accuracy (§VI-B).
//!
//! The [`prefetch`] module adds the *timing* half of the retrieval
//! story: the [`PrefetchPolicy`] seam decides whether spilled KV is
//! demand-fetched ([`NoPrefetch`]), speculatively streamed up ahead of
//! the step as a flat byte fraction ([`SpeculativePrefetch`],
//! InfiniGen-style), or speculated as a WiCSum-ranked hash-cluster set
//! ([`ClusterPrefetch`]) — the hook the tiered serving scheduler in
//! `vrex-system` prices migrations through.

#![warn(missing_docs)]

pub mod flexgen;
pub mod infinigen;
pub mod oaken;
pub mod prefetch;
pub mod rekv;
pub mod scoring;

pub use flexgen::FlexGenPolicy;
pub use infinigen::{InfiniGenPPolicy, InfiniGenPolicy};
pub use oaken::OakenModel;
pub use prefetch::{ClusterPrefetch, NoPrefetch, PrefetchPolicy, SpeculativePrefetch};
pub use rekv::RekvPolicy;
