//! FlexGen-style baseline: full offload, full fetch, no selection.

use vrex_model::policy::{RetrievalPolicy, Selection, SelectionRequest};
use vrex_tensor::Matrix;

/// The FlexGen baseline of the paper's evaluation: the KV cache lives
/// in CPU memory (server) or storage (edge) and **every** cached token
/// is fetched for every attention step. Functionally identical to
/// vanilla attention; the cost difference (PCIe/SSD traffic) is
/// modelled by `vrex-system`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlexGenPolicy;

impl FlexGenPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FlexGenPolicy
    }
}

impl RetrievalPolicy for FlexGenPolicy {
    fn name(&self) -> &str {
        "FlexGen"
    }

    fn on_keys_appended(&mut self, _: usize, _: usize, _: &Matrix, _: usize) {}

    fn select(&mut self, _: &SelectionRequest<'_>) -> Selection {
        Selection::All
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_model::policy::Stage;

    #[test]
    fn always_selects_all() {
        let mut p = FlexGenPolicy::new();
        let q = Matrix::zeros(2, 4);
        let k = Matrix::zeros(10, 4);
        for stage in [Stage::Prefill, Stage::Generation] {
            let req = SelectionRequest {
                layer: 0,
                query_head: 0,
                kv_head: 0,
                queries: &q,
                keys: &k,
                stage,
            };
            assert_eq!(p.select(&req), Selection::All);
        }
        assert_eq!(p.name(), "FlexGen");
    }
}
