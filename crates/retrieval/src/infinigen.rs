//! InfiniGen-style baselines: fixed top-k retrieval.
//!
//! * [`InfiniGenPolicy`] retrieves only during the **generation** stage
//!   (the original system's design point); during iterative prefill it
//!   fetches the full cache — which is why the paper finds it
//!   "impractical for real-time inference" on streaming video
//!   (Table II row 1: frame-stage ratio 100%).
//! * [`InfiniGenPPolicy`] ("InfiniGenP") is the paper's prefill-extended
//!   variant: fixed top-k in both stages (default 50%, the calibration
//!   the paper uses).

use vrex_model::policy::{RetrievalPolicy, Selection, SelectionRequest, Stage};
use vrex_tensor::{top_k_indices, Matrix};

use crate::scoring::block_importance;

fn top_k_selection(req: &SelectionRequest<'_>, ratio: f64) -> Selection {
    let history = req.history_len();
    if history == 0 {
        return Selection::All;
    }
    let k = ((history as f64 * ratio).ceil() as usize).min(history);
    if k == history {
        return Selection::All;
    }
    let importance = block_importance(req.queries, req.keys, history);
    let mut idx = top_k_indices(&importance, k);
    idx.sort_unstable();
    Selection::Indices(idx)
}

/// Generation-only top-k retrieval (InfiniGen).
#[derive(Debug, Clone, Copy)]
pub struct InfiniGenPolicy {
    generation_ratio: f64,
}

impl InfiniGenPolicy {
    /// Creates the policy with the given generation-stage top-k ratio.
    ///
    /// # Panics
    ///
    /// Panics if `generation_ratio` is outside `(0, 1]`.
    pub fn new(generation_ratio: f64) -> Self {
        assert!(
            generation_ratio > 0.0 && generation_ratio <= 1.0,
            "ratio must be in (0,1]"
        );
        Self { generation_ratio }
    }

    /// The paper's calibration: ~6.8% of tokens during generation.
    pub fn paper_defaults() -> Self {
        Self::new(0.068)
    }
}

impl RetrievalPolicy for InfiniGenPolicy {
    fn name(&self) -> &str {
        "InfiniGen"
    }

    fn on_keys_appended(&mut self, _: usize, _: usize, _: &Matrix, _: usize) {}

    fn select(&mut self, req: &SelectionRequest<'_>) -> Selection {
        match req.stage {
            Stage::Prefill => Selection::All,
            Stage::Generation => top_k_selection(req, self.generation_ratio),
        }
    }
}

/// Fixed top-k retrieval in both stages (InfiniGenP).
#[derive(Debug, Clone, Copy)]
pub struct InfiniGenPPolicy {
    prefill_ratio: f64,
    generation_ratio: f64,
}

impl InfiniGenPPolicy {
    /// Creates the policy with per-stage top-k ratios.
    ///
    /// # Panics
    ///
    /// Panics if either ratio is outside `(0, 1]`.
    pub fn new(prefill_ratio: f64, generation_ratio: f64) -> Self {
        for r in [prefill_ratio, generation_ratio] {
            assert!(r > 0.0 && r <= 1.0, "ratio must be in (0,1]");
        }
        Self {
            prefill_ratio,
            generation_ratio,
        }
    }

    /// The paper's calibration: ~50.8% during frame processing, ~6.8%
    /// during generation (Table II row 2).
    pub fn paper_defaults() -> Self {
        Self::new(0.508, 0.068)
    }
}

impl RetrievalPolicy for InfiniGenPPolicy {
    fn name(&self) -> &str {
        "InfiniGenP"
    }

    fn on_keys_appended(&mut self, _: usize, _: usize, _: &Matrix, _: usize) {}

    fn select(&mut self, req: &SelectionRequest<'_>) -> Selection {
        let ratio = match req.stage {
            Stage::Prefill => self.prefill_ratio,
            Stage::Generation => self.generation_ratio,
        };
        top_k_selection(req, ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

    fn request<'a>(q: &'a Matrix, k: &'a Matrix, stage: Stage) -> SelectionRequest<'a> {
        SelectionRequest {
            layer: 0,
            query_head: 0,
            kv_head: 0,
            queries: q,
            keys: k,
            stage,
        }
    }

    #[test]
    fn infinigen_full_fetch_in_prefill() {
        let mut rng = seeded_rng(2);
        let q = gaussian_matrix(&mut rng, 3, 8, 1.0);
        let k = gaussian_matrix(&mut rng, 23, 8, 1.0);
        let mut p = InfiniGenPolicy::paper_defaults();
        assert_eq!(p.select(&request(&q, &k, Stage::Prefill)), Selection::All);
        let history = 20;
        let idx = p
            .select(&request(&q, &k, Stage::Generation))
            .resolve(history)
            .into_vec();
        assert_eq!(idx.len(), (20.0f64 * 0.068).ceil() as usize);
        assert!(idx.windows(2).all(|w| w[0] < w[1]), "must be ascending");
    }

    #[test]
    fn infinigenp_fixed_k_in_both_stages() {
        let mut rng = seeded_rng(3);
        let q = gaussian_matrix(&mut rng, 2, 8, 1.0);
        let k = gaussian_matrix(&mut rng, 42, 8, 1.0);
        let mut p = InfiniGenPPolicy::new(0.5, 0.1);
        let history = 40;
        let prefill = p.select(&request(&q, &k, Stage::Prefill)).resolve(history);
        assert!(!prefill.is_total(), "prefill must filter at ratio 0.5");
        assert_eq!(prefill.len(), history / 2);
        let generation = p
            .select(&request(&q, &k, Stage::Generation))
            .resolve(history);
        assert!(
            !generation.is_total(),
            "generation must filter at ratio 0.1"
        );
        assert_eq!(generation.len(), 4);
    }

    #[test]
    fn top_k_picks_highest_scoring_tokens() {
        // One history key aligned with the query must always be kept.
        let q = Matrix::from_rows(&[&[10.0, 0.0]]);
        let mut k = Matrix::zeros(11, 2);
        k.row_mut(4)[0] = 10.0; // history token 4 aligned with q
        let mut p = InfiniGenPPolicy::new(0.1, 0.1);
        let history = 10;
        let idx = p
            .select(&request(&q, &k, Stage::Prefill))
            .resolve(history)
            .into_vec();
        assert_eq!(idx, vec![4]);
    }

    #[test]
    fn ratio_one_selects_all() {
        let mut rng = seeded_rng(4);
        let q = gaussian_matrix(&mut rng, 1, 8, 1.0);
        let k = gaussian_matrix(&mut rng, 9, 8, 1.0);
        let mut p = InfiniGenPPolicy::new(1.0, 1.0);
        assert_eq!(p.select(&request(&q, &k, Stage::Prefill)), Selection::All);
    }

    #[test]
    fn empty_history_selects_all() {
        let mut rng = seeded_rng(5);
        let q = gaussian_matrix(&mut rng, 4, 8, 1.0);
        let k = gaussian_matrix(&mut rng, 4, 8, 1.0);
        let mut p = InfiniGenPPolicy::paper_defaults();
        assert_eq!(p.select(&request(&q, &k, Stage::Prefill)), Selection::All);
    }

    #[test]
    #[should_panic(expected = "ratio must be in (0,1]")]
    fn zero_ratio_rejected() {
        let _ = InfiniGenPolicy::new(0.0);
    }
}
