//! ReKV-style baseline: frame-granular KV retrieval.
//!
//! ReKV selects *whole frames* of cached tokens: each frame's keys are
//! summarised by their centroid, frames are ranked by query-centroid
//! score, and top frames are fetched until a token budget is met. The
//! coarse granularity keeps selection cheap but forces a high retrieval
//! ratio to maintain accuracy (paper Table II row 3: ~58% at frame
//! stage, ~31% at generation).

use vrex_model::policy::{RetrievalPolicy, Selection, SelectionRequest, Stage};
use vrex_tensor::Matrix;

/// Frame-level top-k retrieval.
#[derive(Debug, Clone, Copy)]
pub struct RekvPolicy {
    tokens_per_frame: usize,
    prefill_ratio: f64,
    generation_ratio: f64,
}

impl RekvPolicy {
    /// Creates the policy. `tokens_per_frame` is the chunking
    /// granularity (the model's visual tokens per frame).
    ///
    /// # Panics
    ///
    /// Panics if `tokens_per_frame == 0` or a ratio is outside `(0, 1]`.
    pub fn new(tokens_per_frame: usize, prefill_ratio: f64, generation_ratio: f64) -> Self {
        assert!(tokens_per_frame > 0, "tokens_per_frame must be positive");
        for r in [prefill_ratio, generation_ratio] {
            assert!(r > 0.0 && r <= 1.0, "ratio must be in (0,1]");
        }
        Self {
            tokens_per_frame,
            prefill_ratio,
            generation_ratio,
        }
    }

    /// The paper's calibration (Table II row 3): ~58.4% frame stage,
    /// ~31.2% generation stage.
    pub fn paper_defaults(tokens_per_frame: usize) -> Self {
        Self::new(tokens_per_frame, 0.584, 0.312)
    }

    fn frame_scores(&self, queries: &Matrix, keys: &Matrix, history: usize) -> Vec<f32> {
        let n_frames = history.div_ceil(self.tokens_per_frame);
        let d = queries.cols();
        let scale = 1.0 / (d as f32).sqrt();
        let mut scores = vec![f32::NEG_INFINITY; n_frames];
        for (f, score) in scores.iter_mut().enumerate() {
            let start = f * self.tokens_per_frame;
            let end = ((f + 1) * self.tokens_per_frame).min(history);
            // Frame centroid key.
            let mut centroid = vec![0.0f32; d];
            for t in start..end {
                for (c, &k) in centroid.iter_mut().zip(keys.row(t)) {
                    *c += k;
                }
            }
            let n = (end - start) as f32;
            for c in &mut centroid {
                *c /= n;
            }
            // Max over query rows.
            for r in 0..queries.rows() {
                let dot: f32 = queries
                    .row(r)
                    .iter()
                    .zip(&centroid)
                    .map(|(a, b)| a * b)
                    .sum();
                let s = dot * scale;
                if s > *score {
                    *score = s;
                }
            }
        }
        scores
    }
}

impl RetrievalPolicy for RekvPolicy {
    fn name(&self) -> &str {
        "ReKV"
    }

    fn on_keys_appended(&mut self, _: usize, _: usize, _: &Matrix, _: usize) {}

    fn select(&mut self, req: &SelectionRequest<'_>) -> Selection {
        let history = req.history_len();
        if history == 0 {
            return Selection::All;
        }
        let ratio = match req.stage {
            Stage::Prefill => self.prefill_ratio,
            Stage::Generation => self.generation_ratio,
        };
        let budget = ((history as f64 * ratio).ceil() as usize).min(history);
        if budget == history {
            return Selection::All;
        }
        let scores = self.frame_scores(req.queries, req.keys, history);
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut selected = Vec::new();
        for f in order {
            if selected.len() >= budget {
                break;
            }
            let start = f * self.tokens_per_frame;
            let end = ((f + 1) * self.tokens_per_frame).min(history);
            selected.extend(start..end);
        }
        selected.sort_unstable();
        Selection::Indices(selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

    fn request<'a>(q: &'a Matrix, k: &'a Matrix, stage: Stage) -> SelectionRequest<'a> {
        SelectionRequest {
            layer: 0,
            query_head: 0,
            kv_head: 0,
            queries: q,
            keys: k,
            stage,
        }
    }

    #[test]
    fn selects_whole_frames() {
        let mut rng = seeded_rng(6);
        let q = gaussian_matrix(&mut rng, 1, 8, 1.0);
        let k = gaussian_matrix(&mut rng, 41, 8, 1.0); // 40 history + 1 new
        let mut p = RekvPolicy::new(4, 0.5, 0.5);
        let history = 40;
        let sel = p.select(&request(&q, &k, Stage::Prefill)).resolve(history);
        assert!(!sel.is_total(), "ratio 0.5 must filter");
        // Every selected frame contributes its full 4 tokens.
        let idx = sel.indices();
        assert_eq!(idx.len() % 4, 0);
        for chunk in idx.chunks(4) {
            assert_eq!(chunk[0] % 4, 0, "frame must start on a boundary");
            assert!(chunk.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }

    #[test]
    fn budget_respects_ratio() {
        let mut rng = seeded_rng(7);
        let q = gaussian_matrix(&mut rng, 2, 8, 1.0);
        let k = gaussian_matrix(&mut rng, 82, 8, 1.0);
        let mut p = RekvPolicy::new(4, 0.25, 0.25);
        let history = 80;
        let sel = p.select(&request(&q, &k, Stage::Prefill)).resolve(history);
        assert!(sel.len() >= history / 4);
        assert!(sel.len() <= history / 4 + 4, "at most one extra frame");
    }

    #[test]
    fn best_matching_frame_is_selected() {
        let q = Matrix::from_rows(&[&[5.0, 0.0]]);
        let mut k = Matrix::zeros(13, 2); // 12 history (3 frames of 4) + 1 new
        for t in 4..8 {
            k.row_mut(t)[0] = 5.0; // frame 1 matches the query
        }
        // budget = ceil(12 * 0.33) = 4 tokens = exactly one frame
        let mut p = RekvPolicy::new(4, 0.33, 0.33);
        let history = 12;
        let idx = p
            .select(&request(&q, &k, Stage::Prefill))
            .resolve(history)
            .into_vec();
        assert_eq!(idx, vec![4, 5, 6, 7]);
    }

    #[test]
    fn generation_uses_generation_ratio() {
        let mut rng = seeded_rng(8);
        let q = gaussian_matrix(&mut rng, 1, 8, 1.0);
        let k = gaussian_matrix(&mut rng, 41, 8, 1.0);
        let mut p = RekvPolicy::new(4, 0.9, 0.1);
        let pre = p
            .select(&request(&q, &k, Stage::Prefill))
            .selected_count(40);
        let gen = p
            .select(&request(&q, &k, Stage::Generation))
            .selected_count(40);
        assert!(gen < pre);
    }

    #[test]
    fn partial_last_frame_is_handled() {
        let mut rng = seeded_rng(9);
        let q = gaussian_matrix(&mut rng, 1, 8, 1.0);
        let k = gaussian_matrix(&mut rng, 11, 8, 1.0); // 10 history = 2.5 frames
        let mut p = RekvPolicy::new(4, 0.5, 0.5);
        let sel = p.select(&request(&q, &k, Stage::Prefill)).resolve(10);
        assert!(sel.indices().iter().all(|&i| i < 10));
    }
}
