//! Oaken-style online 4-bit KV-cache quantization (Fig. 15 comparator).
//!
//! Oaken is not a retrieval system: it keeps the whole (quantized)
//! cache in device memory, stretching capacity ~4× but still going OOM
//! once the stream outgrows it — exactly the failure mode Fig. 15
//! plots. This module provides (a) the capacity model used by the
//! system simulator and (b) a functional quantize/attend round trip so
//! the accuracy cost of 4-bit KV can be measured.

use vrex_model::policy::{RetrievalPolicy, Selection, SelectionRequest};
use vrex_model::ModelConfig;
use vrex_tensor::{Matrix, QuantScheme, QuantizedMatrix};

/// Capacity and fidelity model of Oaken's quantized KV cache.
#[derive(Debug, Clone, Copy)]
pub struct OakenModel {
    scheme: QuantScheme,
}

impl OakenModel {
    /// The paper's configuration: 4-bit online quantization
    /// (group size 128, one scale per head-dim vector).
    pub fn paper_defaults() -> Self {
        Self {
            scheme: QuantScheme::Int4 { group_size: 128 },
        }
    }

    /// Creates the model with a custom scheme.
    pub fn new(scheme: QuantScheme) -> Self {
        Self { scheme }
    }

    /// The quantization scheme.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Effective KV bytes per cached token under quantization.
    pub fn kv_bytes_per_token(&self, cfg: &ModelConfig) -> usize {
        let elements_per_token = 2 * cfg.n_layers * cfg.n_kv_heads * cfg.head_dim;
        self.scheme.storage_bytes(elements_per_token)
    }

    /// Capacity multiplier versus the BF16 cache.
    pub fn capacity_gain(&self, cfg: &ModelConfig) -> f64 {
        cfg.kv_bytes_per_token() as f64 / self.kv_bytes_per_token(cfg) as f64
    }

    /// Quantize-dequantize round trip of a KV matrix (the functional
    /// path: attention then runs on the dequantized values).
    pub fn round_trip(&self, kv: &Matrix) -> Matrix {
        QuantizedMatrix::quantize(kv, self.scheme).dequantize()
    }
}

/// Oaken plugs into the retrieval-policy seam as a *pass-through*
/// selector: it attends to the whole (quantized) cache — its savings
/// come from storage density, not from filtering, so its selection is
/// always total. Note that the policy seam only controls *which*
/// tokens are attended; Oaken's 4-bit fidelity cost is modelled
/// separately through [`OakenModel::round_trip`], so driving this
/// policy through the accuracy proxy measures full-attention behaviour
/// (zero divergence), not quantization error.
impl RetrievalPolicy for OakenModel {
    fn name(&self) -> &str {
        "Oaken"
    }

    fn on_keys_appended(&mut self, _: usize, _: usize, _: &Matrix, _: usize) {}

    fn select(&mut self, _: &SelectionRequest<'_>) -> Selection {
        Selection::All
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

    #[test]
    fn oaken_policy_contract_is_total_pass_through() {
        use vrex_model::policy::Stage;
        let mut m = OakenModel::paper_defaults();
        let mut rng = seeded_rng(12);
        let q = gaussian_matrix(&mut rng, 2, 8, 1.0);
        let k = gaussian_matrix(&mut rng, 10, 8, 1.0);
        let req = SelectionRequest {
            layer: 0,
            query_head: 0,
            kv_head: 0,
            queries: &q,
            keys: &k,
            stage: Stage::Generation,
        };
        assert_eq!(m.name(), "Oaken");
        assert_eq!(m.select(&req), Selection::All);
        let resolved = m.select_resolved(&req);
        assert!(resolved.is_total());
        assert_eq!(resolved.total(), req.history_len());
    }

    #[test]
    fn capacity_gain_is_close_to_4x() {
        let m = OakenModel::paper_defaults();
        let gain = m.capacity_gain(&ModelConfig::llama3_8b());
        assert!(
            (3.5..=4.0).contains(&gain),
            "4-bit + scales should give ~3.9x, got {gain}"
        );
    }

    #[test]
    fn round_trip_error_is_small_relative_to_signal() {
        let m = OakenModel::paper_defaults();
        let mut rng = seeded_rng(10);
        let kv = gaussian_matrix(&mut rng, 32, 128, 1.0);
        let rt = m.round_trip(&kv);
        let err = (&kv - &rt).frobenius_norm() / kv.frobenius_norm();
        assert!(err < 0.15, "relative error {err} too large for 4-bit");
        assert!(err > 0.0, "quantization must not be lossless");
    }

    #[test]
    fn quantized_cache_delays_oom_but_not_forever() {
        // At 10 FPS / 10 tokens per frame, check the OOM horizon moves
        // out by the capacity gain (Fig. 15's qualitative shape).
        let cfg = ModelConfig::llama3_8b();
        let m = OakenModel::paper_defaults();
        let budget = (32usize << 30) - cfg.param_bytes();
        let tokens_plain = budget / cfg.kv_bytes_per_token();
        let tokens_oaken = budget / m.kv_bytes_per_token(&cfg);
        assert!(tokens_oaken > 3 * tokens_plain);
        assert!(tokens_oaken < 5 * tokens_plain);
    }
}
