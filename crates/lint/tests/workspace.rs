//! The end-to-end contracts: the shipped tree lints clean (every
//! finding waived with a reason), an injected violation turns the run
//! red, and the multi-device placement module is genuinely covered by
//! the full rule set.

use std::path::Path;
use vrex_lint::config::{ALL_RULES, WORKSPACE};
use vrex_lint::rules::REGISTRY;
use vrex_lint::run_workspace;
use vrex_lint::runner::lint_source;

#[test]
fn shipped_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_workspace(&root).expect("workspace scan");
    let active: Vec<_> = out.findings.iter().filter(|f| f.waived.is_none()).collect();
    assert!(
        active.is_empty(),
        "unwaived findings in the shipped tree:\n{}",
        out.render_text()
    );
    // Sanity that the scan actually covered the workspace rather than
    // silently skipping it (e.g. a bad root path).
    assert!(
        out.files_scanned > 80,
        "only scanned {} files — wrong root?",
        out.files_scanned
    );
    // Every waiver in the tree must be load-bearing.
    assert!(
        out.unused_waivers.is_empty(),
        "stale waivers: {:?}",
        out.unused_waivers
    );
    // And every waiver carries a substantive reason, not a placeholder.
    for f in &out.findings {
        if let Some(reason) = &f.waived {
            assert!(
                reason.split_whitespace().count() >= 3,
                "{}:{} waiver reason too thin: {reason:?}",
                f.file,
                f.line
            );
        }
    }
}

/// The placement layer routes sessions and prices fabric migrations —
/// hash-order iteration or float time there would silently break the
/// cross-device golden fingerprints. Pin that the module is scanned
/// under *every* registered rule with no waivers and no
/// float-time-boundary carve-out: `crates/system` enforces the full
/// set, `placement.rs` is not a report boundary, and the shipped
/// source produces zero findings when all five rules are applied.
#[test]
fn placement_module_is_covered_by_every_rule() {
    let cfg = WORKSPACE
        .iter()
        .find(|c| c.rel == "crates/system")
        .expect("crates/system is configured");
    assert!(std::ptr::eq(cfg.rules, ALL_RULES));
    assert_eq!(
        cfg.rules.len(),
        REGISTRY.len(),
        "crates/system no longer enforces the full registry"
    );
    for def in REGISTRY {
        assert!(
            cfg.rules.contains(&def.name),
            "rule `{}` not enforced on crates/system",
            def.name
        );
    }
    let rel = "crates/system/src/placement.rs";
    assert!(
        !cfg.float_time_boundary.contains(&rel),
        "placement.rs must stay integer-time, not a report boundary"
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    let src = std::fs::read_to_string(&path).expect("placement.rs readable");
    let out = lint_source(&src, rel, cfg);
    assert!(
        out.findings.is_empty(),
        "placement.rs has findings (waived or not) under the full rule set:\n{:?}",
        out.findings
    );
}

#[test]
fn injected_violation_fails_the_run() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("vrex_lint_injected");
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("tmp tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    )
    .expect("write injected violation");
    let out = run_workspace(&root).expect("scan tmp tree");
    assert!(out.unwaived() >= 1, "{}", out.render_text());
    assert!(out
        .findings
        .iter()
        .any(|f| f.rule == "wall-clock-in-sim" && f.file == "crates/core/src/lib.rs"));
}
