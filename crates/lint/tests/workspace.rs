//! The two end-to-end contracts: the shipped tree lints clean (every
//! finding waived with a reason), and an injected violation turns the
//! run red.

use std::path::Path;
use vrex_lint::run_workspace;

#[test]
fn shipped_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_workspace(&root).expect("workspace scan");
    let active: Vec<_> = out.findings.iter().filter(|f| f.waived.is_none()).collect();
    assert!(
        active.is_empty(),
        "unwaived findings in the shipped tree:\n{}",
        out.render_text()
    );
    // Sanity that the scan actually covered the workspace rather than
    // silently skipping it (e.g. a bad root path).
    assert!(
        out.files_scanned > 80,
        "only scanned {} files — wrong root?",
        out.files_scanned
    );
    // Every waiver in the tree must be load-bearing.
    assert!(
        out.unused_waivers.is_empty(),
        "stale waivers: {:?}",
        out.unused_waivers
    );
    // And every waiver carries a substantive reason, not a placeholder.
    for f in &out.findings {
        if let Some(reason) = &f.waived {
            assert!(
                reason.split_whitespace().count() >= 3,
                "{}:{} waiver reason too thin: {reason:?}",
                f.file,
                f.line
            );
        }
    }
}

#[test]
fn injected_violation_fails_the_run() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("vrex_lint_injected");
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("tmp tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    )
    .expect("write injected violation");
    let out = run_workspace(&root).expect("scan tmp tree");
    assert!(out.unwaived() >= 1, "{}", out.render_text());
    assert!(out
        .findings
        .iter()
        .any(|f| f.rule == "wall-clock-in-sim" && f.file == "crates/core/src/lib.rs"));
}
