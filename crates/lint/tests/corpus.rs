//! Golden corpus tests: every `.rs` fixture under `tests/fixtures/`
//! has a sidecar `.expected` file listing the findings it must produce,
//! one per line, as `line:rule:active|waived` (unused waivers appear as
//! `line:unused-waiver:note`). The corpus is also the meta-proof that
//! every registered rule actually fires on something.

use std::path::{Path, PathBuf};
use vrex_lint::config::ALL_RULES;
use vrex_lint::rules::{BAD_WAIVER, REGISTRY};
use vrex_lint::runner::{lint_source, FileOutcome};
use vrex_lint::CrateCfg;

const FIXTURE_CFG: CrateCfg = CrateCfg {
    rel: "crates/fixture",
    rules: ALL_RULES,
    float_time_boundary: &[],
};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_stems() -> Vec<String> {
    let mut stems: Vec<String> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .map(|p| p.file_stem().expect("stem").to_string_lossy().into_owned())
        .collect();
    stems.sort();
    stems
}

fn lint_fixture(stem: &str) -> FileOutcome {
    let src = std::fs::read_to_string(fixtures_dir().join(format!("{stem}.rs")))
        .expect("fixture readable");
    // Fixtures pose as library files of a synthetic crate so every rule
    // (including the lib-only panicking-seam) applies.
    lint_source(&src, &format!("crates/fixture/src/{stem}.rs"), &FIXTURE_CFG)
}

/// Renders a file outcome in the golden format, sorted by
/// (line, rule, status).
fn render(out: &FileOutcome) -> Vec<String> {
    let mut rows: Vec<(u32, String)> = out
        .findings
        .iter()
        .map(|f| {
            let status = if f.waived.is_some() {
                "waived"
            } else {
                "active"
            };
            (f.line, format!("{}:{}:{status}", f.line, f.rule))
        })
        .collect();
    rows.extend(
        out.unused_waivers
            .iter()
            .map(|(_, line)| (*line, format!("{line}:unused-waiver:note"))),
    );
    rows.sort();
    rows.into_iter().map(|(_, s)| s).collect()
}

#[test]
fn every_fixture_matches_its_golden_expectations() {
    let stems = fixture_stems();
    assert!(stems.len() >= 6, "corpus shrank: {stems:?}");
    for stem in &stems {
        let expected_path = fixtures_dir().join(format!("{stem}.expected"));
        let expected: Vec<String> = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("fixture {stem}.rs has no sidecar {stem}.expected"))
            .lines()
            .map(str::to_string)
            .collect();
        assert!(!expected.is_empty(), "{stem}.expected is empty");
        let got = render(&lint_fixture(stem));
        assert_eq!(
            got, expected,
            "fixture {stem}.rs diverged from {stem}.expected"
        );
    }
}

#[test]
fn every_registered_rule_fires_somewhere_in_the_corpus() {
    let mut fired: Vec<String> = Vec::new();
    for stem in fixture_stems() {
        fired.extend(lint_fixture(&stem).findings.into_iter().map(|f| f.rule));
    }
    for def in REGISTRY {
        assert!(
            fired.iter().any(|r| r == def.name),
            "rule `{}` fires on no fixture — the corpus no longer proves it works",
            def.name
        );
    }
    // The synthetic bad-waiver rule must be exercised too (reason-less
    // and unknown-rule waivers in waivers.rs).
    assert!(fired.iter().any(|r| r == BAD_WAIVER));
}

#[test]
fn waived_findings_are_reported_not_dropped() {
    let out = lint_fixture("waivers");
    let waived: Vec<_> = out.findings.iter().filter(|f| f.waived.is_some()).collect();
    assert_eq!(waived.len(), 2, "{:?}", out.findings);
    for f in &waived {
        let reason = f.waived.as_deref().expect("waived");
        assert!(
            !reason.trim().is_empty(),
            "waiver attached without a reason: {f:?}"
        );
        assert!(reason.contains("fixture:"), "reason lost text: {reason}");
    }
    // Waived findings still show up in both renderers.
    let outcome = vrex_lint::Outcome {
        findings: out.findings.clone(),
        files_scanned: 1,
        unused_waivers: Vec::new(),
    };
    let txt = outcome.render_text();
    assert!(txt.contains("waived — fixture: caller checked is_some()"));
    let js = outcome.render_json();
    assert!(js.contains("\"waived\": true"));
    assert!(js.contains("fixture: slot is always armed here"));
}
