//! Fixture: waiver mechanics. Waived findings stay in the report as
//! waived; reason-less or unknown-rule waivers are bad-waiver findings.

fn waived_trailing(slot: Option<u32>) -> u32 {
    slot.unwrap() // vrex-lint: allow(panicking-seam) — fixture: caller checked is_some()
}

fn waived_standalone(slot: Option<u32>) -> u32 {
    // vrex-lint: allow(panicking-seam) — fixture: slot is always armed here
    slot.unwrap()
}

fn reasonless_is_bad(slot: Option<u32>) -> u32 {
    // vrex-lint: allow(panicking-seam)
    slot.unwrap()
}

fn unknown_rule_is_bad(slot: Option<u32>) -> u32 {
    // vrex-lint: allow(no-such-rule) — fixture: rule name typo
    slot.unwrap()
}

fn unused_waiver_is_noted(slot: Option<u32>) -> u32 {
    // vrex-lint: allow(panicking-seam) — fixture: nothing to waive below
    slot.unwrap_or(0)
}
