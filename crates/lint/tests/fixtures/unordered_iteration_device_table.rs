//! Fixture: `unordered-iteration` on a HashMap-keyed *device table* —
//! the exact hazard the multi-device placement layer avoids. Picking a
//! least-loaded device by iterating a hash map would tie-break in
//! run-varying order; the shipped placer keys devices by dense index
//! (`Vec`) and expiry state by `BTreeMap` so every sweep is ordered.

use std::collections::{BTreeMap, HashMap};

fn keyed_demand_lookup_is_fine(table: HashMap<usize, u64>, device: usize) -> u64 {
    table.get(&device).copied().unwrap_or(0)
}

fn least_loaded_over_hash_table_fires(table: HashMap<usize, u64>) -> Option<usize> {
    table
        .iter()
        .min_by_key(|&(_, demand)| *demand)
        .map(|(device, _)| *device)
}

fn fleet_demand_over_values_fires(table: HashMap<usize, u64>) -> u64 {
    let mut total = 0;
    for demand in table.values() {
        total += demand;
    }
    total
}

fn ordered_device_table_is_fine(by_device: BTreeMap<usize, u64>) -> Option<usize> {
    by_device
        .iter()
        .min_by_key(|&(_, demand)| *demand)
        .map(|(device, _)| *device)
}
