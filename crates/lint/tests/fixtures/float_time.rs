//! Fixture: `float-time`. Picosecond values must stay integer until a
//! report boundary; sanctioned conversions and fn signatures are masked.

const FIXED_OVERHEAD_PS: u64 = 250_000;

fn sanctioned(flops: u64, utilization: f64) -> u64 {
    seconds_to_ps(flops as f64 / (1.0e12 * utilization)) + FIXED_OVERHEAD_PS
}

fn derate_fires(step_ps: u64) -> u64 {
    (step_ps as f64 * 0.9) as u64
}

fn seconds_fires(busy_ps: u64) -> f64 {
    busy_ps as f64 / 1.0e12
}

#[cfg(test)]
mod tests {
    fn skipped_in_tests(x_ps: u64) -> f64 {
        x_ps as f64 * 2.0
    }
}
