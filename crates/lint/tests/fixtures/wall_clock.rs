//! Fixture: `wall-clock-in-sim`. Host clocks fire even inside test
//! regions — sim time is integer picoseconds everywhere.

fn sim_step(now_ps: u64) -> u64 {
    now_ps + 1
}

fn leaks_wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    fn also_fires_in_tests() -> std::time::SystemTime {
        std::time::SystemTime::now()
    }
}
