//! Fixture: `float-eq`. Exact float comparison is only meaningful at
//! golden-pinning sites; integer comparison is always fine.

fn integer_compare_is_fine(a: u64, b: u64) -> bool {
    a == b && a != 3
}

fn float_literal_fires(score: f64) -> bool {
    score == 0.5
}

fn cast_compare_fires(a: u64, b: f64) -> bool {
    a as f64 != b
}
