//! Fixture: `unordered-iteration`. Keyed lookup passes; iteration,
//! for-loops, and collect() into hash containers fire.

use std::collections::{HashMap, HashSet};

fn keyed_lookup_is_fine(index: HashMap<u64, u64>) -> u64 {
    index.get(&7).copied().unwrap_or(0)
}

fn iteration_fires(index: HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for (_page, residency) in &index {
        sum += residency;
    }
    sum + index.keys().count() as u64
}

fn collect_fires(ids: &[usize]) -> bool {
    let live: HashSet<usize> = ids.iter().copied().collect();
    live.contains(&1)
}
