//! Fixture: `unordered-iteration` on a per-session *cluster residency*
//! map — the hazard the cluster-granular KV tier avoids. Spill victim
//! selection and restore planning iterate a session's spilled
//! clusters; over a `HashMap` the victim order would vary run to run,
//! so the shipped manager keys spilled clusters by coldness rank in a
//! `BTreeMap` and iteration order *is* the ranking.

use std::collections::{BTreeMap, HashMap};

fn single_cluster_lookup_is_fine(spilled: HashMap<u64, u64>, rank: u64) -> u64 {
    spilled.get(&rank).copied().unwrap_or(0)
}

fn coldest_cluster_over_hash_map_fires(spilled: HashMap<u64, u64>) -> Option<u64> {
    spilled.iter().map(|(rank, _)| *rank).min()
}

fn spilled_bytes_over_values_fires(spilled: HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for bytes in spilled.values() {
        total += bytes;
    }
    total
}

fn rank_ordered_cluster_map_is_fine(by_rank: BTreeMap<u64, u64>) -> u64 {
    by_rank.iter().map(|(_, bytes)| *bytes).sum()
}
