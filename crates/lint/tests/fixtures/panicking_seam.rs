//! Fixture: `panicking-seam`. Library code must not panic across the
//! serving seam; `#[cfg(test)]` regions may assert freely.

fn unwrap_fires(slot: Option<u32>) -> u32 {
    slot.unwrap()
}

fn expect_fires(slot: Option<u32>) -> u32 {
    slot.expect("slot is live")
}

fn unreachable_fires(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => unreachable!("kinds are exhaustive"),
    }
}

fn unwrap_or_is_fine(slot: Option<u32>) -> u32 {
    slot.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    fn asserts_freely(slot: Option<u32>) -> u32 {
        slot.unwrap()
    }
}
