//! Walks the workspace, applies the configured rules per file, and
//! attaches waivers to findings.

use crate::config::{CrateCfg, WORKSPACE};
use crate::lexer::{lex, Lexed};
use crate::report::{Finding, Outcome};
use crate::rules::{build_ctx, is_known_rule, rule, FileKind, BAD_WAIVER};
use std::io;
use std::path::{Path, PathBuf};

/// Lints every configured crate under `root` (the workspace root).
pub fn run_workspace(root: &Path) -> io::Result<Outcome> {
    let mut out = Outcome::default();
    for cfg in WORKSPACE {
        let dir = root.join(cfg.rel);
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            let file_out = lint_file(&path, &rel, cfg)?;
            out.findings.extend(file_out.findings);
            out.unused_waivers.extend(file_out.unused_waivers);
            out.files_scanned += 1;
        }
    }
    out.findings.sort();
    out.unused_waivers.sort();
    Ok(out)
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings with waiver status attached, unsorted.
    pub findings: Vec<Finding>,
    /// Waivers in this file that matched nothing.
    pub unused_waivers: Vec<(String, u32)>,
}

/// Lints a single file under crate config `cfg`. `rel` is the
/// root-relative path used in reports and boundary lookups.
pub fn lint_file(path: &Path, rel: &str, cfg: &CrateCfg) -> io::Result<FileOutcome> {
    let src = std::fs::read_to_string(path)?;
    Ok(lint_source(&src, rel, cfg))
}

/// Lints already-loaded source text (the testable core of
/// [`lint_file`]).
pub fn lint_source(src: &str, rel: &str, cfg: &CrateCfg) -> FileOutcome {
    let lexed = lex(src);
    let kind = classify(rel);
    let ctx = build_ctx(&lexed, kind);
    let mut findings = Vec::new();
    for name in cfg.rules {
        let def = rule(name).expect("config names a registered rule");
        if kind == FileKind::Test && !def.include_tests {
            continue;
        }
        if def.lib_only && kind != FileKind::Lib {
            continue;
        }
        if *name == "float-time" && cfg.float_time_boundary.contains(&rel) {
            continue;
        }
        for raw in (def.check)(&ctx) {
            findings.push(Finding {
                file: rel.to_string(),
                line: raw.line,
                rule: (*name).to_string(),
                message: raw.message,
                waived: None,
            });
        }
    }
    attach_waivers(&lexed, rel, findings)
}

/// Classifies a file as library or test/bench/example code from its
/// root-relative path.
fn classify(rel: &str) -> FileKind {
    let in_dir = |d: &str| rel.split('/').any(|seg| seg == d);
    // The facade's own sources live under `src/`; a crate's integration
    // tests under `crates/<c>/tests/`. The root `tests/` dir is Test.
    if rel.starts_with("tests/") || in_dir("benches") || in_dir("examples") {
        return FileKind::Test;
    }
    if in_dir("tests") {
        return FileKind::Test;
    }
    FileKind::Lib
}

/// Applies the file's waivers: a waiver on line `W` covers findings on
/// `W` itself (trailing comment) or — when the waiver is a standalone
/// comment line — on the next line that has code. Malformed waivers
/// become unwaivable `bad-waiver` findings; untargeted waivers are
/// reported as notes.
fn attach_waivers(lexed: &Lexed, rel: &str, mut findings: Vec<Finding>) -> FileOutcome {
    let mut unused = Vec::new();
    let has_code_on = |line: u32| lexed.toks.iter().any(|t| t.line == line);
    for w in &lexed.waivers {
        if let Some(msg) = &w.malformed {
            findings.push(Finding {
                file: rel.to_string(),
                line: w.line,
                rule: BAD_WAIVER.to_string(),
                message: msg.clone(),
                waived: None,
            });
            continue;
        }
        if let Some(bad) = w.rules.iter().find(|r| !is_known_rule(r)) {
            findings.push(Finding {
                file: rel.to_string(),
                line: w.line,
                rule: BAD_WAIVER.to_string(),
                message: format!("waiver names unknown rule `{bad}`"),
                waived: None,
            });
            continue;
        }
        // Target line: the waiver's own line when it trails code, else
        // the next line that has any token.
        let target = if has_code_on(w.line) {
            w.line
        } else {
            lexed
                .toks
                .iter()
                .map(|t| t.line)
                .filter(|&l| l > w.line)
                .min()
                .unwrap_or(w.line)
        };
        let mut used = false;
        for f in findings.iter_mut() {
            if f.line == target && f.waived.is_none() && w.rules.contains(&f.rule) {
                f.waived = Some(w.reason.clone());
                used = true;
            }
        }
        if !used {
            unused.push((rel.to_string(), w.line));
        }
    }
    FileOutcome {
        findings,
        unused_waivers: unused,
    }
}

/// Recursively collects `.rs` files, skipping `target/` build dirs and
/// `fixtures/` corpora (golden lint-test inputs that contain deliberate
/// violations and malformed waivers).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            if entry.file_name() == "target" || entry.file_name() == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ALL_RULES;

    const TEST_CFG: CrateCfg = CrateCfg {
        rel: "crates/fake",
        rules: ALL_RULES,
        float_time_boundary: &[],
    };

    #[test]
    fn trailing_waiver_attaches_and_reports_waived() {
        let src = "fn f(o: Option<u8>) -> u8 {\n    o.unwrap() // vrex-lint: allow(panicking-seam) — caller guarantees Some\n}\n";
        let out = lint_source(src, "crates/fake/src/a.rs", &TEST_CFG);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(
            out.findings[0].waived.as_deref(),
            Some("caller guarantees Some")
        );
        assert!(out.unused_waivers.is_empty());
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let src = "fn f(o: Option<u8>) -> u8 {\n    // vrex-lint: allow(panicking-seam) — caller guarantees Some\n    o.unwrap()\n}\n";
        let out = lint_source(src, "crates/fake/src/a.rs", &TEST_CFG);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].waived.is_some());
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_attach() {
        let src = "fn f(o: Option<u8>) -> u8 {\n    o.unwrap() // vrex-lint: allow(float-time) — wrong rule\n}\n";
        let out = lint_source(src, "crates/fake/src/a.rs", &TEST_CFG);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].waived.is_none());
        assert_eq!(out.unused_waivers.len(), 1);
    }

    #[test]
    fn malformed_waiver_is_a_bad_waiver_finding() {
        let src = "// vrex-lint: allow(panicking-seam)\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let out = lint_source(src, "crates/fake/src/a.rs", &TEST_CFG);
        let bad: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == BAD_WAIVER)
            .collect();
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("mandatory"));
        // And the unwrap stays active: a reason-less waiver waives nothing.
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == "panicking-seam" && f.waived.is_none()));
    }

    #[test]
    fn boundary_module_is_exempt_from_float_time_only() {
        let cfg = CrateCfg {
            rel: "crates/fake",
            rules: ALL_RULES,
            float_time_boundary: &["crates/fake/src/report.rs"],
        };
        let src = "fn f(lat_ps: u64) -> f64 { lat_ps as f64 / 1e12 }\n";
        let boundary = lint_source(src, "crates/fake/src/report.rs", &cfg);
        assert!(boundary.findings.is_empty(), "{:?}", boundary.findings);
        let elsewhere = lint_source(src, "crates/fake/src/core.rs", &cfg);
        assert_eq!(elsewhere.findings.len(), 1);
        assert_eq!(elsewhere.findings[0].rule, "float-time");
    }

    #[test]
    fn tests_dir_skips_test_excluded_rules_but_not_structural_ones() {
        let src = "fn f(o: Option<u8>) -> u8 { let _ = std::time::Instant::now(); o.unwrap() }\n";
        let out = lint_source(src, "crates/fake/tests/props.rs", &TEST_CFG);
        // panicking-seam (lib-only) silent; wall-clock still fires.
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "wall-clock-in-sim");
    }
}
