//! # vrex-lint
//!
//! A workspace-specific determinism/time-integrity static-analysis
//! pass for the V-Rex reproduction.
//!
//! The whole simulator rests on bit-exact determinism: golden-trace
//! fingerprints, heap-vs-wheel identical event sequences,
//! streamed-vs-materialized report equality, and integer-picosecond
//! time end to end. Those invariants were defended only by tests that
//! catch violations *after* they ship; this crate machine-checks them
//! at CI time, before a `HashMap` iteration or an `f64` sneaking into a
//! `_ps` expression silently breaks reproducibility.
//!
//! Run it as a workspace bin:
//!
//! ```text
//! cargo run -p vrex-lint -- --workspace [--root DIR] [--json FILE]
//! ```
//!
//! The tool exits `0` when every finding is waived, `1` when any
//! active (unwaived) finding remains, and `2` on usage/IO errors.
//!
//! There is no crates.io access in this environment (so no `syn` or
//! dylint): [`lexer`] is a small hand-rolled lexer that strips
//! comments, string/raw-string, and char literals and emits a
//! line-numbered token stream; [`rules`] pattern-matches determinism
//! rules over it; [`config`] says which rules run in which crate; and
//! [`runner`] walks the tree and attaches inline waivers
//! (`// vrex-lint: allow(<rule>) — <reason>`, reason mandatory).
//!
//! The registered rules, and the bit-exactness property each protects,
//! are documented in `ARCHITECTURE.md` ("Determinism invariants &
//! vrex-lint").

#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod runner;

pub use config::{CrateCfg, ALL_RULES, WORKSPACE};
pub use report::{Finding, Outcome};
pub use runner::{lint_file, lint_source, run_workspace};
