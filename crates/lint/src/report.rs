//! Finding types and the text / JSON renderers.

use std::fmt::Write as _;

/// One rule match, with waiver status attached.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Rule name (or [`crate::rules::BAD_WAIVER`]).
    pub rule: String,
    /// Human-readable description of the match.
    pub message: String,
    /// The waiver reason when the finding is waived. Waived findings
    /// are reported (never silently dropped) but do not fail the run.
    pub waived: Option<String>,
}

/// Aggregate result of a lint run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Waivers that matched no finding (file, line): candidates for
    /// deletion, reported as notes without failing the run.
    pub unused_waivers: Vec<(String, u32)>,
}

impl Outcome {
    /// Number of findings that are not waived (the exit-code driver).
    pub fn unwaived(&self) -> usize {
        self.findings.iter().filter(|f| f.waived.is_none()).count()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            match &f.waived {
                Some(reason) => {
                    let _ = writeln!(
                        s,
                        "{}:{}: [{}] waived — {} ({})",
                        f.file, f.line, f.rule, reason, f.message
                    );
                }
                None => {
                    let _ = writeln!(s, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
                }
            }
        }
        for (file, line) in &self.unused_waivers {
            let _ = writeln!(
                s,
                "{file}:{line}: note: waiver matches no finding (delete it?)"
            );
        }
        let waived = self.findings.len() - self.unwaived();
        let _ = writeln!(
            s,
            "vrex-lint: {} finding(s) ({} waived, {} active) across {} file(s)",
            self.findings.len(),
            waived,
            self.unwaived(),
            self.files_scanned
        );
        s
    }

    /// Renders the `--json` report (hand-rolled: no serde offline).
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \
                 \"waived\": {}, \"reason\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.rule),
                json_str(&f.message),
                f.waived.is_some(),
                f.waived
                    .as_deref()
                    .map_or_else(|| "null".to_string(), json_str),
            );
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"unused_waivers\": [\n");
        for (i, (file, line)) in self.unused_waivers.iter().enumerate() {
            let _ = write!(s, "    {{\"file\": {}, \"line\": {line}}}", json_str(file));
            s.push_str(if i + 1 < self.unused_waivers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = write!(
            s,
            "  ],\n  \"files_scanned\": {},\n  \"unwaived\": {}\n}}\n",
            self.files_scanned,
            self.unwaived()
        );
        s
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Outcome {
        Outcome {
            findings: vec![
                Finding {
                    file: "crates/x/src/a.rs".into(),
                    line: 3,
                    rule: "float-time".into(),
                    message: "msg \"quoted\"".into(),
                    waived: None,
                },
                Finding {
                    file: "crates/x/src/a.rs".into(),
                    line: 9,
                    rule: "panicking-seam".into(),
                    message: "m".into(),
                    waived: Some("slot liveness invariant".into()),
                },
            ],
            files_scanned: 2,
            unused_waivers: vec![("crates/x/src/b.rs".into(), 7)],
        }
    }

    #[test]
    fn unwaived_counts_only_active() {
        assert_eq!(sample().unwaived(), 1);
    }

    #[test]
    fn text_report_mentions_waiver_status() {
        let txt = sample().render_text();
        assert!(txt.contains("crates/x/src/a.rs:3: [float-time]"));
        assert!(txt.contains("waived — slot liveness invariant"));
        assert!(txt.contains("matches no finding"));
        assert!(txt.contains("2 finding(s) (1 waived, 1 active) across 2 file(s)"));
    }

    #[test]
    fn json_is_escaped_and_counts_match() {
        let js = sample().render_json();
        assert!(js.contains("\\\"quoted\\\""));
        assert!(js.contains("\"unwaived\": 1"));
        assert!(js.contains("\"files_scanned\": 2"));
        assert!(js.contains("\"waived\": true"));
    }
}
