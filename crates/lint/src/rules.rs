//! The determinism/time-integrity rule registry.
//!
//! Every rule is a token-level pattern over one file's [`lexer`] output.
//! Rules are deliberately heuristic — `vrex-lint` has no type
//! information — but each heuristic is tuned so the shipped workspace
//! is clean and every fixture in `tests/fixtures/` triggers exactly the
//! golden findings. The invariants each rule protects are documented in
//! `ARCHITECTURE.md` ("Determinism invariants & vrex-lint").
//!
//! [`lexer`]: crate::lexer

use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// How a file is classified for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A file under a crate's `src/` tree: library code.
    Lib,
    /// A file under `tests/`, `benches/`, or `examples/`: treated as
    /// one whole test region.
    Test,
}

/// A rule match before the runner attaches file/rule/waiver context.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-indexed source line.
    pub line: u32,
    /// Human-readable description of the specific match.
    pub message: String,
}

/// Per-file context shared by all rule check functions.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Lexed tokens and waivers.
    pub lexed: &'a Lexed,
    /// `true` at token index `i` when the token sits inside a
    /// `#[cfg(test)]` / `#[test]` item (or the whole file is a test).
    pub in_test: Vec<bool>,
    /// `true` at token index `i` when the token is masked from the
    /// `float-time` rule: inside a sanctioned ps-conversion call
    /// (`seconds_to_ps(...)` and friends) or an `fn` signature's
    /// name-plus-parameter span.
    pub masked: Vec<bool>,
    /// Library vs test classification of the whole file.
    pub kind: FileKind,
}

/// Static description of one registered rule.
#[derive(Debug)]
pub struct RuleDef {
    /// Rule name as used in findings, config, and waivers.
    pub name: &'static str,
    /// One-line summary shown in `--help`-style listings.
    pub summary: &'static str,
    /// Whether the rule also applies inside `#[cfg(test)]` regions and
    /// `tests/` files.
    pub include_tests: bool,
    /// Whether the rule only applies to library (`src/`) files.
    pub lib_only: bool,
    /// The check function.
    pub check: fn(&FileCtx) -> Vec<RawFinding>,
}

/// Name of the synthetic rule reported for malformed waivers. It is
/// not waivable and not part of [`REGISTRY`]'s check functions.
pub const BAD_WAIVER: &str = "bad-waiver";

/// The registered determinism rules, in reporting order.
pub const REGISTRY: &[RuleDef] = &[
    RuleDef {
        name: "unordered-iteration",
        summary: "iterating (or collecting into) HashMap/HashSet, whose order varies run-to-run",
        include_tests: true,
        lib_only: false,
        check: check_unordered_iteration,
    },
    RuleDef {
        name: "wall-clock-in-sim",
        summary: "Instant/SystemTime inside simulation crates (sim time must be integer ps)",
        include_tests: true,
        lib_only: false,
        check: check_wall_clock,
    },
    RuleDef {
        name: "float-time",
        summary: "f32/f64 arithmetic touching a `_ps` identifier outside report boundaries",
        include_tests: false,
        lib_only: false,
        check: check_float_time,
    },
    RuleDef {
        name: "float-eq",
        summary: "`==`/`!=` against float operands (bit-exactness is pinned via integers)",
        include_tests: false,
        lib_only: false,
        check: check_float_eq,
    },
    RuleDef {
        name: "panicking-seam",
        summary: "unwrap/expect/panic!/unreachable!/todo! in non-test library code",
        include_tests: false,
        lib_only: true,
        check: check_panicking_seam,
    },
];

/// Looks a rule up by name.
pub fn rule(name: &str) -> Option<&'static RuleDef> {
    REGISTRY.iter().find(|r| r.name == name)
}

/// `true` when `name` is a valid waiver target (a registered rule).
pub fn is_known_rule(name: &str) -> bool {
    rule(name).is_some()
}

/// Builds the per-token context ([`FileCtx`]) for one lexed file.
pub fn build_ctx(lexed: &Lexed, kind: FileKind) -> FileCtx<'_> {
    let n = lexed.toks.len();
    let mut in_test = vec![kind == FileKind::Test; n];
    if kind == FileKind::Lib {
        for (start, end) in test_spans(&lexed.toks) {
            for flag in in_test.iter_mut().take(end + 1).skip(start) {
                *flag = true;
            }
        }
    }
    FileCtx {
        lexed,
        in_test,
        masked: float_time_mask(&lexed.toks),
        kind,
    }
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Punct)
        .map(|t| t.text.as_str())
}

/// Finds `#[cfg(test)]` / `#[test]`-gated item spans as token-index
/// ranges. An attribute group mentioning `test` without `not` marks the
/// next braced item (or, for `#[test] fn f();`-style declarations, up
/// to the terminating `;`).
fn test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if punct_at(toks, i) == Some("#") && punct_at(toks, i + 1) == Some("[") {
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() && depth > 0 {
                match punct_at(toks, j) {
                    Some("[") => depth += 1,
                    Some("]") => depth -= 1,
                    _ => match ident_at(toks, j) {
                        Some("test") => has_test = true,
                        Some("not") => has_not = true,
                        _ => {}
                    },
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip to the item's opening brace (or terminating `;`).
                let mut k = j;
                while k < toks.len() {
                    match punct_at(toks, k) {
                        Some("{") => break,
                        Some(";") => break,
                        _ => k += 1,
                    }
                }
                if punct_at(toks, k) == Some("{") {
                    let mut bd = 1usize;
                    let mut m = k + 1;
                    while m < toks.len() && bd > 0 {
                        match punct_at(toks, m) {
                            Some("{") => bd += 1,
                            Some("}") => bd -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    spans.push((attr_start, m.saturating_sub(1)));
                    i = m;
                    continue;
                }
                spans.push((attr_start, k));
                i = k + 1;
                continue;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// Conversion helpers whose argument spans are the *sanctioned* places
/// floats may meet picoseconds: they take float rates/seconds in and
/// hand integer ps out (all defined in `vrex_core::time`).
const SANCTIONED_PS_CONVERSIONS: &[&str] = &["seconds_to_ps", "ps_to_seconds", "transfer_ps"];

/// Masks token spans the `float-time` rule must not look inside:
/// sanctioned conversion calls and `fn` signature name/parameter lists
/// (declaring `fn op_ps(..., utilization: f64)` is not arithmetic).
fn float_time_mask(toks: &[Tok]) -> Vec<bool> {
    let mut masked = vec![false; toks.len()];
    let mask_call = |masked: &mut Vec<bool>, start: usize, open: usize| {
        let mut depth = 1usize;
        let mut m = open + 1;
        while m < toks.len() && depth > 0 {
            match punct_at(toks, m) {
                Some("(") => depth += 1,
                Some(")") => depth -= 1,
                _ => {}
            }
            m += 1;
        }
        for flag in masked.iter_mut().take(m).skip(start) {
            *flag = true;
        }
    };
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(name) = ident_at(toks, i) {
            if SANCTIONED_PS_CONVERSIONS.contains(&name) && punct_at(toks, i + 1) == Some("(") {
                mask_call(&mut masked, i, i + 1);
            } else if name == "fn" {
                // Mask the declared name and its parameter list: scan to
                // the first `(` before the body starts.
                let mut k = i + 1;
                while k < toks.len() {
                    match punct_at(toks, k) {
                        Some("(") => break,
                        Some("{") | Some(";") => break,
                        _ => k += 1,
                    }
                }
                if punct_at(toks, k) == Some("(") {
                    mask_call(&mut masked, i + 1, k);
                }
            }
        }
        i += 1;
    }
    masked
}

/// Iteration methods whose order exposes hash-map/-set layout.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Keyed-lookup methods that never observe layout order (listed for
/// documentation; the rule flags iteration, everything else passes).
#[allow(dead_code)]
const ALLOWED_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "entry",
    "len",
    "is_empty",
];

fn check_unordered_iteration(ctx: &FileCtx) -> Vec<RawFinding> {
    let toks = &ctx.lexed.toks;
    let mut out = Vec::new();
    // Pass 1: names bound or typed as HashMap/HashSet in this file.
    let mut known: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        if ident_at(toks, i)
            .filter(|t| *t == "HashMap" || *t == "HashSet")
            .is_none()
        {
            continue;
        }
        // Walk back over the path prefix (`std :: collections ::`) and
        // reference sigils to the binding/typing punctuation.
        let mut j = i;
        while j > 0 {
            let prev = j - 1;
            match (toks[prev].kind, toks[prev].text.as_str()) {
                (TokKind::Punct, "::") => j = prev,
                (TokKind::Punct, "&") => j = prev,
                (TokKind::Ident, "mut" | "dyn") => j = prev,
                (TokKind::Ident, _) if punct_at(toks, j) == Some("::") => j = prev,
                _ => break,
            }
        }
        if j == 0 {
            continue;
        }
        let name_idx = match (toks[j - 1].kind, toks[j - 1].text.as_str()) {
            // `name: HashMap<..>` (field, param, or annotated let).
            (TokKind::Punct, ":") => j.checked_sub(2),
            // `let [mut] name = HashMap::new()`.
            (TokKind::Punct, "=") => j.checked_sub(2),
            _ => None,
        };
        if let Some(ni) = name_idx {
            if let Some(name) = ident_at(toks, ni) {
                known.insert(name);
            }
        }
        // Collect-into detection: a statement that mentions both the
        // container type and `collect` builds an unordered container
        // from an iterator — the canonical prelude to ordered misuse.
        let stmt_start = (0..i)
            .rev()
            .find(|&k| matches!(punct_at(toks, k), Some(";" | "{" | "}")))
            .map_or(0, |k| k + 1);
        let stmt_end = (i..toks.len())
            .find(|&k| punct_at(toks, k) == Some(";"))
            .unwrap_or(toks.len().saturating_sub(1));
        if ident_at(toks, stmt_start) == Some("use") {
            continue;
        }
        if (stmt_start..=stmt_end).any(|k| ident_at(toks, k) == Some("collect")) {
            out.push(RawFinding {
                line: toks[i].line,
                message: format!(
                    "collect()s into {} — hash order can leak into any later iteration; \
                     use BTreeMap/BTreeSet or sorted materialization",
                    toks[i].text
                ),
            });
        }
    }
    // Pass 2: iteration over a known unordered container.
    for i in 0..toks.len() {
        let Some(name) = ident_at(toks, i).filter(|n| known.contains(n)) else {
            continue;
        };
        if punct_at(toks, i + 1) == Some(".") {
            if let Some(m) = ident_at(toks, i + 2).filter(|m| ITER_METHODS.contains(m)) {
                if punct_at(toks, i + 3) == Some("(") {
                    out.push(RawFinding {
                        line: toks[i + 2].line,
                        message: format!(
                            "`{name}.{m}()` iterates a HashMap/HashSet in hash order; \
                             keyed lookup is fine, iteration order is not deterministic"
                        ),
                    });
                }
            }
        }
    }
    // Pass 3: `for _ in [&[mut]] <known>`-style loops.
    for i in 0..toks.len() {
        if ident_at(toks, i) != Some("in") {
            continue;
        }
        let mut j = i + 1;
        while matches!(
            (
                toks.get(j).map(|t| t.kind),
                toks.get(j).map(|t| t.text.as_str())
            ),
            (Some(TokKind::Punct), Some("&")) | (Some(TokKind::Ident), Some("mut"))
        ) {
            j += 1;
        }
        if let Some(name) = ident_at(toks, j).filter(|n| known.contains(n)) {
            if punct_at(toks, j + 1) != Some(".") {
                out.push(RawFinding {
                    line: toks[j].line,
                    message: format!(
                        "for-loop over `{name}` iterates a HashMap/HashSet in hash order"
                    ),
                });
            }
        }
    }
    dedup_findings(out)
}

fn check_wall_clock(ctx: &FileCtx) -> Vec<RawFinding> {
    let toks = &ctx.lexed.toks;
    let mut out = Vec::new();
    for t in toks.iter() {
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            out.push(RawFinding {
                line: t.line,
                message: format!(
                    "`{}` reads the host wall clock; simulation time is integer picoseconds \
                     (vrex_core::time) — wall clocks live only in crates/bench",
                    t.text
                ),
            });
        }
    }
    dedup_findings(out)
}

fn check_float_time(ctx: &FileCtx) -> Vec<RawFinding> {
    let toks = &ctx.lexed.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let line = toks[i].line;
        let mut end = i;
        while end < toks.len() && toks[end].line == line {
            end += 1;
        }
        let visible = (i..end).filter(|&k| !ctx.masked[k] && !ctx.in_test[k]);
        let mut ps_ident: Option<&str> = None;
        let mut has_float = false;
        for k in visible {
            let t = &toks[k];
            match t.kind {
                TokKind::Ident if t.text.ends_with("_ps") || t.text.ends_with("_PS") => {
                    ps_ident.get_or_insert(t.text.as_str());
                }
                TokKind::Ident if t.text == "f32" || t.text == "f64" => has_float = true,
                TokKind::Float => has_float = true,
                _ => {}
            }
        }
        if let (Some(name), true) = (ps_ident, has_float) {
            out.push(RawFinding {
                line,
                message: format!(
                    "float arithmetic touches `{name}`: picosecond values must stay integer \
                     until a report boundary (seconds_to_ps/ps_to_seconds are the sanctioned \
                     conversions)"
                ),
            });
        }
        i = end;
    }
    out
}

fn check_float_eq(ctx: &FileCtx) -> Vec<RawFinding> {
    let toks = &ctx.lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(op) = punct_at(toks, i).filter(|p| *p == "==" || *p == "!=") else {
            continue;
        };
        let float_tok = |k: usize| -> bool {
            match toks.get(k) {
                Some(t) if t.kind == TokKind::Float => true,
                Some(t) if t.kind == TokKind::Ident => t.text == "f32" || t.text == "f64",
                _ => false,
            }
        };
        // `x == 0.5`, `0.5 == x`, `a as f64 == b`, `x == -0.5`.
        let rhs = if punct_at(toks, i + 1) == Some("-") {
            i + 2
        } else {
            i + 1
        };
        if (i > 0 && float_tok(i - 1)) || float_tok(rhs) {
            out.push(RawFinding {
                line: toks[i].line,
                message: format!(
                    "`{op}` compares float operands; exact float equality is only meaningful \
                     at golden-pinning sites — compare integers or pin bit patterns"
                ),
            });
        }
    }
    out
}

fn check_panicking_seam(ctx: &FileCtx) -> Vec<RawFinding> {
    let toks = &ctx.lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        match name {
            "unwrap" | "expect"
                if i > 0
                    && punct_at(toks, i - 1) == Some(".")
                    && punct_at(toks, i + 1) == Some("(") =>
            {
                out.push(RawFinding {
                    line: toks[i].line,
                    message: format!(
                        "`.{name}()` in library code panics across the serving seam; \
                         return an error, make the invariant total, or waive with the \
                         invariant spelled out"
                    ),
                });
            }
            "panic" | "unreachable" | "todo" if punct_at(toks, i + 1) == Some("!") => {
                out.push(RawFinding {
                    line: toks[i].line,
                    message: format!(
                        "`{name}!` in library code aborts the simulation; \
                         waivers must state why the state is impossible"
                    ),
                });
            }
            _ => {}
        }
    }
    out
}

fn dedup_findings(mut v: Vec<RawFinding>) -> Vec<RawFinding> {
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule_name: &str, src: &str, kind: FileKind) -> Vec<RawFinding> {
        let lexed = lex(src);
        let ctx = build_ctx(&lexed, kind);
        (rule(rule_name).unwrap().check)(&ctx)
    }

    #[test]
    fn keyed_lookup_passes_iteration_fails() {
        let src = "
            fn f(map: std::collections::HashMap<u64, u64>) -> u64 {
                let hit = map.get(&3).copied().unwrap_or(0);
                let mut sum = hit;
                for (_k, v) in &map { sum += v; }
                sum + map.keys().count() as u64
            }";
        let f = run("unordered-iteration", src, FileKind::Lib);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("for-loop")));
        assert!(f.iter().any(|x| x.message.contains("keys()")));
    }

    #[test]
    fn collect_into_hashset_fires() {
        let src = "fn f(xs: &[usize]) {
            let s: std::collections::HashSet<usize> = xs.iter().copied().collect();
            assert!(s.contains(&1));
        }";
        let f = run("unordered-iteration", src, FileKind::Lib);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("collect"));
    }

    #[test]
    fn use_statement_does_not_fire() {
        let src = "use std::collections::{HashMap, HashSet};";
        assert!(run("unordered-iteration", src, FileKind::Lib).is_empty());
    }

    #[test]
    fn sanctioned_conversion_and_fn_decl_are_masked() {
        let src = "
            fn op_ps(flops: u64, utilization: f64) -> u64 {
                seconds_to_ps(flops as f64 / 1.0e12) + FIXED_OVERHEAD_PS
            }";
        assert!(run("float-time", src, FileKind::Lib).is_empty());
    }

    #[test]
    fn float_ps_arithmetic_fires() {
        let src = "fn f(x_ps: u64) -> u64 { (x_ps as f64 * 0.9) as u64 }";
        let f = run("float-time", src, FileKind::Lib);
        // The fn signature masks `f(x_ps: u64)`; the body still fires
        // because the masked span ends at the parameter list's `)`.
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn test_regions_are_skipped_where_configured() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn g() { let x = opt.unwrap(); }
            }
            fn h(o: Option<u8>) -> u8 { o.unwrap() }";
        let f = run("panicking-seam", src, FileKind::Lib);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "
            #[cfg(not(test))]
            fn h(o: Option<u8>) -> u8 { o.unwrap() }";
        assert_eq!(run("panicking-seam", src, FileKind::Lib).len(), 1);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let src = "fn h(o: Option<u8>) -> u8 { o.unwrap_or(0) }";
        assert!(run("panicking-seam", src, FileKind::Lib).is_empty());
    }

    #[test]
    fn float_eq_adjacency() {
        let src = "fn f(a: f64, b: u64) -> bool { a == 0.5 || b == 3 }";
        let f = run("float-eq", src, FileKind::Lib);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn wall_clock_fires_even_in_tests() {
        let src = "#[cfg(test)] mod t { fn f() { let _ = std::time::Instant::now(); } }";
        assert_eq!(run("wall-clock-in-sim", src, FileKind::Lib).len(), 1);
    }
}
