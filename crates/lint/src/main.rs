//! The `vrex-lint` CLI: see crate docs in `lib.rs`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
vrex-lint — determinism/time-integrity static analysis for the V-Rex workspace

USAGE:
    vrex-lint --workspace [--root DIR] [--json FILE]

OPTIONS:
    --workspace    Lint every configured crate (required)
    --root DIR     Workspace root (default: auto-detected)
    --json FILE    Also write findings as JSON to FILE

Exit codes: 0 clean (waived findings allowed), 1 active findings, 2 error.

Waive a finding inline, reason mandatory:
    // vrex-lint: allow(<rule>) — <why this is sound>
";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage_error("--json needs a file path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("--workspace is required");
    }
    let root = match root.map_or_else(detect_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vrex-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match vrex_lint::run_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("vrex-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", outcome.render_text());
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, outcome.render_json()) {
            eprintln!("vrex-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if outcome.unwaived() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("vrex-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Finds the workspace root: the nearest ancestor of the current dir
/// whose `Cargo.toml` declares `[workspace]`, falling back to the
/// compile-time manifest location (two levels above `crates/lint`).
fn detect_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    let mut dir: Option<&Path> = Some(&cwd);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    let fallback = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback
        .canonicalize()
        .map_err(|e| format!("no workspace root found from {} ({e})", cwd.display()))
}
