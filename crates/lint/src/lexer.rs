//! Hand-rolled token-level Rust lexer.
//!
//! The build environment has no crates.io access, so `vrex-lint` cannot
//! use `syn` or a rustc driver. Instead this module provides the small
//! slice of lexing the determinism rules need: it strips comments,
//! string/raw-string/byte-string literals, and char literals (so rule
//! patterns can never match inside text), and emits a line-numbered
//! token stream of identifiers, numeric literals (int vs float — the
//! distinction the `float-time` rule runs on), lifetimes, and
//! punctuation.
//!
//! Waiver comments (`// vrex-lint: allow(<rule>) — <reason>`) are the
//! one place comments carry meaning, so the lexer parses them while
//! stripping and returns them alongside the tokens.

/// The coarse token classes the rules pattern-match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `for`, `HashMap`, `busy_ps`, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`0.5`, `1e12`, `3.0f32`) — what `float-time` and
    /// `float-eq` key on.
    Float,
    /// String, raw-string, byte-string, or char literal. Content is
    /// dropped; only the token's presence and line survive.
    Literal,
    /// Lifetime (`'a`). Distinguished from char literals.
    Lifetime,
    /// Punctuation. Multi-char operators the rules care about (`==`,
    /// `!=`, `::`, `..`, `->`, `=>`) are single tokens.
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text. Empty for [`TokKind::Literal`].
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

/// An inline waiver parsed from a `// vrex-lint: ...` comment.
///
/// Well-formed syntax: `// vrex-lint: allow(rule-a, rule-b) — reason`.
/// The reason is mandatory; a waiver without one (or with unparsable
/// syntax) sets [`Waiver::malformed`] and is reported as an unwaivable
/// `bad-waiver` finding by the runner.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-indexed line of the waiver comment.
    pub line: u32,
    /// Rule names listed in `allow(...)`.
    pub rules: Vec<String>,
    /// The mandatory free-text justification.
    pub reason: String,
    /// Why the waiver is malformed, if it is.
    pub malformed: Option<String>,
}

/// Output of [`lex`]: the token stream plus any waiver comments.
#[derive(Debug)]
pub struct Lexed {
    /// Line-numbered tokens with comments/strings stripped.
    pub toks: Vec<Tok>,
    /// Waiver comments found while stripping.
    pub waivers: Vec<Waiver>,
}

/// Two-char operators lexed as a single [`TokKind::Punct`] token.
const TWO_CHAR_PUNCTS: &[&str] = &[
    "==", "!=", "::", "..", "->", "=>", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`, stripping comments and all literal text.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut waivers = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if let Some(w) = parse_waiver(&text, line) {
                waivers.push(w);
            }
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            let tok_line = line;
            skip_string(&chars, &mut i, &mut line);
            toks.push(lit(tok_line));
        } else if c == '\'' {
            let tok_line = line;
            // Lifetime iff an ident follows and is not closed by `'`.
            if chars.get(i + 1).copied().is_some_and(is_ident_start) {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    // Char literal like 'a'.
                    i = j + 1;
                    toks.push(lit(tok_line));
                } else {
                    let text: String = chars[i + 1..j].iter().collect();
                    i = j;
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line: tok_line,
                    });
                }
            } else {
                // Escaped or punctuation char literal like '\n' or '('.
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    if i < chars.len() {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                i += 1; // closing quote
                toks.push(lit(tok_line));
            }
        } else if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let tok_line = line;
            // Raw / byte string prefixes: r"", r#""#, br"", b"", b''.
            let next = chars.get(i).copied();
            match (text.as_str(), next) {
                ("r" | "br", Some('"')) | ("b" | "rb", Some('"')) => {
                    skip_string(&chars, &mut i, &mut line);
                    toks.push(lit(tok_line));
                }
                ("r" | "br", Some('#')) => {
                    // Raw string r#"..."# — or a raw identifier r#ident.
                    let mut hashes = 0usize;
                    let mut j = i;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        skip_raw_string(&chars, &mut i, &mut line, hashes);
                        toks.push(lit(tok_line));
                    } else {
                        // Raw identifier: consume `#` and the ident.
                        i += 1;
                        let rs = i;
                        while i < chars.len() && is_ident_continue(chars[i]) {
                            i += 1;
                        }
                        let raw: String = chars[rs..i].iter().collect();
                        toks.push(Tok {
                            kind: TokKind::Ident,
                            text: raw,
                            line: tok_line,
                        });
                    }
                }
                ("b", Some('\'')) => {
                    i += 1; // opening quote
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    toks.push(lit(tok_line));
                }
                _ => toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line: tok_line,
                }),
            }
        } else if c.is_ascii_digit() {
            let tok_line = line;
            let kind = scan_number(&chars, &mut i);
            toks.push(Tok {
                kind,
                text: String::new(),
                line: tok_line,
            });
        } else {
            let tok_line = line;
            let pair: String = chars[i..chars.len().min(i + 2)].iter().collect();
            if TWO_CHAR_PUNCTS.contains(&pair.as_str()) {
                i += 2;
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: pair,
                    line: tok_line,
                });
            } else {
                i += 1;
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line: tok_line,
                });
            }
        }
    }
    Lexed { toks, waivers }
}

fn lit(line: u32) -> Tok {
    Tok {
        kind: TokKind::Literal,
        text: String::new(),
        line,
    }
}

/// Skips a `"..."` literal; `i` points at the opening quote on entry
/// and one past the closing quote on exit.
fn skip_string(chars: &[char], i: &mut usize, line: &mut u32) {
    *i += 1;
    while *i < chars.len() && chars[*i] != '"' {
        if chars[*i] == '\\' {
            *i += 1;
        }
        if *i < chars.len() {
            if chars[*i] == '\n' {
                *line += 1;
            }
            *i += 1;
        }
    }
    *i += 1;
}

/// Skips a raw string body; `i` points at the first `#` (or quote when
/// `hashes == 0`) on entry.
fn skip_raw_string(chars: &[char], i: &mut usize, line: &mut u32, hashes: usize) {
    *i += hashes + 1; // hashes plus opening quote
    while *i < chars.len() {
        if chars[*i] == '\n' {
            *line += 1;
        }
        if chars[*i] == '"' {
            let mut j = *i + 1;
            let mut n = 0usize;
            while n < hashes && chars.get(j) == Some(&'#') {
                n += 1;
                j += 1;
            }
            if n == hashes {
                *i = j;
                return;
            }
        }
        *i += 1;
    }
}

/// Scans a numeric literal, classifying int vs float; `i` points at the
/// first digit on entry and one past the literal on exit.
fn scan_number(chars: &[char], i: &mut usize) -> TokKind {
    // Hex / octal / binary are always integers.
    if chars[*i] == '0' && matches!(chars.get(*i + 1), Some('x' | 'o' | 'b')) {
        *i += 2;
        while *i < chars.len() && (chars[*i].is_ascii_hexdigit() || chars[*i] == '_') {
            *i += 1;
        }
        consume_suffix(chars, i);
        return TokKind::Int;
    }
    let mut float = false;
    while *i < chars.len() && (chars[*i].is_ascii_digit() || chars[*i] == '_') {
        *i += 1;
    }
    // Fraction: `.` followed by a digit (not `..` range, not `.method`).
    if chars.get(*i) == Some(&'.')
        && chars
            .get(*i + 1)
            .copied()
            .is_some_and(|c| c.is_ascii_digit())
    {
        float = true;
        *i += 1;
        while *i < chars.len() && (chars[*i].is_ascii_digit() || chars[*i] == '_') {
            *i += 1;
        }
    } else if chars.get(*i) == Some(&'.')
        && chars
            .get(*i + 1)
            .copied()
            .is_none_or(|c| c != '.' && !is_ident_start(c))
    {
        // Trailing-dot float like `1.`.
        float = true;
        *i += 1;
    }
    // Exponent.
    if matches!(chars.get(*i), Some('e' | 'E')) {
        let mut j = *i + 1;
        if matches!(chars.get(j), Some('+' | '-')) {
            j += 1;
        }
        if chars.get(j).copied().is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            *i = j;
            while *i < chars.len() && (chars[*i].is_ascii_digit() || chars[*i] == '_') {
                *i += 1;
            }
        }
    }
    // Type suffix: f32/f64 force float; u*/i*/usize/isize stay int.
    if chars.get(*i).copied().is_some_and(is_ident_start) {
        let start = *i;
        consume_suffix(chars, i);
        let suffix: String = chars[start..*i].iter().collect();
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

fn consume_suffix(chars: &[char], i: &mut usize) {
    while *i < chars.len() && is_ident_continue(chars[*i]) {
        *i += 1;
    }
}

/// Parses a waiver out of one line comment's text (without the `//`).
/// Returns `None` for ordinary comments.
fn parse_waiver(comment: &str, line: u32) -> Option<Waiver> {
    let t = comment.trim();
    let rest = t.strip_prefix("vrex-lint:")?.trim();
    let malformed = |msg: &str| {
        Some(Waiver {
            line,
            rules: Vec::new(),
            reason: String::new(),
            malformed: Some(msg.into()),
        })
    };
    let Some(body) = rest.strip_prefix("allow(") else {
        return malformed("expected `allow(<rule, ...>)` after `vrex-lint:`");
    };
    let Some(close) = body.find(')') else {
        return malformed("unclosed `allow(` in waiver");
    };
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return malformed("waiver allows no rules");
    }
    let reason = body[close + 1..]
        .trim()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim()
        .to_string();
    if reason.is_empty() {
        return malformed("waiver reason is mandatory: `allow(<rule>) — <why this is sound>`");
    }
    Some(Waiver {
        line,
        rules,
        reason,
        malformed: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r##"
            let x = "Instant::now() inside a string"; // Instant in comment
            /* block Instant */ let y = r#"raw Instant"#;
            let c = 'I'; let nl = '\n';
        "##;
        let toks = lex(src).toks;
        assert!(!toks.iter().any(|t| t.text == "Instant"), "{toks:?}");
        assert!(toks.iter().any(|t| t.text == "x"));
        assert!(toks.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn classifies_numbers() {
        let kinds: Vec<TokKind> = lex("1 1.5 1e12 0xff 1_000u64 3.0f32 2f64 1..4 x.0")
            .toks
            .iter()
            .map(|t| t.kind)
            .collect();
        use TokKind::*;
        assert_eq!(
            kinds,
            vec![Int, Float, Float, Int, Int, Float, Float, Int, Punct, Int, Ident, Punct, Int]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a u8) { let c = 'a'; }").toks;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nlet b_ps = 3;";
        let toks = lex(src).toks;
        let b = toks.iter().find(|t| t.text == "b_ps").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn parses_well_formed_waiver() {
        let lexed = lex("let x = 1; // vrex-lint: allow(float-time, float-eq) — report boundary");
        assert_eq!(lexed.waivers.len(), 1);
        let w = &lexed.waivers[0];
        assert!(w.malformed.is_none());
        assert_eq!(w.rules, vec!["float-time", "float-eq"]);
        assert_eq!(w.reason, "report boundary");
    }

    #[test]
    fn waiver_without_reason_is_malformed() {
        for src in [
            "// vrex-lint: allow(float-time)",
            "// vrex-lint: allow(float-time) — ",
            "// vrex-lint: allow()  — no rules",
            "// vrex-lint: something else",
        ] {
            let lexed = lex(src);
            assert_eq!(lexed.waivers.len(), 1, "{src}");
            assert!(lexed.waivers[0].malformed.is_some(), "{src}");
        }
    }

    #[test]
    fn ordinary_comments_are_not_waivers() {
        assert!(lex("// just a note about vrex-lint's behaviour")
            .waivers
            .is_empty());
    }

    #[test]
    fn two_char_puncts_fuse() {
        assert_eq!(
            texts("a == b != c :: d"),
            vec!["a", "==", "b", "!=", "c", "::", "d"]
        );
    }
}
