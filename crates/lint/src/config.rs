//! Per-crate rule configuration.
//!
//! The workspace is not uniform: the six simulation crates carry the
//! bit-exactness contract (golden-trace fingerprints, heap-vs-wheel
//! identical event sequences, streamed-vs-materialized report
//! equality), `vrex-tensor` is deterministic-by-construction float
//! math, and `crates/bench` + the shims *measure wall time by design*.
//! This table says which rules run where, and which modules are
//! designated report boundaries for the `float-time` rule (the places
//! integer picoseconds are allowed to become seconds for human-facing
//! reports).

/// Rule configuration for one workspace package (or source dir).
#[derive(Debug)]
pub struct CrateCfg {
    /// Directory relative to the workspace root (e.g. `crates/core`).
    pub rel: &'static str,
    /// Rules enforced in this crate, by registry name.
    pub rules: &'static [&'static str],
    /// Files (relative to the workspace root) exempt from `float-time`:
    /// the modules whose *job* is converting integer ps into seconds
    /// for reports (percentile tables, FPS, speedup ratios).
    pub float_time_boundary: &'static [&'static str],
}

/// The full determinism rule set, enforced on the simulation crates.
pub const ALL_RULES: &[&str] = &[
    "unordered-iteration",
    "wall-clock-in-sim",
    "float-time",
    "float-eq",
    "panicking-seam",
];

/// Structural rules only: no float pricing happens in these crates, but
/// they must still never iterate hash containers or read wall clocks.
pub const STRUCTURAL_RULES: &[&str] = &["unordered-iteration", "wall-clock-in-sim"];

/// The workspace configuration table, in scan order.
pub const WORKSPACE: &[CrateCfg] = &[
    CrateCfg {
        rel: "crates/core",
        rules: ALL_RULES,
        float_time_boundary: &[],
    },
    CrateCfg {
        rel: "crates/hwsim",
        rules: ALL_RULES,
        float_time_boundary: &[],
    },
    CrateCfg {
        rel: "crates/model",
        rules: ALL_RULES,
        float_time_boundary: &[],
    },
    CrateCfg {
        rel: "crates/retrieval",
        rules: ALL_RULES,
        float_time_boundary: &[],
    },
    CrateCfg {
        rel: "crates/system",
        rules: ALL_RULES,
        // These four modules turn integer-ps measurements into
        // seconds/fractions for reports (p50/p99 tables, FPS, speedup
        // ratios). Nothing downstream feeds their floats back into
        // simulation time. `placement.rs` is deliberately *not* here:
        // the multi-device placement layer stays integer-ps end to end
        // so all five rules apply to it at full strength (pinned by
        // the `placement_module_is_covered_by_every_rule` test).
        float_time_boundary: &[
            "crates/system/src/ablation.rs",
            "crates/system/src/e2e.rs",
            "crates/system/src/queueing.rs",
            "crates/system/src/realtime.rs",
        ],
    },
    CrateCfg {
        rel: "crates/workload",
        rules: ALL_RULES,
        float_time_boundary: &[],
    },
    // vrex-tensor is float linear algebra: float arithmetic and
    // epsilon-free comparisons are its subject matter, but hash-order
    // iteration and wall clocks are still forbidden.
    CrateCfg {
        rel: "crates/tensor",
        rules: STRUCTURAL_RULES,
        float_time_boundary: &[],
    },
    // The facade crate re-exports and documents; hold it to the
    // structural rules so quickstarts never model time off a wall clock.
    CrateCfg {
        rel: "src",
        rules: STRUCTURAL_RULES,
        float_time_boundary: &[],
    },
    // Benches measure host wall-clock throughput by design, and their
    // bins unwrap freely on startup; no determinism contract applies.
    CrateCfg {
        rel: "crates/bench",
        rules: &[],
        float_time_boundary: &[],
    },
    // The offline shims mimic external crates' APIs verbatim.
    CrateCfg {
        rel: "crates/shims",
        rules: &[],
        float_time_boundary: &[],
    },
    // The linter's own sources spell out the very tokens the rules
    // match on; scanning itself would flag its rule tables.
    CrateCfg {
        rel: "crates/lint",
        rules: &[],
        float_time_boundary: &[],
    },
    // Facade integration tests and examples: no determinism contract.
    CrateCfg {
        rel: "tests",
        rules: &[],
        float_time_boundary: &[],
    },
    CrateCfg {
        rel: "examples",
        rules: &[],
        float_time_boundary: &[],
    },
];
