//! Per-component energy accounting.
//!
//! Energy numbers in the evaluation are composed bottom-up: each
//! component (cores, DRAM, PCIe, SSD, GPU board) contributes
//! `power × busy time` or per-bit transfer energy. The meter keeps the
//! breakdown so ablation figures (Fig. 16) can attribute savings.

use std::collections::BTreeMap;

/// Accumulates energy per named component.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    joules: BTreeMap<String, f64>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `joules` to `component`.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or non-finite.
    pub fn add(&mut self, component: &str, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "invalid energy {joules} for {component}"
        );
        *self.joules.entry(component.to_string()).or_insert(0.0) += joules;
    }

    /// Adds `power_w × seconds` to `component`.
    pub fn add_power(&mut self, component: &str, power_w: f64, seconds: f64) {
        self.add(component, power_w * seconds);
    }

    /// Energy of one component (0.0 if unknown).
    pub fn component(&self, name: &str) -> f64 {
        self.joules.get(name).copied().unwrap_or(0.0)
    }

    /// Total energy (J).
    pub fn total(&self) -> f64 {
        self.joules.values().sum()
    }

    /// Iterates `(component, joules)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.joules.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Energy efficiency in GOPS/W ≡ G-operations per joule.
    ///
    /// Returns 0.0 when no energy has been recorded.
    pub fn gops_per_watt(&self, useful_ops: u64) -> f64 {
        let e = self.total();
        if e <= 0.0 {
            0.0
        } else {
            useful_ops as f64 / e / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_component() {
        let mut m = EnergyMeter::new();
        m.add("dram", 1.0);
        m.add("dram", 0.5);
        m.add("pcie", 2.0);
        assert_eq!(m.component("dram"), 1.5);
        assert_eq!(m.component("ssd"), 0.0);
        assert!((m.total() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn add_power_multiplies() {
        let mut m = EnergyMeter::new();
        m.add_power("gpu", 40.0, 0.25);
        assert!((m.component("gpu") - 10.0).abs() < 1e-12);
    }

    #[test]
    fn gops_per_watt() {
        let mut m = EnergyMeter::new();
        m.add("x", 2.0);
        // 4e9 ops / 2 J = 2 GOPS/W.
        assert!((m.gops_per_watt(4_000_000_000) - 2.0).abs() < 1e-12);
        assert_eq!(EnergyMeter::new().gops_per_watt(10), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid energy")]
    fn negative_energy_rejected() {
        EnergyMeter::new().add("x", -1.0);
    }

    #[test]
    fn iter_is_sorted_by_name() {
        let mut m = EnergyMeter::new();
        m.add("z", 1.0);
        m.add("a", 1.0);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
