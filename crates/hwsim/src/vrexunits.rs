//! Cycle models of the V-Rex accelerator's compute units.
//!
//! A V-Rex core (paper §V, Table I footnote) comprises:
//!
//! * **DPE** — `N_DPE-h = 64` MAC trees × `N_DPE-w = 64` inputs at
//!   800 MHz → 6.554 TFLOP/s of dense matrix throughput;
//! * **VPE** — `N_VPE-h = 1` vector unit × `N_VPE-w = 64` lanes →
//!   0.102 TFLOP/s of vector/softmax work;
//!   (together 6.656 TFLOP/s per core: ×8 = 53.3, ×48 = 319.5 — the
//!   Table I peaks);
//! * **HCU** — `N_HCU-h = 1` XOR-accumulator over `N_HCU-w = 16`
//!   bit-lanes for Hamming-distance clustering;
//! * **WTU** — `N_WTU-h = 1` core with `N_WTU-w = 16` lanes running the
//!   early-exit bucket selection.
//!
//! All units share the 800 MHz, 0.8 V operating point validated by the
//! paper's synthesis.

use crate::time::cycles_to_ps;

/// Core clock (Hz) of the synthesised design.
pub const VREX_FREQ_HZ: u64 = 800_000_000;

/// Dot-product engine: a MAC-tree array for dense GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpeConfig {
    /// MAC trees (output lanes).
    pub n_h: usize,
    /// Inputs per tree.
    pub n_w: usize,
    /// Clock (Hz).
    pub freq_hz: u64,
}

impl Default for DpeConfig {
    fn default() -> Self {
        Self {
            n_h: 64,
            n_w: 64,
            freq_hz: VREX_FREQ_HZ,
        }
    }
}

impl DpeConfig {
    /// Peak throughput (FLOP/s): `n_h · n_w` MACs × 2 per cycle.
    pub fn peak_flops(&self) -> f64 {
        (self.n_h * self.n_w * 2) as f64 * self.freq_hz as f64
    }

    /// Time (ps) for `flops` of dense work at `utilization` of peak,
    /// overlapped against `bytes` of memory traffic at `mem_bytes_per_s`
    /// (roofline max).
    pub fn op_ps(&self, flops: u64, utilization: f64, bytes: u64, mem_bytes_per_s: f64) -> u64 {
        assert!(utilization > 0.0 && utilization <= 1.0);
        let compute_s = flops as f64 / (self.peak_flops() * utilization);
        let memory_s = bytes as f64 / mem_bytes_per_s;
        crate::time::seconds_to_ps(compute_s.max(memory_s))
    }
}

/// Vector processing engine (softmax, norms, element-wise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpeConfig {
    /// Vector units.
    pub n_h: usize,
    /// Lanes per unit.
    pub n_w: usize,
    /// Clock (Hz).
    pub freq_hz: u64,
}

impl Default for VpeConfig {
    fn default() -> Self {
        Self {
            n_h: 1,
            n_w: 64,
            freq_hz: VREX_FREQ_HZ,
        }
    }
}

impl VpeConfig {
    /// Peak vector throughput (op/s), 2 ops/lane/cycle.
    pub fn peak_ops(&self) -> f64 {
        (self.n_h * self.n_w * 2) as f64 * self.freq_hz as f64
    }

    /// Time (ps) for `ops` element-wise operations.
    pub fn op_ps(&self, ops: u64) -> u64 {
        let cycles = (ops as u128).div_ceil((self.n_h * self.n_w * 2) as u128) as u64;
        cycles_to_ps(cycles, self.freq_hz)
    }
}

/// Hash-bit cluster unit: XOR-accumulator array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HcuConfig {
    /// Parallel XOR accumulators.
    pub n_h: usize,
    /// Bit lanes per accumulator per cycle.
    pub n_w: usize,
    /// Clock (Hz).
    pub freq_hz: u64,
}

impl Default for HcuConfig {
    fn default() -> Self {
        Self {
            n_h: 1,
            n_w: 16,
            freq_hz: VREX_FREQ_HZ,
        }
    }
}

impl HcuConfig {
    /// Time (ps) for `comparisons` token-vs-cluster Hamming
    /// comparisons of `bits`-wide signatures.
    ///
    /// Each comparison needs `ceil(bits / n_w)` cycles on one
    /// accumulator; `n_h` comparisons proceed in parallel.
    pub fn clustering_ps(&self, comparisons: u64, bits: u32) -> u64 {
        let cycles_per_cmp = (bits as u64).div_ceil(self.n_w as u64);
        let serial = comparisons.div_ceil(self.n_h as u64);
        cycles_to_ps(serial * cycles_per_cmp, self.freq_hz)
    }
}

/// WiCSum threshold unit: early-exit bucket selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WtuConfig {
    /// Parallel WTU cores.
    pub n_h: usize,
    /// Lanes per core (elements processed per cycle in bucket scans,
    /// multiplies, and adder-tree reduction).
    pub n_w: usize,
    /// Clock (Hz).
    pub freq_hz: u64,
}

impl Default for WtuConfig {
    fn default() -> Self {
        Self {
            n_h: 1,
            n_w: 16,
            freq_hz: VREX_FREQ_HZ,
        }
    }
}

impl WtuConfig {
    /// Time (ps) for one WiCSum selection over `n_clusters` given the
    /// early-exit work counters (`elements_scanned` membership tests and
    /// `elements_sorted` within-bucket insertions).
    ///
    /// Preprocess (weighted sum + min/max) is one `n_clusters / n_w`
    /// pass; each bucket scan and each sorted element costs lane-width
    /// cycles; everything pipelines across `n_h` cores for independent
    /// rows, which the caller accounts for by dividing selections.
    pub fn selection_ps(
        &self,
        n_clusters: u64,
        elements_scanned: u64,
        elements_sorted: u64,
    ) -> u64 {
        let lanes = self.n_w as u64;
        let preprocess = n_clusters.div_ceil(lanes);
        let scan = elements_scanned.div_ceil(lanes);
        let sort = elements_sorted; // serial insert per selected element
        cycles_to_ps(preprocess + scan + sort, self.freq_hz)
    }
}

/// One V-Rex core: LXE (DPE + VPE) + DRE (HCU + WTU) + SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VRexCoreConfig {
    /// Dense engine.
    pub dpe: DpeConfig,
    /// Vector engine.
    pub vpe: VpeConfig,
    /// Clustering unit.
    pub hcu: HcuConfig,
    /// Thresholding unit.
    pub wtu: WtuConfig,
    /// LXE on-chip memory (bytes).
    pub lxe_sram_bytes: usize,
    /// DRE on-chip memory (bytes).
    pub dre_sram_bytes: usize,
}

impl Default for VRexCoreConfig {
    fn default() -> Self {
        Self {
            dpe: DpeConfig::default(),
            vpe: VpeConfig::default(),
            hcu: HcuConfig::default(),
            wtu: WtuConfig::default(),
            lxe_sram_bytes: 384 * 1024,
            dre_sram_bytes: 20_608, // 20.125 KiB
        }
    }
}

impl VRexCoreConfig {
    /// Peak FLOP/s of one core (DPE + VPE).
    pub fn peak_flops(&self) -> f64 {
        self.dpe.peak_flops() + self.vpe.peak_ops()
    }
}

/// A multi-core V-Rex chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VRexChipConfig {
    /// Per-core configuration.
    pub core: VRexCoreConfig,
    /// Number of cores (8 edge, 48 server).
    pub n_cores: usize,
}

impl VRexChipConfig {
    /// The edge configuration (V-Rex8).
    pub fn edge8() -> Self {
        Self {
            core: VRexCoreConfig::default(),
            n_cores: 8,
        }
    }

    /// The server configuration (V-Rex48).
    pub fn server48() -> Self {
        Self {
            core: VRexCoreConfig::default(),
            n_cores: 48,
        }
    }

    /// Aggregate peak FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.core.peak_flops() * self.n_cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_peak_matches_table1() {
        let core = VRexCoreConfig::default();
        // 6.554 + 0.102 = 6.656 TFLOPS.
        assert!((core.peak_flops() - 6.656e12).abs() / 6.656e12 < 1e-6);
    }

    #[test]
    fn chip_peaks_match_table1() {
        // Table I: V-Rex8 = 53.3 TFLOPS, V-Rex48 = 319.5 TFLOPS.
        let edge = VRexChipConfig::edge8().peak_flops();
        let server = VRexChipConfig::server48().peak_flops();
        assert!((edge / 1e12 - 53.3).abs() < 0.1, "edge {edge:.3e}");
        assert!((server / 1e12 - 319.5).abs() < 0.3, "server {server:.3e}");
    }

    #[test]
    fn dpe_roofline_behaviour() {
        let dpe = DpeConfig::default();
        // Memory-bound case.
        let t = dpe.op_ps(1000, 1.0, 1 << 30, 204.8e9);
        let expected = (1u64 << 30) as f64 / 204.8e9;
        assert!((t as f64 / 1e12 - expected).abs() / expected < 0.01);
        // Compute-bound case.
        let t2 = dpe.op_ps(6_553_600_000_000, 1.0, 64, 204.8e9);
        assert!((t2 as f64 / 1e12 - 1.0).abs() < 0.01, "1s of peak FLOPs");
    }

    #[test]
    fn hcu_cycles_scale_with_comparisons_and_bits() {
        let hcu = HcuConfig::default();
        // 32-bit signature, 16 lanes -> 2 cycles/comparison @800MHz.
        assert_eq!(hcu.clustering_ps(1, 32), 2500);
        assert_eq!(hcu.clustering_ps(1000, 32), 2_500_000);
        assert_eq!(hcu.clustering_ps(1, 16), 1250);
    }

    #[test]
    fn wtu_early_exit_reduces_time() {
        let wtu = WtuConfig::default();
        let full = wtu.selection_ps(1024, 1024 * 32, 1024);
        let early = wtu.selection_ps(1024, 1024 * 2, 40);
        assert!(early * 5 < full, "early {early} vs full {full}");
    }

    #[test]
    fn vpe_op_time() {
        let vpe = VpeConfig::default();
        // 128 ops / (64 lanes * 2) = 1 cycle.
        assert_eq!(vpe.op_ps(128), 1250);
        assert_eq!(vpe.op_ps(129), 2500);
    }
}
