//! Area and power model (Table III).
//!
//! Per-unit constants are calibrated to the paper's 14 nm synthesis
//! results (Table III) and compose under the same rules the paper
//! applies: per-core breakdown, chip = cores × core, system power adds
//! DRAM/PCIe/storage budgets (Table I's V-Rex8 ≈ 35 W, V-Rex48 ≈
//! 203.68 W).

/// Area (mm²) and power (mW) of one hardware unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitBudget {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Power in mW at 0.8 V / 800 MHz.
    pub power_mw: f64,
}

/// Named budget entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetEntry {
    /// Component name as in Table III.
    pub name: &'static str,
    /// Which engine the component belongs to (`LXE` or `DRE`).
    pub group: &'static str,
    /// The budget.
    pub budget: UnitBudget,
}

/// Table III per-core breakdown.
pub fn vrex_core_breakdown() -> Vec<BudgetEntry> {
    vec![
        BudgetEntry {
            name: "DPE",
            group: "LXE",
            budget: UnitBudget {
                area_mm2: 1.37,
                power_mw: 2311.39,
            },
        },
        BudgetEntry {
            name: "VPE",
            group: "LXE",
            budget: UnitBudget {
                area_mm2: 0.14,
                power_mw: 122.06,
            },
        },
        BudgetEntry {
            name: "On-chip Memory",
            group: "LXE",
            budget: UnitBudget {
                area_mm2: 0.34,
                power_mw: 118.94,
            },
        },
        BudgetEntry {
            name: "KVPU - WTU",
            group: "DRE",
            budget: UnitBudget {
                area_mm2: 0.02,
                power_mw: 39.04,
            },
        },
        BudgetEntry {
            name: "KVPU - HCU",
            group: "DRE",
            budget: UnitBudget {
                area_mm2: 0.01,
                power_mw: 2.99,
            },
        },
        BudgetEntry {
            name: "KVMU",
            group: "DRE",
            budget: UnitBudget {
                area_mm2: 0.01,
                power_mw: 15.01,
            },
        },
    ]
}

/// Total budget of one V-Rex core.
pub fn vrex_core_total() -> UnitBudget {
    let (mut a, mut p) = (0.0, 0.0);
    for e in vrex_core_breakdown() {
        a += e.budget.area_mm2;
        p += e.budget.power_mw;
    }
    UnitBudget {
        area_mm2: a,
        power_mw: p,
    }
}

/// Fraction of core power consumed by the DRE (paper: ~2.4%).
pub fn dre_power_fraction() -> f64 {
    let total = vrex_core_total().power_mw;
    let dre: f64 = vrex_core_breakdown()
        .iter()
        .filter(|e| e.group == "DRE")
        .map(|e| e.budget.power_mw)
        .sum();
    dre / total
}

/// Fraction of core area consumed by the DRE (paper: ~2.0%).
pub fn dre_area_fraction() -> f64 {
    let total = vrex_core_total().area_mm2;
    let dre: f64 = vrex_core_breakdown()
        .iter()
        .filter(|e| e.group == "DRE")
        .map(|e| e.budget.area_mm2)
        .sum();
    dre / total
}

/// Chip area for `n_cores` cores (mm²).
pub fn chip_area_mm2(n_cores: usize) -> f64 {
    vrex_core_total().area_mm2 * n_cores as f64
}

/// System power (W) including cores, DRAM, PCIe, and storage — the
/// Table I budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemPower {
    /// Compute cores (W).
    pub cores_w: f64,
    /// DRAM subsystem (W).
    pub dram_w: f64,
    /// PCIe link (W).
    pub pcie_w: f64,
    /// Storage device (W).
    pub storage_w: f64,
}

impl SystemPower {
    /// V-Rex8 edge system: 8 cores + LPDDR5 + PCIe3.0×4 + NVMe ≈ 35 W.
    pub fn vrex8() -> Self {
        Self {
            cores_w: vrex_core_total().power_mw * 8.0 / 1000.0,
            dram_w: 6.0,
            pcie_w: 4.0, // ×4 lanes at partial duty
            storage_w: 4.1,
        }
    }

    /// V-Rex48 server system: 48 cores + HBM2e + PCIe4.0×16 + CPU DRAM
    /// ≈ 203.68 W.
    pub fn vrex48() -> Self {
        Self {
            cores_w: vrex_core_total().power_mw * 48.0 / 1000.0,
            dram_w: 55.0,
            pcie_w: 15.4,
            storage_w: 8.0,
        }
    }

    /// Total system power (W).
    pub fn total_w(&self) -> f64 {
        self.cores_w + self.dram_w + self.pcie_w + self.storage_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_totals_match_table3() {
        let t = vrex_core_total();
        assert!((t.area_mm2 - 1.89).abs() < 0.001, "area {}", t.area_mm2);
        assert!((t.power_mw - 2609.43).abs() < 0.01, "power {}", t.power_mw);
    }

    #[test]
    fn dre_fractions_match_paper_claims() {
        // Paper: DRE ≈ 2.4% power (abstract says 2.2%), 2.0–2.1% area.
        let p = dre_power_fraction();
        let a = dre_area_fraction();
        assert!((0.018..=0.026).contains(&p), "DRE power fraction {p}");
        assert!((0.015..=0.025).contains(&a), "DRE area fraction {a}");
    }

    #[test]
    fn chip_areas_match_paper() {
        // V-Rex8 = 15.12 mm² (vs AGX 200), V-Rex48 = 90.57 mm² (vs A100 826).
        assert!((chip_area_mm2(8) - 15.12).abs() < 0.01);
        assert!((chip_area_mm2(48) - 90.72).abs() < 0.5);
        assert!(chip_area_mm2(8) < 200.0);
        assert!(chip_area_mm2(48) < 826.0);
    }

    #[test]
    fn system_power_matches_table1() {
        let edge = SystemPower::vrex8().total_w();
        let server = SystemPower::vrex48().total_w();
        assert!((edge - 35.0).abs() < 1.0, "edge {edge}");
        assert!((server - 203.68).abs() < 2.0, "server {server}");
        // Below the GPU boards they replace.
        assert!(edge < 40.0);
        assert!(server < 300.0);
    }
}
