//! Dependency-graph resource scheduler.
//!
//! The evaluation composes per-layer pipelines where compute
//! (QKV/attention/FFN), KV prediction, and KV fetch overlap subject to
//! data dependencies and resource exclusivity (Fig. 5). This engine
//! schedules such task graphs deterministically:
//!
//! * a **task** runs for a fixed duration on one **resource**;
//! * it starts at the maximum of its dependencies' end times and the
//!   resource's availability; resources serve one task at a time;
//! * busy intervals are recorded per resource with byte annotations so
//!   bandwidth-over-time traces (Fig. 17) fall out directly.

use crate::time::ps_to_seconds;

/// Identifies a resource registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Identifies a scheduled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// One recorded busy interval on a resource.
#[derive(Debug, Clone, PartialEq)]
pub struct BusyInterval {
    /// Start time (ps).
    pub start: u64,
    /// End time (ps).
    pub end: u64,
    /// Bytes moved during the interval (0 for pure compute).
    pub bytes: u64,
    /// Human-readable tag.
    pub tag: String,
}

#[derive(Debug)]
struct Resource {
    name: String,
    next_free: u64,
    busy: Vec<BusyInterval>,
}

#[derive(Debug, Clone, Copy)]
struct Task {
    end: u64,
}

/// A deterministic task-graph scheduler.
///
/// # Examples
///
/// ```
/// use vrex_hwsim::Engine;
///
/// let mut e = Engine::new();
/// let cpu = e.add_resource("cpu");
/// let bus = e.add_resource("bus");
/// let a = e.schedule(cpu, 100, &[], "compute", 0);
/// let b = e.schedule(bus, 50, &[a], "fetch", 4096);
/// assert_eq!(e.end_of(b), 150); // waits for `a`
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    resources: Vec<Resource>,
    tasks: Vec<Task>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource (compute unit, link, memory channel).
    pub fn add_resource(&mut self, name: &str) -> ResourceId {
        self.resources.push(Resource {
            name: name.to_string(),
            next_free: 0,
            busy: Vec::new(),
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Schedules a task of `duration_ps` on `resource`, starting no
    /// earlier than `deps` have finished. Zero-duration tasks are legal
    /// (pure synchronisation points). Returns the task id.
    ///
    /// # Panics
    ///
    /// Panics if `resource` or any dependency id is invalid.
    pub fn schedule(
        &mut self,
        resource: ResourceId,
        duration_ps: u64,
        deps: &[TaskId],
        tag: &str,
        bytes: u64,
    ) -> TaskId {
        let dep_ready = deps.iter().map(|d| self.tasks[d.0].end).max().unwrap_or(0);
        let res = &mut self.resources[resource.0];
        let start = dep_ready.max(res.next_free);
        let end = start + duration_ps;
        res.next_free = end;
        if duration_ps > 0 {
            res.busy.push(BusyInterval {
                start,
                end,
                bytes,
                tag: tag.to_string(),
            });
        }
        self.tasks.push(Task { end });
        TaskId(self.tasks.len() - 1)
    }

    /// End time (ps) of a task.
    pub fn end_of(&self, task: TaskId) -> u64 {
        self.tasks[task.0].end
    }

    /// Latest end time across all tasks (0 when empty).
    pub fn makespan(&self) -> u64 {
        self.tasks.iter().map(|t| t.end).max().unwrap_or(0)
    }

    /// Name of a resource.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.0].name
    }

    /// Busy intervals recorded on a resource, in schedule order.
    pub fn trace(&self, r: ResourceId) -> &[BusyInterval] {
        &self.resources[r.0].busy
    }

    /// Total busy time (ps) of a resource.
    pub fn busy_time(&self, r: ResourceId) -> u64 {
        self.resources[r.0]
            .busy
            .iter()
            .map(|b| b.end - b.start)
            .sum()
    }

    /// Utilisation of a resource over the makespan, in `[0, 1]`.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        let span = self.makespan();
        if span == 0 {
            0.0
        } else {
            self.busy_time(r) as f64 / span as f64
        }
    }

    /// Average bandwidth (bytes/s) of a resource within `[t0, t1)`,
    /// attributing each interval's bytes uniformly over its duration.
    /// This is the Fig. 17 bandwidth-timeline query.
    pub fn bandwidth_in_window(&self, r: ResourceId, t0: u64, t1: u64) -> f64 {
        assert!(t1 > t0, "empty window");
        let mut bytes = 0.0;
        for b in &self.resources[r.0].busy {
            let overlap_start = b.start.max(t0);
            let overlap_end = b.end.min(t1);
            if overlap_end > overlap_start && b.end > b.start {
                let frac = (overlap_end - overlap_start) as f64 / (b.end - b.start) as f64;
                bytes += b.bytes as f64 * frac;
            }
        }
        bytes / ps_to_seconds(t1 - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn independent_tasks_on_one_resource_serialize() {
        let mut e = Engine::new();
        let r = e.add_resource("unit");
        let a = e.schedule(r, 100, &[], "a", 0);
        let b = e.schedule(r, 50, &[], "b", 0);
        assert_eq!(e.end_of(a), 100);
        assert_eq!(e.end_of(b), 150);
    }

    #[test]
    fn independent_tasks_on_two_resources_overlap() {
        let mut e = Engine::new();
        let r1 = e.add_resource("u1");
        let r2 = e.add_resource("u2");
        let a = e.schedule(r1, 100, &[], "a", 0);
        let b = e.schedule(r2, 80, &[], "b", 0);
        assert_eq!(e.end_of(a), 100);
        assert_eq!(e.end_of(b), 80);
        assert_eq!(e.makespan(), 100);
    }

    #[test]
    fn dependencies_defer_start() {
        let mut e = Engine::new();
        let r1 = e.add_resource("u1");
        let r2 = e.add_resource("u2");
        let a = e.schedule(r1, 100, &[], "a", 0);
        let b = e.schedule(r2, 10, &[a], "b", 0);
        assert_eq!(e.end_of(b), 110);
    }

    #[test]
    fn zero_duration_tasks_synchronise() {
        let mut e = Engine::new();
        let r = e.add_resource("u");
        let a = e.schedule(r, 30, &[], "a", 0);
        let join = e.schedule(r, 0, &[a], "join", 0);
        assert_eq!(e.end_of(join), 30);
        assert!(e.trace(r).len() == 1, "zero tasks leave no trace");
    }

    #[test]
    fn utilization_and_busy_time() {
        let mut e = Engine::new();
        let r1 = e.add_resource("u1");
        let r2 = e.add_resource("u2");
        e.schedule(r1, 100, &[], "a", 0);
        e.schedule(r2, 25, &[], "b", 0);
        assert_eq!(e.busy_time(r2), 25);
        assert!((e.utilization(r2) - 0.25).abs() < 1e-12);
        assert!((e.utilization(r1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_window_attributes_bytes() {
        let mut e = Engine::new();
        let link = e.add_resource("pcie");
        // 1000 ps moving 1000 bytes -> 1e12 bytes/s within the window.
        e.schedule(link, 1000, &[], "xfer", 1000);
        let bw = e.bandwidth_in_window(link, 0, 1000);
        assert!((bw - 1e12).abs() / 1e12 < 1e-9);
        // Half-window sees half the bytes over half the time: same rate.
        let bw_half = e.bandwidth_in_window(link, 0, 500);
        assert!((bw_half - 1e12).abs() / 1e12 < 1e-9);
        // Idle window: zero.
        assert_eq!(e.bandwidth_in_window(link, 2000, 3000), 0.0);
    }

    proptest! {
        /// Causality: no task ends before the latest dependency plus
        /// its own duration; resource intervals never overlap.
        #[test]
        fn schedule_respects_causality(durations in proptest::collection::vec(1u64..1000, 1..40)) {
            let mut e = Engine::new();
            let r = e.add_resource("u");
            let mut prev: Option<TaskId> = None;
            for (i, &d) in durations.iter().enumerate() {
                let deps: Vec<TaskId> = prev.into_iter().collect();
                let t = e.schedule(r, d, &deps, &format!("t{i}"), 0);
                if let Some(p) = prev {
                    prop_assert!(e.end_of(t) >= e.end_of(p) + d);
                }
                prev = Some(t);
            }
            let trace = e.trace(r);
            for w in trace.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "overlapping intervals");
            }
            prop_assert_eq!(e.busy_time(r), durations.iter().sum::<u64>());
        }
    }
}
