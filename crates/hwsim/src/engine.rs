//! Dependency-graph resource scheduler.
//!
//! The evaluation composes per-layer pipelines where compute
//! (QKV/attention/FFN), KV prediction, and KV fetch overlap subject to
//! data dependencies and resource exclusivity (Fig. 5). This engine
//! schedules such task graphs deterministically:
//!
//! * a **task** runs for a fixed duration on one **resource**;
//! * it starts at the maximum of its dependencies' end times and the
//!   resource's availability; resources serve one task at a time;
//! * busy intervals are recorded per resource with byte annotations so
//!   bandwidth-over-time traces (Fig. 17) fall out directly.
//!
//! Two scheduling disciplines coexist on the same timelines:
//!
//! * [`Engine::schedule`] **appends**: the task starts no earlier than
//!   everything previously placed on the resource (FIFO order — the
//!   right discipline for a compute queue);
//! * [`Engine::reserve_after`] / [`Engine::schedule_after`] find the
//!   **earliest fit**: the first gap at or after a given instant that
//!   holds the duration, even if later work was already placed (the
//!   right discipline for latency-critical link transfers such as tier
//!   restores, which may claim link idle time that low-priority spill
//!   writebacks left behind — or that lies *before* the current
//!   simulation instant, modelling a prefetch that was issued when the
//!   work item first became visible).
//!
//! [`Engine::truncate_from`] drops not-yet-started reservations from a
//! timeline so a scheduler can re-plan after conditions change.

use crate::time::ps_to_seconds;

/// Identifies a resource registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Identifies a scheduled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// One recorded busy interval on a resource.
#[derive(Debug, Clone, PartialEq)]
pub struct BusyInterval {
    /// Start time (ps).
    pub start: u64,
    /// End time (ps).
    pub end: u64,
    /// Bytes moved during the interval (0 for pure compute).
    pub bytes: u64,
    /// Human-readable tag.
    pub tag: String,
}

#[derive(Debug)]
struct Resource {
    name: String,
    /// End of the last *appended* task; [`Engine::schedule`] starts at
    /// or after this, so appended tasks stay FIFO even when earlier
    /// gaps exist.
    next_free: u64,
    /// Busy intervals, kept sorted by start and non-overlapping.
    busy: Vec<BusyInterval>,
}

impl Resource {
    /// Earliest start `>= earliest` where `duration` fits into a gap of
    /// the (sorted, non-overlapping) timeline.
    fn earliest_fit(&self, earliest: u64, duration: u64) -> u64 {
        let mut candidate = earliest;
        for b in &self.busy {
            if b.end <= candidate {
                continue;
            }
            if candidate.saturating_add(duration) <= b.start {
                break;
            }
            candidate = b.end;
        }
        candidate
    }

    /// Inserts an interval keeping the timeline sorted by start.
    fn insert(&mut self, iv: BusyInterval) {
        let at = self.busy.partition_point(|b| b.start <= iv.start);
        debug_assert!(
            at == 0 || self.busy[at - 1].end <= iv.start,
            "reservation overlaps its predecessor"
        );
        debug_assert!(
            at == self.busy.len() || iv.end <= self.busy[at].start,
            "reservation overlaps its successor"
        );
        self.busy.insert(at, iv);
    }
}

#[derive(Debug, Clone, Copy)]
struct Task {
    start: u64,
    end: u64,
}

/// A deterministic task-graph scheduler.
///
/// # Examples
///
/// ```
/// use vrex_hwsim::Engine;
///
/// let mut e = Engine::new();
/// let cpu = e.add_resource("cpu");
/// let bus = e.add_resource("bus");
/// let a = e.schedule(cpu, 100, &[], "compute", 0);
/// let b = e.schedule(bus, 50, &[a], "fetch", 4096);
/// assert_eq!(e.end_of(b), 150); // waits for `a`
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    resources: Vec<Resource>,
    tasks: Vec<Task>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource (compute unit, link, memory channel).
    pub fn add_resource(&mut self, name: &str) -> ResourceId {
        self.resources.push(Resource {
            name: name.to_string(),
            next_free: 0,
            busy: Vec::new(),
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Schedules a task of `duration_ps` on `resource`, starting no
    /// earlier than `deps` have finished and everything previously
    /// *appended* to the resource (FIFO). Zero-duration tasks are legal
    /// (pure synchronisation points). Returns the task id.
    ///
    /// # Panics
    ///
    /// Panics if `resource` or any dependency id is invalid.
    pub fn schedule(
        &mut self,
        resource: ResourceId,
        duration_ps: u64,
        deps: &[TaskId],
        tag: &str,
        bytes: u64,
    ) -> TaskId {
        let dep_ready = deps.iter().map(|d| self.tasks[d.0].end).max().unwrap_or(0);
        let res = &mut self.resources[resource.0];
        // Appended tasks also never overlap earliest-fit reservations:
        // reservations cap at the timeline's max end, which next_free
        // tracks below.
        let start = res.earliest_fit(dep_ready.max(res.next_free), duration_ps);
        let end = start + duration_ps;
        res.next_free = res.next_free.max(end);
        if duration_ps > 0 {
            res.insert(BusyInterval {
                start,
                end,
                bytes,
                tag: tag.to_string(),
            });
        }
        self.tasks.push(Task { start, end });
        TaskId(self.tasks.len() - 1)
    }

    /// Reserves the **earliest fit** for `duration_ps` on `resource` at
    /// or after `earliest_ps`: the first gap in the timeline that holds
    /// the duration, even if that gap lies before work already placed.
    /// This is the reservation discipline for latency-critical
    /// transfers (tier restores, speculative prefetch) that claim link
    /// idle time — including idle time in the simulated past, modelling
    /// a transfer issued when its trigger first became visible.
    ///
    /// # Panics
    ///
    /// Panics if `resource` is invalid.
    pub fn reserve_after(
        &mut self,
        resource: ResourceId,
        earliest_ps: u64,
        duration_ps: u64,
        tag: &str,
        bytes: u64,
    ) -> TaskId {
        let res = &mut self.resources[resource.0];
        let start = res.earliest_fit(earliest_ps, duration_ps);
        let end = start + duration_ps;
        res.next_free = res.next_free.max(end);
        if duration_ps > 0 {
            res.insert(BusyInterval {
                start,
                end,
                bytes,
                tag: tag.to_string(),
            });
        }
        self.tasks.push(Task { start, end });
        TaskId(self.tasks.len() - 1)
    }

    /// Dependency-aware earliest-fit: like [`Self::reserve_after`], but
    /// the start is additionally bounded below by every dependency's
    /// end time.
    ///
    /// # Panics
    ///
    /// Panics if `resource` or any dependency id is invalid.
    pub fn schedule_after(
        &mut self,
        resource: ResourceId,
        earliest_ps: u64,
        duration_ps: u64,
        deps: &[TaskId],
        tag: &str,
        bytes: u64,
    ) -> TaskId {
        let dep_ready = deps.iter().map(|d| self.tasks[d.0].end).max().unwrap_or(0);
        self.reserve_after(
            resource,
            earliest_ps.max(dep_ready),
            duration_ps,
            tag,
            bytes,
        )
    }

    /// Drops every busy interval on `resource` that **starts at or
    /// after** `t_ps`, returning how many were removed. In-progress
    /// intervals (started before `t_ps`) are kept whole. The appended
    /// frontier rewinds to the latest remaining end, so a scheduler can
    /// re-plan the future of a timeline after conditions change.
    ///
    /// Task ids whose reservations were removed keep their recorded
    /// start/end for queries, but no longer occupy the timeline.
    ///
    /// # Panics
    ///
    /// Panics if `resource` is invalid.
    pub fn truncate_from(&mut self, resource: ResourceId, t_ps: u64) -> usize {
        let res = &mut self.resources[resource.0];
        let keep = res.busy.partition_point(|b| b.start < t_ps);
        let removed = res.busy.len() - keep;
        res.busy.truncate(keep);
        res.next_free = res.busy.iter().map(|b| b.end).max().unwrap_or(0);
        removed
    }

    /// The appended-task frontier of a resource: the earliest instant
    /// [`Self::schedule`] would start a new task (the max end over
    /// everything placed so far). Lets a caller append work that must
    /// additionally not start before some instant — e.g. a writeback
    /// decided *now* goes at `max(now, next_free)` so it is both
    /// lowest-priority and causal.
    pub fn next_free(&self, r: ResourceId) -> u64 {
        self.resources[r.0].next_free
    }

    /// Start time (ps) of a task.
    pub fn start_of(&self, task: TaskId) -> u64 {
        self.tasks[task.0].start
    }

    /// End time (ps) of a task.
    pub fn end_of(&self, task: TaskId) -> u64 {
        self.tasks[task.0].end
    }

    /// Latest end time across all tasks (0 when empty).
    pub fn makespan(&self) -> u64 {
        self.tasks.iter().map(|t| t.end).max().unwrap_or(0)
    }

    /// Name of a resource.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.0].name
    }

    /// Busy intervals recorded on a resource, sorted by start time.
    pub fn trace(&self, r: ResourceId) -> &[BusyInterval] {
        &self.resources[r.0].busy
    }

    /// Total busy time (ps) of a resource.
    pub fn busy_time(&self, r: ResourceId) -> u64 {
        self.resources[r.0]
            .busy
            .iter()
            .map(|b| b.end - b.start)
            .sum()
    }

    /// Utilisation of a resource over the makespan, in `[0, 1]`.
    /// A resource with no recorded work — or an engine whose makespan
    /// is zero — pins to `0.0` rather than dividing by zero.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        let span = self.makespan();
        if span == 0 {
            0.0
        } else {
            self.busy_time(r) as f64 / span as f64
        }
    }

    /// Average bandwidth (bytes/s) of a resource within `[t0, t1)`,
    /// attributing each interval's bytes uniformly over its duration.
    /// This is the Fig. 17 bandwidth-timeline query. An empty window
    /// (`t1 <= t0`) carries no bytes and pins to `0.0`; so does an
    /// empty timeline.
    pub fn bandwidth_in_window(&self, r: ResourceId, t0: u64, t1: u64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let mut bytes = 0.0;
        for b in &self.resources[r.0].busy {
            let overlap_start = b.start.max(t0);
            let overlap_end = b.end.min(t1);
            if overlap_end > overlap_start && b.end > b.start {
                let frac = (overlap_end - overlap_start) as f64 / (b.end - b.start) as f64;
                bytes += b.bytes as f64 * frac;
            }
        }
        bytes / ps_to_seconds(t1 - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn independent_tasks_on_one_resource_serialize() {
        let mut e = Engine::new();
        let r = e.add_resource("unit");
        let a = e.schedule(r, 100, &[], "a", 0);
        let b = e.schedule(r, 50, &[], "b", 0);
        assert_eq!(e.end_of(a), 100);
        assert_eq!(e.end_of(b), 150);
    }

    #[test]
    fn independent_tasks_on_two_resources_overlap() {
        let mut e = Engine::new();
        let r1 = e.add_resource("u1");
        let r2 = e.add_resource("u2");
        let a = e.schedule(r1, 100, &[], "a", 0);
        let b = e.schedule(r2, 80, &[], "b", 0);
        assert_eq!(e.end_of(a), 100);
        assert_eq!(e.end_of(b), 80);
        assert_eq!(e.makespan(), 100);
    }

    #[test]
    fn dependencies_defer_start() {
        let mut e = Engine::new();
        let r1 = e.add_resource("u1");
        let r2 = e.add_resource("u2");
        let a = e.schedule(r1, 100, &[], "a", 0);
        let b = e.schedule(r2, 10, &[a], "b", 0);
        assert_eq!(e.end_of(b), 110);
        assert_eq!(e.start_of(b), 100);
    }

    #[test]
    fn zero_duration_tasks_synchronise() {
        let mut e = Engine::new();
        let r = e.add_resource("u");
        let a = e.schedule(r, 30, &[], "a", 0);
        let join = e.schedule(r, 0, &[a], "join", 0);
        assert_eq!(e.end_of(join), 30);
        assert!(e.trace(r).len() == 1, "zero tasks leave no trace");
    }

    #[test]
    fn utilization_and_busy_time() {
        let mut e = Engine::new();
        let r1 = e.add_resource("u1");
        let r2 = e.add_resource("u2");
        e.schedule(r1, 100, &[], "a", 0);
        e.schedule(r2, 25, &[], "b", 0);
        assert_eq!(e.busy_time(r2), 25);
        assert!((e.utilization(r2) - 0.25).abs() < 1e-12);
        assert!((e.utilization(r1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_pins_to_zero_without_tasks() {
        // Empty engine: makespan 0 must not divide by zero.
        let mut e = Engine::new();
        let r = e.add_resource("idle");
        assert_eq!(e.utilization(r), 0.0);
        // A resource with no tasks while others are busy: 0, not NaN.
        let busy = e.add_resource("busy");
        e.schedule(busy, 100, &[], "work", 0);
        assert_eq!(e.utilization(r), 0.0);
        assert_eq!(e.busy_time(r), 0);
    }

    #[test]
    fn bandwidth_window_attributes_bytes() {
        let mut e = Engine::new();
        let link = e.add_resource("pcie");
        // 1000 ps moving 1000 bytes -> 1e12 bytes/s within the window.
        e.schedule(link, 1000, &[], "xfer", 1000);
        let bw = e.bandwidth_in_window(link, 0, 1000);
        assert!((bw - 1e12).abs() / 1e12 < 1e-9);
        // Half-window sees half the bytes over half the time: same rate.
        let bw_half = e.bandwidth_in_window(link, 0, 500);
        assert!((bw_half - 1e12).abs() / 1e12 < 1e-9);
        // Idle window: zero.
        assert_eq!(e.bandwidth_in_window(link, 2000, 3000), 0.0);
    }

    #[test]
    fn empty_bandwidth_windows_pin_to_zero() {
        let mut e = Engine::new();
        let link = e.add_resource("pcie");
        // Empty timeline, empty window, inverted window: all 0.0.
        assert_eq!(e.bandwidth_in_window(link, 0, 100), 0.0);
        assert_eq!(e.bandwidth_in_window(link, 50, 50), 0.0);
        assert_eq!(e.bandwidth_in_window(link, 70, 30), 0.0);
        e.schedule(link, 1000, &[], "xfer", 1000);
        // A zero-width window inside a busy interval still carries no
        // bytes (no time passes).
        assert_eq!(e.bandwidth_in_window(link, 500, 500), 0.0);
    }

    #[test]
    fn reserve_after_takes_the_earliest_gap() {
        let mut e = Engine::new();
        let link = e.add_resource("link");
        e.schedule(link, 100, &[], "a", 0); // [0, 100)
        let b = e.reserve_after(link, 300, 100, "b", 0); // [300, 400)
        assert_eq!(e.start_of(b), 300);
        // 150 ps fits the [100, 300) gap even though `b` is placed.
        let c = e.reserve_after(link, 0, 150, "c", 0);
        assert_eq!(e.start_of(c), 100);
        assert_eq!(e.end_of(c), 250);
        // 60 ps next: the remaining [250, 300) gap is too small, so it
        // lands after `b`.
        let d = e.reserve_after(link, 0, 60, "d", 0);
        assert_eq!(e.start_of(d), 400);
        // Timeline stayed sorted and non-overlapping.
        let trace = e.trace(link);
        for w in trace.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn schedule_after_respects_deps_and_gaps() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu");
        let link = e.add_resource("link");
        let a = e.schedule(cpu, 200, &[], "compute", 0);
        e.reserve_after(link, 0, 50, "early", 0); // [0, 50)
                                                  // Depends on `a` (ends 200): the [50, ..] gap is admissible but
                                                  // the dependency pushes the start to 200.
        let b = e.schedule_after(link, 0, 30, &[a], "after-dep", 0);
        assert_eq!(e.start_of(b), 200);
        // No deps, earliest 10: fits right after the first interval.
        let c = e.schedule_after(link, 10, 30, &[], "gap", 0);
        assert_eq!(e.start_of(c), 50);
    }

    #[test]
    fn append_schedule_stays_fifo_despite_gaps() {
        let mut e = Engine::new();
        let r = e.add_resource("q");
        e.reserve_after(r, 1000, 100, "late", 0); // [1000, 1100)
                                                  // Appends go after everything already placed (FIFO), never into
                                                  // the [0, 1000) gap.
        let a = e.schedule(r, 10, &[], "a", 0);
        assert_eq!(e.start_of(a), 1100);
        // Earliest-fit can still use the gap afterwards.
        let b = e.reserve_after(r, 0, 500, "fill", 0);
        assert_eq!(e.start_of(b), 0);
    }

    #[test]
    fn truncate_from_drops_future_reservations_only() {
        let mut e = Engine::new();
        let r = e.add_resource("link");
        e.schedule(r, 100, &[], "a", 0); // [0, 100)
        e.reserve_after(r, 200, 50, "b", 0); // [200, 250)
        e.reserve_after(r, 400, 50, "c", 0); // [400, 450)
                                             // Truncating at 150 drops b and c, keeps the in-progress a.
        assert_eq!(e.truncate_from(r, 150), 2);
        assert_eq!(e.trace(r).len(), 1);
        assert_eq!(e.busy_time(r), 100);
        // The frontier rewound: the next append starts at 100.
        let d = e.schedule(r, 10, &[], "d", 0);
        assert_eq!(e.start_of(d), 100);
        // Truncating at an instant inside an interval keeps it whole:
        // `d` spans [100, 110), so cutting at 105 keeps both it and `a`.
        assert_eq!(e.truncate_from(r, 105), 0, "in-progress tasks kept");
        assert_eq!(e.trace(r).len(), 2);
        // Cutting exactly at a start drops that reservation.
        assert_eq!(e.truncate_from(r, 100), 1, "d dropped, a kept");
        assert_eq!(e.trace(r).len(), 1);
        assert_eq!(e.truncate_from(r, 0), 1, "everything dropped");
        assert_eq!(e.busy_time(r), 0);
    }

    proptest! {
        /// Causality: no task ends before the latest dependency plus
        /// its own duration; resource intervals never overlap.
        #[test]
        fn schedule_respects_causality(durations in proptest::collection::vec(1u64..1000, 1..40)) {
            let mut e = Engine::new();
            let r = e.add_resource("u");
            let mut prev: Option<TaskId> = None;
            for (i, &d) in durations.iter().enumerate() {
                let deps: Vec<TaskId> = prev.into_iter().collect();
                let t = e.schedule(r, d, &deps, &format!("t{i}"), 0);
                if let Some(p) = prev {
                    prop_assert!(e.end_of(t) >= e.end_of(p) + d);
                }
                prev = Some(t);
            }
            let trace = e.trace(r);
            for w in trace.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "overlapping intervals");
            }
            prop_assert_eq!(e.busy_time(r), durations.iter().sum::<u64>());
        }

        /// Interval exclusivity under a random mix of appends and
        /// earliest-fit reservations on shared resources: every
        /// timeline stays strictly ordered by start with no overlap,
        /// every task occupies exactly its duration, and reservations
        /// never start before their requested earliest instant.
        #[test]
        fn mixed_reservations_never_overlap(
            ops in proptest::collection::vec(
                (0u8..3, 0usize..3, 0u64..5000, 1u64..800), 1..60)
        ) {
            let mut e = Engine::new();
            let rs = [
                e.add_resource("compute"),
                e.add_resource("pcie"),
                e.add_resource("ssd"),
            ];
            let mut last: Option<TaskId> = None;
            for &(op, ri, earliest, dur) in &ops {
                let r = rs[ri];
                let t = match op {
                    0 => e.schedule(r, dur, &[], "append", dur),
                    1 => {
                        let t = e.reserve_after(r, earliest, dur, "fit", dur);
                        prop_assert!(e.start_of(t) >= earliest);
                        t
                    }
                    _ => {
                        let deps: Vec<TaskId> = last.into_iter().collect();
                        let t = e.schedule_after(r, earliest, dur, &deps, "dep", dur);
                        prop_assert!(e.start_of(t) >= earliest);
                        if let Some(p) = last {
                            prop_assert!(e.start_of(t) >= e.end_of(p));
                        }
                        t
                    }
                };
                prop_assert_eq!(e.end_of(t) - e.start_of(t), dur);
                last = Some(t);
            }
            for r in rs {
                let trace = e.trace(r);
                for w in trace.windows(2) {
                    prop_assert!(
                        w[0].start < w[1].start,
                        "intervals not strictly ordered"
                    );
                    prop_assert!(
                        w[0].end <= w[1].start,
                        "overlapping intervals: {:?} then {:?}",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }
}
