//! Roofline-analysis helpers (Fig. 18).
//!
//! The paper's Fig. 18 places three edge systems on a roofline at the
//! frame-processing workload's operational intensity (15.2 FLOP/byte):
//! AGX+FlexGen reaches 6.6% of attainable, AGX+ReKV ~15%, V-Rex8 71.5%.
//! These helpers compute attainable throughput and achieved fractions
//! from measured latencies.

/// A machine roof: peak compute and memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roof {
    /// Peak throughput (FLOP/s).
    pub peak_flops: f64,
    /// Memory bandwidth (bytes/s).
    pub mem_bytes_per_s: f64,
}

impl Roof {
    /// Attainable FLOP/s at operational intensity `oi` (FLOP/byte).
    pub fn attainable(&self, oi: f64) -> f64 {
        (oi * self.mem_bytes_per_s).min(self.peak_flops)
    }

    /// The ridge point (FLOP/byte) where the roofline flattens.
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.mem_bytes_per_s
    }
}

/// One measured system point on the roofline plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// System label.
    pub name: String,
    /// Operational intensity of the workload (FLOP/byte).
    pub oi: f64,
    /// Achieved throughput (FLOP/s) = useful FLOPs / measured time.
    pub achieved_flops: f64,
    /// Fraction of the attainable roof achieved.
    pub fraction_of_attainable: f64,
}

impl RooflinePoint {
    /// Builds a point from measured work and latency.
    pub fn from_measurement(
        name: &str,
        roof: Roof,
        useful_flops: u64,
        total_bytes: u64,
        seconds: f64,
    ) -> Self {
        assert!(seconds > 0.0, "latency must be positive");
        let oi = useful_flops as f64 / total_bytes.max(1) as f64;
        let achieved = useful_flops as f64 / seconds;
        let attainable = roof.attainable(oi);
        Self {
            name: name.to_string(),
            oi,
            achieved_flops: achieved,
            fraction_of_attainable: achieved / attainable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attainable_below_and_above_ridge() {
        let roof = Roof {
            peak_flops: 54e12,
            mem_bytes_per_s: 204.8e9,
        };
        let ridge = roof.ridge();
        assert!((ridge - 263.7).abs() < 1.0);
        // Below ridge: bandwidth-limited.
        assert!((roof.attainable(15.2) - 15.2 * 204.8e9).abs() < 1.0);
        // Above ridge: compute-limited.
        assert_eq!(roof.attainable(1000.0), 54e12);
    }

    #[test]
    fn point_fraction_is_relative_to_attainable() {
        let roof = Roof {
            peak_flops: 54e12,
            mem_bytes_per_s: 204.8e9,
        };
        // Workload: OI 15.2, so attainable = 3.11 TFLOPS. A system
        // achieving 1.56 TFLOPS sits at 50%.
        let flops = 15_200_000_000u64; // 15.2 GFLOP
        let bytes = 1_000_000_000u64; // 1 GB
        let p = RooflinePoint::from_measurement("x", roof, flops, bytes, 15.2e9 / 1.556e12 / 2.0);
        assert!((p.oi - 15.2).abs() < 1e-9);
        assert!((p.fraction_of_attainable - 1.0).abs() < 0.02);
    }

    #[test]
    fn slower_system_scores_lower_fraction() {
        let roof = Roof {
            peak_flops: 54e12,
            mem_bytes_per_s: 204.8e9,
        };
        let fast = RooflinePoint::from_measurement("fast", roof, 1 << 40, 1 << 36, 1.0);
        let slow = RooflinePoint::from_measurement("slow", roof, 1 << 40, 1 << 36, 10.0);
        assert!((fast.fraction_of_attainable / slow.fraction_of_attainable - 10.0).abs() < 1e-6);
    }
}
