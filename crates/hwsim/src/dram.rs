//! DRAM timing and energy model (DRAMSim3 substitute).
//!
//! Models channels × banks with open-row state: a request is split into
//! bursts, bursts are interleaved across channels, and each access pays
//! row-activation latency on a row miss (`tRP + tRCD + tCL`) or just
//! CAS latency on a row hit. Streaming reads therefore approach the
//! configured peak bandwidth while random accesses degrade — the two
//! regimes the paper's evaluation exercises (weight streaming vs.
//! scattered KV gathers).
//!
//! Presets follow the paper's Table I platforms: LPDDR5 (204.8 GB/s,
//! 256-bit), HBM2e (1935 GB/s, 5120-bit), and DDR4 CPU memory behind
//! the server PCIe link. Energy per bit comes from the vendor reports
//! the paper cites.

use crate::time::{seconds_to_ps, transfer_ps};

/// Static DRAM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer (page) size per bank in bytes.
    pub row_bytes: u64,
    /// Peak per-channel bandwidth in bytes/s.
    pub channel_bytes_per_s: f64,
    /// Row-precharge + activate + CAS latency on a row miss (ps).
    pub row_miss_ps: u64,
    /// Minimum interval between row activations on one channel (tRRD,
    /// ps) — bank-level parallelism lets activations pipeline at this
    /// rate rather than serialising full row-miss latencies.
    pub act_interval_ps: u64,
    /// CAS-only latency on a row hit (ps).
    pub row_hit_ps: u64,
    /// Access granularity (burst) in bytes.
    pub burst_bytes: u64,
    /// Access energy in picojoules per bit (read).
    pub pj_per_bit: f64,
    /// Background (static + refresh) power in watts.
    pub background_w: f64,
}

impl DramConfig {
    /// LPDDR5, 256-bit bus, 204.8 GB/s — the AGX Orin / V-Rex8 memory.
    pub fn lpddr5_204gb() -> Self {
        Self {
            name: "LPDDR5-204.8GB/s",
            channels: 8,
            banks_per_channel: 16,
            row_bytes: 2048,
            channel_bytes_per_s: 204.8e9 / 8.0,
            row_miss_ps: 45_000,
            act_interval_ps: 7_500,
            row_hit_ps: 15_000,
            burst_bytes: 64,
            pj_per_bit: 4.0,
            background_w: 0.5,
        }
    }

    /// HBM2e, 5120-bit bus, 1935 GB/s — the A100 / V-Rex48 memory.
    pub fn hbm2e_1935gb() -> Self {
        Self {
            name: "HBM2e-1935GB/s",
            channels: 40,
            banks_per_channel: 16,
            row_bytes: 1024,
            channel_bytes_per_s: 1935.0e9 / 40.0,
            row_miss_ps: 40_000,
            act_interval_ps: 5_000,
            row_hit_ps: 14_000,
            burst_bytes: 64,
            pj_per_bit: 3.9,
            background_w: 4.0,
        }
    }

    /// DDR4 CPU memory (server offload target behind PCIe 4.0 ×16).
    pub fn ddr4_cpu() -> Self {
        Self {
            name: "DDR4-CPU",
            channels: 4,
            banks_per_channel: 16,
            row_bytes: 8192,
            channel_bytes_per_s: 25.6e9,
            row_miss_ps: 60_000,
            act_interval_ps: 6_000,
            row_hit_ps: 20_000,
            burst_bytes: 64,
            pj_per_bit: 15.0,
            background_w: 2.0,
        }
    }

    /// Aggregate peak bandwidth (bytes/s).
    pub fn peak_bytes_per_s(&self) -> f64 {
        self.channel_bytes_per_s * self.channels as f64
    }

    /// Duration (ps) of streaming `bytes` from address 0 on a *fresh*
    /// device (all rows closed) — exactly what
    /// `Dram::new(cfg).access(0, bytes)` returns, but in O(channels)
    /// arithmetic with no allocation or open-row bookkeeping.
    ///
    /// Fetch pricing and tier-migration pricing construct a fresh
    /// [`Dram`] per call and immediately discard it, so no row can be
    /// open and the stateful walk collapses to this closed form. It is
    /// the hot leaf of the serving scheduler's step pricing; the
    /// `stream_read_matches_fresh_access` oracle test pins the
    /// equivalence over the preset configurations.
    pub fn stream_read_ps(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        if self.row_bytes % self.burst_bytes != 0 {
            // Exotic geometry: defer to the reference walk.
            return Dram::new(self.clone()).access(0, bytes);
        }
        let b = self.burst_bytes;
        let channels = self.channels as u64;
        let n_bursts = bytes.div_ceil(b);
        let bursts_per_row = self.row_bytes / b;
        let r_last = (n_bursts - 1) / bursts_per_row;
        let n_rows = r_last + 1;
        let k_first = bursts_per_row.min(n_bursts);
        let k_last = if n_rows >= 2 {
            n_bursts - k_first - (n_rows - 2) * bursts_per_row
        } else {
            0
        };
        let burst_transfer = transfer_ps(b, self.channel_bytes_per_s);
        // Rows cycle the channels round-robin from row 0; no row hit is
        // possible on a fresh device, so every row costs one activation
        // slot. Per channel, data transfer serialises on the bus while
        // activations pipeline across banks — the max of the two bounds
        // the channel, and the slowest channel bounds the access.
        let mut per_channel_max = 0u64;
        for ch in 0..channels {
            let rows = if ch <= r_last {
                (r_last - ch) / channels + 1
            } else {
                0
            };
            let mut transfer_bursts = rows * bursts_per_row;
            if ch == 0 {
                transfer_bursts -= bursts_per_row - k_first;
            }
            if n_rows >= 2 && ch == r_last % channels {
                transfer_bursts -= bursts_per_row - k_last;
            }
            let t = transfer_bursts * burst_transfer;
            let a = rows * self.act_interval_ps;
            per_channel_max = per_channel_max.max(t.max(a));
        }
        per_channel_max + self.row_miss_ps
    }
}

/// Stateful DRAM model (open-row tracking per bank).
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    /// Open row id per (channel, bank); `u64::MAX` = closed.
    open_rows: Vec<u64>,
    /// Total bytes read/written (for energy accounting).
    bytes_accessed: u64,
    row_hits: u64,
    row_misses: u64,
}

impl Dram {
    /// Creates a DRAM with all rows closed.
    pub fn new(cfg: DramConfig) -> Self {
        let n = cfg.channels * cfg.banks_per_channel;
        Self {
            cfg,
            open_rows: vec![u64::MAX; n],
            bytes_accessed: 0,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Row hits observed so far.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row misses observed so far.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Simulates reading `bytes` starting at `addr`; returns the
    /// duration in picoseconds. Bursts interleave across channels, so
    /// the reported duration is the per-channel maximum.
    ///
    /// Evaluated in closed form — O(channels × banks) instead of one
    /// iteration per burst — which is what keeps gigabyte-scale fetch
    /// pricing (a 1 GiB FlexGen refetch is ~16M bursts) out of the
    /// serving scheduler's hot loop. The closed form is arithmetic-
    /// identical to the per-burst walk (see the `reference_access`
    /// regression test); configurations whose row size is not a
    /// multiple of the burst size fall back to the walk.
    pub fn access(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        if self.cfg.row_bytes % self.cfg.burst_bytes != 0 {
            return self.access_per_burst(addr, bytes);
        }
        self.bytes_accessed += bytes;
        let b = self.cfg.burst_bytes;
        let row_bytes = self.cfg.row_bytes;
        let channels = self.cfg.channels as u64;
        let banks = self.cfg.banks_per_channel as u64;
        let slots = channels * banks;
        let n_bursts = bytes.div_ceil(b);
        let bursts_per_row = row_bytes / b;

        // Rows visited: consecutive row ids, cycling channels as
        // `row_global % channels`. Middle rows hold exactly
        // `row_bytes / burst` bursts (the burst grid divides the row);
        // only the first and last rows are partial.
        let r_first = addr / row_bytes;
        let r_last = (addr + (n_bursts - 1) * b) / row_bytes;
        let n_rows = r_last - r_first + 1;
        let k_first = ((r_first + 1) * row_bytes - addr).div_ceil(b).min(n_bursts);

        // Per-channel burst and row counts. `count_congruent` is the
        // number of rows in [r_first, r_last] landing on the channel.
        let mut transfer_bursts = vec![0u64; self.cfg.channels];
        let mut rows_in_channel = vec![0u64; self.cfg.channels];
        for ch in 0..self.cfg.channels {
            let rows = count_congruent(r_first, r_last, channels, ch as u64);
            rows_in_channel[ch] = rows;
            transfer_bursts[ch] = rows * bursts_per_row;
        }
        transfer_bursts[(r_first % channels) as usize] -= bursts_per_row - k_first;
        if n_rows >= 2 {
            let k_last = n_bursts - k_first - (n_rows - 2) * bursts_per_row;
            transfer_bursts[(r_last % channels) as usize] -= bursts_per_row - k_last;
        }

        // Row hits can only happen on the first visit to each
        // (channel, bank) slot — consecutive row ids revisit a slot
        // only every `slots` rows, with a strictly larger row value.
        let mut hits_in_channel = vec![0u64; self.cfg.channels];
        let mut hits = 0u64;
        for r in r_first..=r_last.min(r_first + slots - 1) {
            let (slot, channel, row) = self.map_row(r);
            if self.open_rows[slot] == row {
                hits += 1;
                hits_in_channel[channel] += 1;
            }
        }
        // Within a row, every burst after the first hits the row the
        // first burst opened; cross-call hits add the pre-open rows.
        self.row_hits += hits + (n_bursts - n_rows);
        self.row_misses += n_rows - hits;
        // After the access each visited slot holds the last row that
        // touched it: the final `min(n_rows, slots)` rows, which cover
        // each visited slot exactly once.
        let update_start = if n_rows >= slots {
            r_last + 1 - slots
        } else {
            r_first
        };
        for r in update_start..=r_last {
            let (slot, _, row) = self.map_row(r);
            self.open_rows[slot] = row;
        }

        let burst_transfer = transfer_ps(b, self.cfg.channel_bytes_per_s);
        // Per channel: data-transfer time accumulates serially on the
        // bus; row activations proceed on *other banks* in parallel and
        // only bound the channel when activation work exceeds transfer
        // work (bank-level parallelism pipelines them).
        let per_channel = (0..self.cfg.channels)
            .map(|ch| {
                let t = transfer_bursts[ch] * burst_transfer;
                let a = (rows_in_channel[ch] - hits_in_channel[ch]) * self.cfg.act_interval_ps;
                t.max(a)
            })
            .max()
            .unwrap_or(0);
        // One activation latency to fill the pipeline.
        per_channel + self.cfg.row_miss_ps
    }

    /// `(slot, channel, in-bank row)` of a global row id.
    fn map_row(&self, row_global: u64) -> (usize, usize, u64) {
        let channels = self.cfg.channels as u64;
        let banks = self.cfg.banks_per_channel as u64;
        let channel = (row_global % channels) as usize;
        let bank = ((row_global / channels) % banks) as usize;
        (
            channel * self.cfg.banks_per_channel + bank,
            channel,
            row_global / (channels * banks),
        )
    }

    /// Reference per-burst walk of [`Dram::access`] — kept for exotic
    /// configurations (row size not a burst multiple) and as the
    /// regression oracle for the closed form.
    fn access_per_burst(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.bytes_accessed += bytes;
        let n_bursts = bytes.div_ceil(self.cfg.burst_bytes);
        let mut transfer_time = vec![0u64; self.cfg.channels];
        let mut activate_time = vec![0u64; self.cfg.channels];
        let burst_transfer = transfer_ps(self.cfg.burst_bytes, self.cfg.channel_bytes_per_s);
        for i in 0..n_bursts {
            let burst_addr = addr + i * self.cfg.burst_bytes;
            let row_global = burst_addr / self.cfg.row_bytes;
            let (slot, channel, row) = self.map_row(row_global);
            if self.open_rows[slot] == row {
                self.row_hits += 1;
            } else {
                self.row_misses += 1;
                self.open_rows[slot] = row;
                activate_time[channel] += self.cfg.act_interval_ps;
            }
            transfer_time[channel] += burst_transfer;
        }
        let per_channel = transfer_time
            .iter()
            .zip(&activate_time)
            .map(|(&t, &a)| t.max(a))
            .max()
            .unwrap_or(0);
        per_channel + self.cfg.row_miss_ps
    }

    /// Convenience: a fully sequential streaming read of `bytes`,
    /// starting at a fresh region.
    pub fn stream_read(&mut self, bytes: u64) -> u64 {
        // Start each stream at a distinct region so rows are cold once.
        let base = self.bytes_accessed.wrapping_mul(7919) % (1 << 40);
        self.access(base, bytes)
    }

    /// Energy (joules) for the bytes accessed so far plus background
    /// power over `busy_seconds`.
    pub fn energy_joules(&self, busy_seconds: f64) -> f64 {
        self.bytes_accessed as f64 * 8.0 * self.cfg.pj_per_bit * 1e-12
            + self.cfg.background_w * busy_seconds
    }

    /// Effective bandwidth achieved by a hypothetical streaming read of
    /// `bytes` (fresh model), bytes/s.
    pub fn streaming_bandwidth(cfg: &DramConfig, bytes: u64) -> f64 {
        let mut d = Dram::new(cfg.clone());
        let ps = d.access(0, bytes);
        bytes as f64 / (ps as f64 / 1e12)
    }

    /// Duration of scattered reads: `n` independent reads of
    /// `bytes_each` at random (cold-row) addresses.
    ///
    /// Closed form, O(1) in `n`: every request lands unaligned on cold
    /// rows, touches `1 + ceil((bursts−1)·burst/row)` consecutive rows
    /// spread round-robin over the channels, and is bounded by its
    /// busiest channel — full rows of transfer vs. pipelined
    /// activations — plus the pipeline-fill row miss. This prices a
    /// token-scattered KV gather (the InfiniGen/ReKV fetch pattern)
    /// without walking hundreds of thousands of simulated requests.
    pub fn scattered_read(&mut self, n: u64, bytes_each: u64) -> u64 {
        if n == 0 || bytes_each == 0 {
            return 0;
        }
        self.bytes_accessed += n * bytes_each;
        let b = self.cfg.burst_bytes;
        let bursts = bytes_each.div_ceil(b);
        let rows = 1 + ((bursts - 1) * b).div_ceil(self.cfg.row_bytes);
        self.row_misses += n * rows;
        self.row_hits += n * bursts.saturating_sub(rows);
        // A scattered sweep trashes the row buffers: whatever was open
        // before is gone afterwards (the per-request walk this replaces
        // evicted rows as its random addresses landed).
        self.open_rows.fill(u64::MAX);
        let rows_per_channel = rows.div_ceil(self.cfg.channels as u64);
        let burst_transfer = transfer_ps(b, self.cfg.channel_bytes_per_s);
        let transfer =
            bursts.min(rows_per_channel * (self.cfg.row_bytes / b.max(1)).max(1)) * burst_transfer;
        let activate = rows_per_channel * self.cfg.act_interval_ps;
        n * (transfer.max(activate) + self.cfg.row_miss_ps)
    }
}

/// Rows `r` in `[lo, hi]` with `r % modulus == rem`.
fn count_congruent(lo: u64, hi: u64, modulus: u64, rem: u64) -> u64 {
    // Count in [0, n) with the residue, then difference.
    let below = |n: u64| n / modulus + u64::from(n % modulus > rem);
    below(hi + 1) - below(lo)
}

/// Time for an idealised transfer at a DRAM's peak bandwidth — used
/// where only sustained bandwidth matters (weight streaming).
pub fn peak_transfer_ps(cfg: &DramConfig, bytes: u64) -> u64 {
    seconds_to_ps(bytes as f64 / cfg.peak_bytes_per_s())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_approaches_peak_bandwidth() {
        for cfg in [DramConfig::lpddr5_204gb(), DramConfig::hbm2e_1935gb()] {
            let bw = Dram::streaming_bandwidth(&cfg, 64 << 20);
            let peak = cfg.peak_bytes_per_s();
            assert!(
                bw > 0.8 * peak,
                "{}: streaming {bw:.2e} below 80% of peak {peak:.2e}",
                cfg.name
            );
            assert!(bw <= peak * 1.01, "{}: exceeded peak", cfg.name);
        }
    }

    #[test]
    fn stream_read_matches_fresh_access() {
        // The allocation-free fast path must be bit-identical to a
        // fresh stateful device streaming from address 0 — every size
        // class: sub-burst, exact burst, row straggler, one full
        // channel cycle, a full slot cycle, and bulk multi-GiB moves
        // (the tier-restore regime).
        for cfg in [
            DramConfig::lpddr5_204gb(),
            DramConfig::hbm2e_1935gb(),
            DramConfig::ddr4_cpu(),
        ] {
            let slots = cfg.channels as u64 * cfg.banks_per_channel as u64;
            let sizes = [
                1,
                cfg.burst_bytes - 1,
                cfg.burst_bytes,
                cfg.burst_bytes + 1,
                cfg.row_bytes - 1,
                cfg.row_bytes,
                cfg.row_bytes + 1,
                cfg.row_bytes * cfg.channels as u64,
                cfg.row_bytes * cfg.channels as u64 + 100,
                cfg.row_bytes * slots + 1,
                (1 << 20) + 12_345,
                1 << 28,
                (2u64 << 30) + 7,
            ];
            for bytes in sizes {
                assert_eq!(
                    cfg.stream_read_ps(bytes),
                    Dram::new(cfg.clone()).access(0, bytes),
                    "{}: stream_read_ps({bytes}) diverged",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn stream_read_of_zero_bytes_is_free() {
        assert_eq!(DramConfig::ddr4_cpu().stream_read_ps(0), 0);
    }

    #[test]
    fn closed_form_access_matches_per_burst_reference() {
        // The closed form must be arithmetic-identical to the burst
        // walk: same duration, same hit/miss counters, same open-row
        // state — including stateful back-to-back sequences that remix
        // hot rows.
        for cfg in [
            DramConfig::lpddr5_204gb(),
            DramConfig::hbm2e_1935gb(),
            DramConfig::ddr4_cpu(),
        ] {
            let mut fast = Dram::new(cfg.clone());
            let mut reference = Dram::new(cfg.clone());
            // Misaligned addresses, sub-burst sizes, row-boundary
            // stragglers, multi-row and multi-slot-cycle transfers,
            // plus exact repeats (row hits on the first slot visit).
            let sequence: [(u64, u64); 10] = [
                (0, 64),
                (0, 64),
                (1, 1),
                (2040, 100),
                (4096, 2048),
                (4096, 2048),
                (123_457, 1 << 20),
                (123_457, 1 << 20),
                (999_999_937, 40 << 20),
                (
                    7,
                    3 * cfg.row_bytes * cfg.channels as u64 * cfg.banks_per_channel as u64,
                ),
            ];
            for (addr, bytes) in sequence {
                let t_fast = fast.access(addr, bytes);
                let t_ref = reference.access_per_burst(addr, bytes);
                assert_eq!(
                    t_fast, t_ref,
                    "{}: access({addr}, {bytes}) diverged",
                    cfg.name
                );
                assert_eq!(fast.row_hits, reference.row_hits, "{}: hits", cfg.name);
                assert_eq!(
                    fast.row_misses, reference.row_misses,
                    "{}: misses",
                    cfg.name
                );
                assert_eq!(fast.bytes_accessed, reference.bytes_accessed);
                assert_eq!(
                    fast.open_rows, reference.open_rows,
                    "{}: open rows",
                    cfg.name
                );
            }
        }
    }

    proptest::proptest! {
        /// Randomised oracle: stateful sequences of accesses through
        /// the closed form must match the per-burst walk exactly —
        /// durations, hit/miss counters, and open-row state.
        #[test]
        fn closed_form_access_matches_reference_on_random_sequences(
            cfg_idx in 0usize..3,
            seq in proptest::collection::vec(
                (0u64..1 << 22, 1u64..1 << 18),
                1..8,
            ),
        ) {
            let cfg = [
                DramConfig::lpddr5_204gb(),
                DramConfig::hbm2e_1935gb(),
                DramConfig::ddr4_cpu(),
            ][cfg_idx]
                .clone();
            let mut fast = Dram::new(cfg.clone());
            let mut reference = Dram::new(cfg);
            for &(addr, bytes) in &seq {
                let t_fast = fast.access(addr, bytes);
                let t_ref = reference.access_per_burst(addr, bytes);
                proptest::prop_assert_eq!(t_fast, t_ref, "access({}, {})", addr, bytes);
                proptest::prop_assert_eq!(fast.row_hits, reference.row_hits);
                proptest::prop_assert_eq!(fast.row_misses, reference.row_misses);
                proptest::prop_assert_eq!(fast.bytes_accessed, reference.bytes_accessed);
                proptest::prop_assert_eq!(&fast.open_rows, &reference.open_rows);
            }
        }
    }

    #[test]
    fn scattered_reads_are_slower_than_streaming() {
        let cfg = DramConfig::lpddr5_204gb();
        let bytes = 4u64 << 20;
        let mut d1 = Dram::new(cfg.clone());
        let t_stream = d1.access(0, bytes);
        let mut d2 = Dram::new(cfg);
        let t_scatter = d2.scattered_read(bytes / 256, 256);
        assert!(
            t_scatter > 2 * t_stream,
            "scatter {t_scatter} not clearly slower than stream {t_stream}"
        );
    }

    #[test]
    fn row_hits_dominate_sequential_access() {
        let cfg = DramConfig::lpddr5_204gb();
        let mut d = Dram::new(cfg);
        d.access(0, 1 << 20);
        assert!(d.row_hits() > 10 * d.row_misses());
    }

    #[test]
    fn zero_byte_access_is_free() {
        let mut d = Dram::new(DramConfig::lpddr5_204gb());
        assert_eq!(d.access(0, 0), 0);
    }

    #[test]
    fn energy_scales_with_bytes() {
        let cfg = DramConfig::lpddr5_204gb();
        let mut d = Dram::new(cfg);
        d.access(0, 1 << 20);
        let e1 = d.energy_joules(0.0);
        d.access(1 << 30, 1 << 20);
        let e2 = d.energy_joules(0.0);
        assert!((e2 / e1 - 2.0).abs() < 0.01);
        // 1 MiB at 4 pJ/bit ≈ 33.6 µJ.
        assert!((e1 - 1048576.0 * 8.0 * 4.0e-12).abs() / e1 < 1e-9);
    }

    #[test]
    fn hbm_is_faster_than_lpddr() {
        let bytes = 16u64 << 20;
        let t_lp = Dram::new(DramConfig::lpddr5_204gb()).access(0, bytes);
        let t_hbm = Dram::new(DramConfig::hbm2e_1935gb()).access(0, bytes);
        assert!(t_hbm * 5 < t_lp, "HBM2e should be ~9.4x faster");
    }
}
