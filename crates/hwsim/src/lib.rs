//! # vrex-hwsim
//!
//! Cycle-approximate hardware substrates for the V-Rex evaluation.
//!
//! The paper evaluates with a custom cycle-level simulator integrating
//! DRAMSim3 (DRAM), MQSim (SSD), measured PCIe bandwidths, and an RTL
//! implementation of the V-Rex core. This crate rebuilds each substrate
//! at the fidelity the evaluation actually exercises (DESIGN.md §1):
//!
//! * [`time`] — picosecond simulation time and cycle conversions;
//! * [`engine`] — a dependency-graph resource scheduler producing end
//!   times and busy-interval traces (Fig. 17's bandwidth timeline);
//! * [`dram`] — bank/row-state DRAM model with LPDDR5 / HBM2e / DDR4
//!   presets (bandwidth, row locality, pJ/bit energy);
//! * [`ssd`] — multi-channel NVMe flash model (page reads, channel
//!   striping, scattered-vs-contiguous efficiency);
//! * [`pcie`] — PCIe link with per-TLP overhead, so transfer efficiency
//!   depends on chunk size (the KVMU's cluster-contiguous win);
//! * [`interconnect`] — device-to-device NVLink / PCIe-switch fabric:
//!   per-device ports as named [`engine`] resources, priced through the
//!   same link math as [`pcie`];
//! * [`gpu`] — roofline GPU model with kernel-launch and
//!   irregular-operation penalties (AGX Orin / A100 presets);
//! * [`vrexunits`] — cycle models of the V-Rex core's DPE, VPE, HCU and
//!   WTU, matching the paper's per-core 6.66 TFLOPS;
//! * [`kvmu`] — the functional KV-cache management unit (hierarchical
//!   residency + cluster-contiguous mapping + transaction coalescing);
//! * [`tier`] — the HBM → host-DRAM → SSD memory-tier topology and
//!   bulk-migration pricing behind the tiered serving path;
//! * [`area_power`] — Table III area/power constants and composition;
//! * [`energy`] — per-component energy accounting;
//! * [`roofline`] — roofline-analysis helpers (Fig. 18).

#![warn(missing_docs)]

pub mod area_power;
pub mod dram;
pub mod energy;
pub mod engine;
pub mod gpu;
pub mod interconnect;
pub mod kvmu;
pub mod pcie;
pub mod roofline;
pub mod ssd;
pub mod tier;
pub mod time;
pub mod vrexunits;

pub use energy::EnergyMeter;
pub use engine::{Engine, ResourceId, TaskId};
pub use interconnect::{CopySpan, Interconnect, InterconnectConfig};
pub use tier::{MemTier, TierCapacities, TierPath};
pub use time::{cycles_to_ps, ps_to_seconds, seconds_to_ps, PS_PER_SECOND};
