//! Multi-queue NVMe SSD model (MQSim substitute).
//!
//! The edge platform offloads its KV cache to an M.2 NVMe SSD (Kioxia
//! BG6-class in the paper). What the evaluation needs from MQSim is the
//! behaviour gap between *contiguous* reads (pages stripe across
//! channels and dies, pipelining flash-array reads with channel
//! transfers) and *scattered* small reads (every request pays a full
//! page read for a fraction of a page of useful data). That gap is why
//! the KVMU's cluster-contiguous memory mapping matters.

use crate::time::transfer_ps;

/// Static SSD configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Flash channels.
    pub channels: usize,
    /// Dies per channel.
    pub dies_per_channel: usize,
    /// Flash page size in bytes.
    pub page_bytes: u64,
    /// Flash-array page read time (ps).
    pub page_read_ps: u64,
    /// Per-channel transfer bandwidth (bytes/s).
    pub channel_bytes_per_s: f64,
    /// Usable drive capacity (bytes) — the spill budget the tiered
    /// serving path may fill with cold KV.
    pub capacity_bytes: u64,
    /// Active power (W) while serving I/O.
    pub active_w: f64,
    /// Idle power (W).
    pub idle_w: f64,
}

impl SsdConfig {
    /// Kioxia BG6-class M.2 NVMe (PCIe 4.0 ×4 device; behind the AGX's
    /// PCIe 3.0 ×4 the link, not the drive, limits at ~3.5 GB/s).
    pub fn bg6_class() -> Self {
        Self {
            name: "BG6-class NVMe",
            channels: 4,
            dies_per_channel: 4,
            page_bytes: 16 * 1024,
            page_read_ps: 50_000_000, // 50 µs tR
            channel_bytes_per_s: 1.2e9,
            capacity_bytes: 512u64 << 30,
            active_w: 4.1,
            idle_w: 0.3,
        }
    }

    /// Peak sequential read bandwidth (bytes/s), channel-transfer
    /// limited.
    pub fn peak_bytes_per_s(&self) -> f64 {
        self.channel_bytes_per_s * self.channels as f64
    }

    /// Duration (ps) of a contiguous read of `bytes` on an otherwise
    /// idle drive — exactly [`Ssd::read_contiguous`] on a fresh model,
    /// without constructing the stateful wrapper. Tier-migration
    /// pricing calls this per batch member, so it must stay
    /// allocation-free; the `stream_read_matches_fresh_ssd` oracle
    /// test pins the equivalence.
    pub fn stream_read_ps(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let pages = bytes.div_ceil(self.page_bytes);
        let n_dies = (self.channels * self.dies_per_channel) as u64;
        let pages_per_die = pages.div_ceil(n_dies);
        let array_ps = pages_per_die * self.page_read_ps;
        let pages_per_channel = pages.div_ceil(self.channels as u64);
        let transfer = transfer_ps(
            pages_per_channel * self.page_bytes,
            self.channel_bytes_per_s,
        );
        array_ps.max(transfer) + self.page_read_ps
    }

    /// Duration (ps) of `n_requests` scattered reads of `bytes_each`
    /// on an otherwise idle drive — [`Ssd::read_scattered`] on a fresh
    /// model, allocation-free (see [`Self::stream_read_ps`]).
    pub fn scattered_read_ps(&self, n_requests: u64, bytes_each: u64) -> u64 {
        if n_requests == 0 || bytes_each == 0 {
            return 0;
        }
        let pages_per_req = bytes_each.div_ceil(self.page_bytes);
        let total_pages = n_requests * pages_per_req;
        let n_dies = (self.channels * self.dies_per_channel) as u64;
        let pages_per_die = total_pages.div_ceil(n_dies);
        let array_ps = pages_per_die * self.page_read_ps;
        let pages_per_channel = total_pages.div_ceil(self.channels as u64);
        let transfer = transfer_ps(
            pages_per_channel * self.page_bytes,
            self.channel_bytes_per_s,
        );
        array_ps.max(transfer) + self.page_read_ps
    }
}

/// Stateless timing model (queueing is computed per request batch).
#[derive(Debug, Clone)]
pub struct Ssd {
    cfg: SsdConfig,
    bytes_read: u64,
    busy_ps: u64,
}

impl Ssd {
    /// Creates the model.
    pub fn new(cfg: SsdConfig) -> Self {
        Self {
            cfg,
            bytes_read: 0,
            busy_ps: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Duration (ps) of a contiguous read of `bytes`.
    ///
    /// Pages stripe round-robin over all channels and dies; die reads
    /// pipeline with channel transfers, so large reads are limited by
    /// the slower of aggregate flash-array throughput and channel
    /// bandwidth, plus one page-read latency to fill the pipeline.
    pub fn read_contiguous(&mut self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.bytes_read += bytes;
        let pages = bytes.div_ceil(self.cfg.page_bytes);
        let n_dies = (self.cfg.channels * self.cfg.dies_per_channel) as u64;
        // Flash array: each die reads its share of pages serially.
        let pages_per_die = pages.div_ceil(n_dies);
        let array_ps = pages_per_die * self.cfg.page_read_ps;
        // Channel transfer: per-channel share of the bytes.
        let pages_per_channel = pages.div_ceil(self.cfg.channels as u64);
        let transfer = transfer_ps(
            pages_per_channel * self.cfg.page_bytes,
            self.cfg.channel_bytes_per_s,
        );
        // Pipelined: max of the two stages + one page latency fill.
        let t = array_ps.max(transfer) + self.cfg.page_read_ps;
        self.busy_ps += t;
        t
    }

    /// Duration (ps) of `n_requests` scattered reads of `bytes_each`.
    ///
    /// Each request touches distinct random pages: a request smaller
    /// than a page still occupies a die for a full page read and the
    /// channel for a full page transfer. Requests queue across dies
    /// (multi-queue parallelism), so the duration is the per-die serial
    /// time of its share of requests.
    pub fn read_scattered(&mut self, n_requests: u64, bytes_each: u64) -> u64 {
        if n_requests == 0 || bytes_each == 0 {
            return 0;
        }
        self.bytes_read += n_requests * bytes_each;
        let pages_per_req = bytes_each.div_ceil(self.cfg.page_bytes);
        let total_pages = n_requests * pages_per_req;
        let n_dies = (self.cfg.channels * self.cfg.dies_per_channel) as u64;
        let pages_per_die = total_pages.div_ceil(n_dies);
        let array_ps = pages_per_die * self.cfg.page_read_ps;
        let pages_per_channel = total_pages.div_ceil(self.cfg.channels as u64);
        let transfer = transfer_ps(
            pages_per_channel * self.cfg.page_bytes,
            self.cfg.channel_bytes_per_s,
        );
        let t = array_ps.max(transfer) + self.cfg.page_read_ps;
        self.busy_ps += t;
        t
    }

    /// Useful-byte efficiency of scattered reads of `bytes_each`
    /// (1.0 when requests are page-aligned multiples).
    pub fn scattered_efficiency(&self, bytes_each: u64) -> f64 {
        let pages = bytes_each.div_ceil(self.cfg.page_bytes);
        bytes_each as f64 / (pages * self.cfg.page_bytes) as f64
    }

    /// Energy (joules) given total elapsed wall time (s): active power
    /// over busy time, idle power over the rest.
    pub fn energy_joules(&self, wall_seconds: f64) -> f64 {
        // vrex-lint: allow(float-time) — report boundary: busy ps becomes seconds for energy accounting only; nothing feeds back into simulation time.
        let busy_s = self.busy_ps as f64 / 1e12;
        let idle_s = (wall_seconds - busy_s).max(0.0);
        self.cfg.active_w * busy_s + self.cfg.idle_w * idle_s
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_read_matches_fresh_ssd() {
        let cfg = SsdConfig::bg6_class();
        for bytes in [1u64, 4096, 16 << 10, (16 << 10) + 1, 1 << 20, 1 << 30] {
            assert_eq!(
                cfg.stream_read_ps(bytes),
                Ssd::new(cfg.clone()).read_contiguous(bytes),
                "contiguous {bytes}"
            );
        }
        for (n, each) in [(1u64, 512u64), (7, 4096), (1000, 16 << 10), (64, 100)] {
            assert_eq!(
                cfg.scattered_read_ps(n, each),
                Ssd::new(cfg.clone()).read_scattered(n, each),
                "scattered {n}x{each}"
            );
        }
        assert_eq!(cfg.stream_read_ps(0), 0);
        assert_eq!(cfg.scattered_read_ps(0, 4096), 0);
    }

    #[test]
    fn large_contiguous_read_achieves_near_peak() {
        let cfg = SsdConfig::bg6_class();
        let mut ssd = Ssd::new(cfg.clone());
        let bytes = 1u64 << 30;
        let t = ssd.read_contiguous(bytes);
        let bw = bytes as f64 / (t as f64 / 1e12);
        assert!(
            bw > 0.6 * cfg.peak_bytes_per_s(),
            "sequential bw {bw:.2e} too far below peak"
        );
    }

    #[test]
    fn scattered_small_reads_waste_bandwidth() {
        let cfg = SsdConfig::bg6_class();
        let useful = 4u64 << 20;
        let mut a = Ssd::new(cfg.clone());
        let t_seq = a.read_contiguous(useful);
        let mut b = Ssd::new(cfg);
        // 512-byte scattered requests: 1/32 page efficiency.
        let t_scat = b.read_scattered(useful / 512, 512);
        assert!(
            t_scat > 10 * t_seq,
            "scattered {t_scat} should be far slower than contiguous {t_seq}"
        );
    }

    #[test]
    fn scattered_efficiency_formula() {
        let ssd = Ssd::new(SsdConfig::bg6_class());
        assert!((ssd.scattered_efficiency(16 * 1024) - 1.0).abs() < 1e-12);
        assert!((ssd.scattered_efficiency(512) - 512.0 / 16384.0).abs() < 1e-12);
    }

    #[test]
    fn zero_reads_are_free() {
        let mut ssd = Ssd::new(SsdConfig::bg6_class());
        assert_eq!(ssd.read_contiguous(0), 0);
        assert_eq!(ssd.read_scattered(0, 4096), 0);
    }

    #[test]
    fn energy_accounts_busy_and_idle() {
        let cfg = SsdConfig::bg6_class();
        let mut ssd = Ssd::new(cfg.clone());
        ssd.read_contiguous(256 << 20);
        let busy_s = ssd.busy_ps as f64 / 1e12;
        let e = ssd.energy_joules(busy_s + 1.0);
        let expected = cfg.active_w * busy_s + cfg.idle_w * 1.0;
        assert!((e - expected).abs() < 1e-9);
    }

    #[test]
    fn scattered_zero_request_count_and_zero_bytes_are_free() {
        let mut ssd = Ssd::new(SsdConfig::bg6_class());
        assert_eq!(ssd.read_scattered(0, 4096), 0);
        assert_eq!(ssd.read_scattered(16, 0), 0);
        assert_eq!(ssd.bytes_read(), 0, "free reads must not count bytes");
    }

    #[test]
    fn scattered_single_request_pays_one_page_read_plus_transfer() {
        // One sub-page request: 1 page on 1 die (array = 1·tR), 1 page
        // over 1 channel, plus the pipeline-fill tR.
        let cfg = SsdConfig::bg6_class();
        let mut ssd = Ssd::new(cfg.clone());
        let t = ssd.read_scattered(1, 512);
        let transfer = transfer_ps(cfg.page_bytes, cfg.channel_bytes_per_s);
        assert_eq!(t, cfg.page_read_ps.max(transfer) + cfg.page_read_ps);
        assert_eq!(ssd.bytes_read(), 512);
    }

    #[test]
    fn scattered_request_larger_than_a_page_spans_pages() {
        // A request of 2.5 pages rounds up to 3 pages; 16 requests of
        // 3 pages spread 48 pages over 16 dies → 3 serial tRs.
        let cfg = SsdConfig::bg6_class();
        let mut ssd = Ssd::new(cfg.clone());
        let bytes_each = cfg.page_bytes * 5 / 2;
        let t = ssd.read_scattered(16, bytes_each);
        let pages_per_channel = 48u64.div_ceil(cfg.channels as u64);
        let transfer = transfer_ps(pages_per_channel * cfg.page_bytes, cfg.channel_bytes_per_s);
        assert_eq!(t, (3 * cfg.page_read_ps).max(transfer) + cfg.page_read_ps);
    }

    #[test]
    fn small_read_pays_page_latency() {
        let cfg = SsdConfig::bg6_class();
        let mut ssd = Ssd::new(cfg.clone());
        let t = ssd.read_contiguous(512);
        assert!(t >= cfg.page_read_ps, "must pay at least one tR");
    }
}
