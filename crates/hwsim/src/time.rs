//! Simulation time: integer picoseconds.
//!
//! The definitions moved down to [`vrex_core::time`] so the traffic
//! generator in `vrex-workload` can stamp integer-ps arrival times
//! without depending on the hardware models; this module re-exports
//! them under their historical `vrex_hwsim::time` path.

pub use vrex_core::time::{
    cycles_to_ps, ps_to_ms, ps_to_seconds, seconds_to_ps, transfer_ps, PS_PER_SECOND,
};
