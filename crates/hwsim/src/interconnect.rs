//! Device-to-device interconnect model (NVLink / PCIe-switch fabrics).
//!
//! Scale-out serving shards a session fleet across several accelerator
//! devices; rebalancing then moves resident KV blocks *between* devices
//! over NVLink or a PCIe switch. Both fabrics behave like the storage
//! links the simulator already models: a fixed raw bandwidth degraded
//! by per-packet framing and per-descriptor setup cost. So the fabric
//! link is priced through the exact same math as [`crate::pcie`] —
//! [`PcieConfig::transfer_ps`] — with NVLink-flavoured constants, and
//! each device's fabric port becomes a named [`Engine`] resource whose
//! contention is resolved by the resource timeline, not by a formula.
//!
//! Cross-device KV migrations are background work: a copy appends to
//! the *source* port after everything already queued there (the
//! lowest-priority discipline the tiered-memory writeback path uses),
//! and mirrors onto the destination port so both directions of the
//! fabric account the bytes.

use crate::engine::{Engine, ResourceId};
use crate::pcie::PcieConfig;

/// Static configuration of a device-to-device fabric.
///
/// The per-device link reuses [`PcieConfig`] so transfer pricing is the
/// proven link math: `transfer_ps` charges wire time at raw bandwidth
/// plus per-packet framing plus per-DMA-descriptor setup.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectConfig {
    /// Human-readable fabric name (e.g. `NVLink4`).
    pub name: &'static str,
    /// Per-device port: raw bandwidth, framing overhead, DMA setup.
    pub link: PcieConfig,
}

impl InterconnectConfig {
    /// NVLink 4 — 18 links × 25 GB/s = 450 GB/s per device port, with
    /// 16 B of flit framing per 256 B payload and a 0.1 µs copy-engine
    /// descriptor setup per DMA chunk.
    pub fn nvlink4() -> Self {
        Self {
            name: "NVLink4",
            link: PcieConfig {
                name: "NVLink4",
                lanes: 18,
                lane_bytes_per_s: 25.0e9,
                max_payload: 256,
                tlp_overhead: 16,
                dma_setup_ps: 100_000,
                w_per_lane: 1.3,
            },
        }
    }

    /// PCIe 4.0 ×16 switch fabric — every device port is the same
    /// 32 GB/s link the server platform uses for host memory.
    pub fn pcie_switch_gen4_x16() -> Self {
        Self {
            name: "PCIeSw4.0x16",
            link: PcieConfig::gen4_x16(),
        }
    }

    /// Duration (ps) of moving `total_bytes` across one fabric port in
    /// DMA chunks of `chunk_bytes`. Delegates to the PCIe link math.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes == 0` while `total_bytes > 0`.
    pub fn transfer_ps(&self, total_bytes: u64, chunk_bytes: u64) -> u64 {
        self.link.transfer_ps(total_bytes, chunk_bytes)
    }
}

/// The scheduled endpoints of one device-to-device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopySpan {
    /// Instant the copy occupies the source port from.
    pub start_ps: u64,
    /// Instant both ports are released and the bytes are usable at the
    /// destination.
    pub end_ps: u64,
}

/// Per-device fabric ports installed as named [`Engine`] resources
/// (`<fabric>-d<idx>`), so cross-device copies contend on the same
/// timeline as every other priced transfer.
#[derive(Debug)]
pub struct Interconnect {
    cfg: InterconnectConfig,
    ports: Vec<ResourceId>,
}

impl Interconnect {
    /// Registers one fabric port per device on `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn install(engine: &mut Engine, cfg: InterconnectConfig, devices: usize) -> Self {
        assert!(devices >= 1, "a fabric needs at least one device port");
        let ports = (0..devices)
            .map(|d| engine.add_resource(&format!("{}-d{d}", cfg.name)))
            .collect();
        Self { cfg, ports }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &InterconnectConfig {
        &self.cfg
    }

    /// Number of device ports.
    pub fn devices(&self) -> usize {
        self.ports.len()
    }

    /// The [`Engine`] resource backing device `d`'s fabric port.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn port(&self, d: usize) -> ResourceId {
        self.ports[d]
    }

    /// Schedules a `from → to` copy of `bytes` decided at `now_ps`, as
    /// lowest-priority work: the egress leg appends to the source port
    /// at `max(now, port frontier)` — behind everything already queued,
    /// exactly the discipline background tier writebacks use — and the
    /// ingress leg mirrors the same window onto the destination port.
    /// Returns the copy's span; `end_ps` is when the destination copy
    /// of the KV block becomes usable.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`, if either index is out of range, or if
    /// `chunk_bytes == 0` while `bytes > 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn copy(
        &self,
        engine: &mut Engine,
        from: usize,
        to: usize,
        bytes: u64,
        chunk_bytes: u64,
        now_ps: u64,
        tag: &str,
    ) -> CopySpan {
        assert_ne!(from, to, "cross-device copy must change devices");
        let dur = self.cfg.transfer_ps(bytes, chunk_bytes);
        let src = self.port(from);
        let earliest = now_ps.max(engine.next_free(src));
        let egress = engine.schedule_after(src, earliest, dur, &[], tag, bytes);
        let ingress = engine.reserve_after(self.port(to), engine.start_of(egress), dur, tag, bytes);
        CopySpan {
            start_ps: engine.start_of(egress),
            end_ps: engine.end_of(egress).max(engine.end_of(ingress)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::seconds_to_ps;

    #[test]
    fn nvlink_prices_through_the_pcie_link_math() {
        // 1 MiB in 256 KiB chunks: 4 chunks, 4096 payload TLPs + 4
        // boundary TLPs, 16 B framing each, 450 GB/s raw, 0.1 µs setup
        // per chunk — identical formula to PcieConfig::transfer_ps.
        let ic = InterconnectConfig::nvlink4();
        let bytes = 1u64 << 20;
        let chunk = 256u64 << 10;
        let tlps = bytes.div_ceil(256) + 4;
        let wire = bytes + tlps * 16;
        let expected = seconds_to_ps(wire as f64 / 450.0e9) + 4 * 100_000;
        assert_eq!(ic.transfer_ps(bytes, chunk), expected);
        assert_eq!(
            ic.transfer_ps(bytes, chunk),
            ic.link.transfer_ps(bytes, chunk)
        );
    }

    #[test]
    fn ports_are_named_engine_resources() {
        let mut e = Engine::new();
        let ic = Interconnect::install(&mut e, InterconnectConfig::nvlink4(), 4);
        assert_eq!(ic.devices(), 4);
        assert_eq!(e.resource_name(ic.port(0)), "NVLink4-d0");
        assert_eq!(e.resource_name(ic.port(3)), "NVLink4-d3");
    }

    #[test]
    fn copy_occupies_both_ports_for_the_full_window() {
        let mut e = Engine::new();
        let ic = Interconnect::install(&mut e, InterconnectConfig::pcie_switch_gen4_x16(), 2);
        let bytes = 4u64 << 20;
        let chunk = 256u64 << 10;
        let span = ic.copy(&mut e, 0, 1, bytes, chunk, 0, "migrate");
        let dur = ic.config().transfer_ps(bytes, chunk);
        assert_eq!(
            span,
            CopySpan {
                start_ps: 0,
                end_ps: dur
            }
        );
        assert_eq!(e.busy_time(ic.port(0)), dur);
        assert_eq!(e.busy_time(ic.port(1)), dur);
    }

    #[test]
    fn copy_decided_now_lands_behind_queued_work() {
        let mut e = Engine::new();
        let ic = Interconnect::install(&mut e, InterconnectConfig::nvlink4(), 2);
        // Pre-queue 1 ms of traffic on the source port.
        let busy = e.schedule(ic.port(0), 1_000_000_000, &[], "prior", 0);
        let span = ic.copy(&mut e, 0, 1, 1 << 20, 256 << 10, 0, "migrate");
        assert_eq!(span.start_ps, e.end_of(busy));
    }

    #[test]
    #[should_panic(expected = "must change devices")]
    fn self_copy_is_rejected() {
        let mut e = Engine::new();
        let ic = Interconnect::install(&mut e, InterconnectConfig::nvlink4(), 2);
        let _ = ic.copy(&mut e, 1, 1, 4096, 4096, 0, "migrate");
    }
}
