//! Memory-tier topology and migration pricing (HBM → host DRAM → SSD).
//!
//! The serving path outgrows device memory long before it outgrows the
//! box: a 32K-token Llama-3 8B stream pins 4 GiB of KV, so a fleet of
//! them exhausts HBM while host DRAM and the NVMe drive sit idle. This
//! module prices *migrations* between the three tiers the evaluation
//! platforms actually have:
//!
//! * **Device** — HBM2e / LPDDR5 behind the compute engine;
//! * **Host** — CPU DDR4 across the PCIe link (server platforms);
//! * **Ssd** — the NVMe drive, also across PCIe (edge platforms).
//!
//! A migration streams bulk KV blocks, so every leg is priced with the
//! existing substrate models ([`PcieConfig`], [`SsdConfig`],
//! [`DramConfig`] — via their allocation-free fresh-device closed
//! forms) and the legs pipeline: the slowest stage bounds the
//! transfer, exactly like the per-step fetch path in `vrex-system`.
//! Spill (down) and restore (up) use the same timing — flash-program
//! asymmetry is deliberately ignored because spills run off the
//! critical path (asynchronous writeback behind compute) while
//! restores are latency-critical.
//!
//! Capacity bookkeeping ([`TierCapacities`]) and pricing ([`TierPath`])
//! live here in `vrex-hwsim`; *policy* — who gets spilled, when to
//! prefetch — lives in `vrex_system::memory`, next to the scheduler
//! that exercises it.

use crate::dram::DramConfig;
use crate::pcie::PcieConfig;
use crate::ssd::SsdConfig;

/// One level of the KV-cache memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemTier {
    /// Device memory (HBM2e / LPDDR5): zero-cost hits.
    Device,
    /// Host CPU DRAM across the PCIe link.
    Host,
    /// NVMe flash across the PCIe link.
    Ssd,
}

impl MemTier {
    /// All tiers, fastest first.
    pub const ALL: [MemTier; 3] = [MemTier::Device, MemTier::Host, MemTier::Ssd];

    /// Display label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            MemTier::Device => "device",
            MemTier::Host => "host-dram",
            MemTier::Ssd => "ssd",
        }
    }
}

impl std::fmt::Display for MemTier {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.write_str(self.label())
    }
}

/// Byte budgets per tier. A zero budget means the tier is absent on the
/// platform (the AGX has no discrete host tier; the A100 box in Table I
/// has no NVMe spill target unless one is added).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCapacities {
    /// Device bytes available to KV (capacity minus weights/headroom).
    pub device_bytes: u64,
    /// Host-DRAM bytes available to KV.
    pub host_bytes: u64,
    /// SSD bytes available to KV.
    pub ssd_bytes: u64,
}

impl TierCapacities {
    /// Budget of one tier.
    pub fn capacity(&self, tier: MemTier) -> u64 {
        match tier {
            MemTier::Device => self.device_bytes,
            MemTier::Host => self.host_bytes,
            MemTier::Ssd => self.ssd_bytes,
        }
    }

    /// Total bytes across every tier.
    pub fn total_bytes(&self) -> u64 {
        self.device_bytes + self.host_bytes + self.ssd_bytes
    }

    /// Whether the tier exists (has a nonzero budget).
    pub fn has(&self, tier: MemTier) -> bool {
        self.capacity(tier) > 0
    }

    /// The tiers below `tier`, nearest first, skipping absent ones.
    pub fn below(&self, tier: MemTier) -> impl Iterator<Item = MemTier> + '_ {
        MemTier::ALL
            .into_iter()
            .filter(move |&t| t > tier && self.has(t))
    }

    /// Bytes a resident demand of `resident_bytes` forces below the
    /// device tier (zero while everything fits in device memory). This
    /// is the *restore debt* of a placement: spilled bytes that must
    /// cross the link again before the streams holding them can step,
    /// which tier-pressure-aware placement minimizes per device.
    pub fn device_overflow_bytes(&self, resident_bytes: u64) -> u64 {
        resident_bytes.saturating_sub(self.device_bytes)
    }
}

/// The links connecting the tiers, used to price migrations.
///
/// `host_dram` / `ssd` may be `None` when the platform lacks the tier;
/// pricing a migration through a missing tier panics (the capacities
/// guard should have kept policy code away from it).
#[derive(Debug, Clone, PartialEq)]
pub struct TierPath {
    /// The PCIe link every off-device byte crosses.
    pub pcie: PcieConfig,
    /// Host CPU DRAM (server offload target), if present.
    pub host_dram: Option<DramConfig>,
    /// NVMe drive (edge offload target), if present.
    pub ssd: Option<SsdConfig>,
}

impl TierPath {
    /// Duration (ps) of migrating `bytes` from `from` to `to`, streamed
    /// in DMA chunks of `chunk_bytes`. Every stage the transfer crosses
    /// (PCIe link, host DRAM, SSD flash array) runs as a pipeline, so
    /// the slowest stage bounds the duration. Zero bytes or a same-tier
    /// move are free.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint tier is not configured on this path, or if
    /// `chunk_bytes == 0` while `bytes > 0`.
    pub fn migrate_ps(&self, from: MemTier, to: MemTier, bytes: u64, chunk_bytes: u64) -> u64 {
        if bytes == 0 || from == to {
            return 0;
        }
        // The slowest pipeline stage bounds the move. Stage times come
        // from the allocation-free fresh-device closed forms — the
        // scheduler prices a migration per tier-missing batch member,
        // so this is a hot leaf.
        let mut slowest = self.pcie.transfer_ps(bytes, chunk_bytes);
        for tier in [from, to] {
            let stage = match tier {
                MemTier::Device => 0, // device DRAM is priced inside the step model
                MemTier::Host => self
                    .host_dram
                    .as_ref()
                    // vrex-lint: allow(panicking-seam) — pricing a tier the path was not built with is a platform-construction bug; stop loudly.
                    .expect("host tier not configured on this path")
                    .stream_read_ps(bytes),
                MemTier::Ssd => {
                    let cfg = self
                        .ssd
                        .as_ref()
                        // vrex-lint: allow(panicking-seam) — same construction invariant as the host tier above.
                        .expect("ssd tier not configured on this path");
                    // Bulk migrations stream contiguous blocks; small
                    // chunks degenerate into scattered page reads.
                    if chunk_bytes >= 64 * 1024 {
                        cfg.stream_read_ps(bytes)
                    } else {
                        cfg.scattered_read_ps(bytes.div_ceil(chunk_bytes), chunk_bytes)
                    }
                }
            };
            slowest = slowest.max(stage);
        }
        slowest
    }

    /// Duration (ps) of restoring `host_bytes` from host DRAM and
    /// `ssd_bytes` from the SSD up to the device. Both sources share
    /// the one PCIe link, so the two migrations serialise.
    pub fn restore_ps(&self, host_bytes: u64, ssd_bytes: u64, chunk_bytes: u64) -> u64 {
        self.migrate_ps(MemTier::Host, MemTier::Device, host_bytes, chunk_bytes)
            + self.migrate_ps(MemTier::Ssd, MemTier::Device, ssd_bytes, chunk_bytes)
    }

    /// Duration (ps) of migrating a contiguous run of `clusters`
    /// hash clusters of `cluster_bytes` each between two tiers. The
    /// run streams as one transfer DMA-chunked at the cluster size —
    /// the cluster-granular cold-data path in `vrex_system::memory`
    /// moves coalesced cluster runs, so its chunk *is* the cluster.
    pub fn cluster_run_ps(
        &self,
        from: MemTier,
        to: MemTier,
        clusters: u64,
        cluster_bytes: u64,
    ) -> u64 {
        self.migrate_ps(from, to, clusters * cluster_bytes, cluster_bytes)
    }

    /// Sustained migration bandwidth (bytes/s) between two tiers at a
    /// chunk size, measured over a 64 MiB transfer.
    pub fn bandwidth_bytes_per_s(&self, from: MemTier, to: MemTier, chunk_bytes: u64) -> f64 {
        let total = 64u64 << 20;
        let ps = self.migrate_ps(from, to, total, chunk_bytes);
        if ps == 0 {
            f64::INFINITY
        } else {
            total as f64 / (ps as f64 / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::seconds_to_ps;

    fn server_path() -> TierPath {
        TierPath {
            pcie: PcieConfig::gen4_x16(),
            host_dram: Some(DramConfig::ddr4_cpu()),
            ssd: Some(SsdConfig::bg6_class()),
        }
    }

    fn edge_path() -> TierPath {
        TierPath {
            pcie: PcieConfig::gen3_x4(),
            host_dram: None,
            ssd: Some(SsdConfig::bg6_class()),
        }
    }

    #[test]
    fn zero_bytes_and_same_tier_moves_are_free() {
        let p = server_path();
        assert_eq!(p.migrate_ps(MemTier::Host, MemTier::Device, 0, 1 << 20), 0);
        assert_eq!(
            p.migrate_ps(MemTier::Host, MemTier::Host, 1 << 30, 1 << 20),
            0
        );
    }

    #[test]
    fn host_restore_is_pcie_bound_hand_computed_oracle() {
        // Host → device, 1 MiB in 256 KiB chunks on PCIe 4.0 ×16
        // (32 GB/s raw, 256 B max payload, 24 B TLP overhead, 0.4 µs
        // per DMA descriptor). By hand:
        //   chunks = 4;  TLPs = 1 MiB/256 + 4 = 4096 + 4 = 4100
        //   wire bytes = 1 MiB + 4100·24 = 1_048_576 + 98_400 = 1_146_976
        //   wire ps    = wire_bytes / 32e9 · 1e12
        //   total      = wire ps + 4 · 400_000 ps
        // DDR4 streams 1 MiB at ~102 GB/s — faster than the link, so
        // the pipelined max is the PCIe leg exactly.
        let p = server_path();
        let bytes: u64 = 1 << 20;
        let chunk: u64 = 256 << 10;
        let tlps = bytes / 256 + 4;
        let wire_bytes = bytes + tlps * 24;
        let expected = seconds_to_ps(wire_bytes as f64 / 32.0e9) + 4 * 400_000;
        assert_eq!(
            p.migrate_ps(MemTier::Host, MemTier::Device, bytes, chunk),
            expected
        );
    }

    #[test]
    fn cluster_run_is_pcie_bound_hand_computed_oracle() {
        // A coalesced run of 8 × 128 KiB ReSV clusters, host → device
        // on PCIe 4.0 ×16, DMA-chunked at the cluster size. By hand:
        //   bytes  = 8·131_072 = 1_048_576;  chunks = 8
        //   TLPs   = 1_048_576/256 + 8 = 4104
        //   wire   = 1_048_576 + 4104·24 = 1_147_072 B
        //   total  = wire/32e9·1e12 + 8·400_000 ps
        let p = server_path();
        let cluster: u64 = 128 << 10;
        let bytes = 8 * cluster;
        let tlps = bytes / 256 + 8;
        let wire_bytes = bytes + tlps * 24;
        let expected = seconds_to_ps(wire_bytes as f64 / 32.0e9) + 8 * 400_000;
        assert_eq!(
            p.cluster_run_ps(MemTier::Host, MemTier::Device, 8, cluster),
            expected
        );
        // One run of n clusters is exactly one chunked migration.
        assert_eq!(
            p.cluster_run_ps(MemTier::Host, MemTier::Device, 8, cluster),
            p.migrate_ps(MemTier::Host, MemTier::Device, bytes, cluster)
        );
        assert_eq!(
            p.cluster_run_ps(MemTier::Ssd, MemTier::Device, 0, cluster),
            0
        );
    }

    #[test]
    fn edge_ssd_restore_is_slower_than_server_host_restore() {
        let bytes = 1u64 << 30;
        let chunk = 256u64 << 10;
        let edge = edge_path().migrate_ps(MemTier::Ssd, MemTier::Device, bytes, chunk);
        let server = server_path().migrate_ps(MemTier::Host, MemTier::Device, bytes, chunk);
        assert!(
            edge > 4 * server,
            "SSD restore {edge} should be much slower than host restore {server}"
        );
    }

    #[test]
    fn host_to_ssd_pays_the_slowest_of_all_three_stages() {
        let p = server_path();
        let bytes = 256u64 << 20;
        let chunk = 1u64 << 20;
        let down = p.migrate_ps(MemTier::Host, MemTier::Ssd, bytes, chunk);
        let host_only = p.migrate_ps(MemTier::Host, MemTier::Device, bytes, chunk);
        // The SSD flash array is the slowest stage, so demoting host →
        // SSD is slower than a pure host ↔ device move.
        assert!(down > host_only, "{down} vs {host_only}");
    }

    #[test]
    fn tiny_chunks_degrade_migration_bandwidth() {
        let p = edge_path();
        let bulk = p.bandwidth_bytes_per_s(MemTier::Ssd, MemTier::Device, 1 << 20);
        let scattered = p.bandwidth_bytes_per_s(MemTier::Ssd, MemTier::Device, 4096);
        assert!(
            scattered < 0.5 * bulk,
            "4 KiB chunks {scattered:.2e} should underperform 1 MiB {bulk:.2e}"
        );
    }

    #[test]
    fn capacities_describe_the_hierarchy() {
        let caps = TierCapacities {
            device_bytes: 4,
            host_bytes: 0,
            ssd_bytes: 9,
        };
        assert_eq!(caps.total_bytes(), 13);
        assert!(caps.has(MemTier::Device));
        assert!(!caps.has(MemTier::Host));
        let below: Vec<MemTier> = caps.below(MemTier::Device).collect();
        assert_eq!(below, vec![MemTier::Ssd], "absent host tier skipped");
        assert_eq!(caps.below(MemTier::Ssd).count(), 0);
    }

    #[test]
    fn device_overflow_is_the_spilled_remainder() {
        let caps = TierCapacities {
            device_bytes: 100,
            host_bytes: 50,
            ssd_bytes: 0,
        };
        assert_eq!(caps.device_overflow_bytes(60), 0, "fits in device");
        assert_eq!(caps.device_overflow_bytes(100), 0, "exactly full");
        assert_eq!(caps.device_overflow_bytes(130), 30, "30 B spilled");
    }

    #[test]
    fn tier_ordering_is_fastest_first() {
        assert!(MemTier::Device < MemTier::Host);
        assert!(MemTier::Host < MemTier::Ssd);
        assert_eq!(MemTier::Ssd.to_string(), "ssd");
    }
}
