//! Functional KV-cache management unit (paper §V-C).
//!
//! The KVMU owns two mechanisms, both implemented here as real data
//! structures (the analytic pipeline model in `vrex-system` prices
//! their effects; this module *executes* them so their invariants can
//! be tested):
//!
//! 1. **Hierarchical residency** — recent KV entries stay in device
//!    memory (the hot window); when the device budget is exceeded the
//!    oldest entries are offloaded to CPU memory/storage. Retrieval
//!    brings selected cold entries back for one step.
//! 2. **Cluster-wise memory mapping** — offloaded tokens that belong to
//!    the same hash cluster are stored at contiguous offload addresses,
//!    so a cluster's tokens transfer as one large DMA chunk instead of
//!    many per-token scatters. Remapping happens when entries are
//!    offloaded (reordering is hidden behind streaming, as the paper
//!    notes), using the latest clustering.

use std::collections::BTreeMap;

/// Where a token's KV entry currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// In device memory (hot window).
    Device,
    /// Offloaded, at the given byte offset in offload space.
    Offloaded {
        /// Byte address within the offload (CPU/SSD) address space.
        offset: u64,
    },
}

/// One DMA transaction produced by a fetch plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Start offset in offload space.
    pub offset: u64,
    /// Contiguous length in bytes.
    pub bytes: u64,
    /// Number of requested tokens covered.
    pub tokens: usize,
}

/// A fetch plan: the coalesced transactions covering a selection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchPlan {
    /// Coalesced transactions, ascending by offset.
    pub transactions: Vec<Transaction>,
    /// Tokens already resident (no transfer needed).
    pub hot_hits: usize,
}

impl FetchPlan {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.transactions.iter().map(|t| t.bytes).sum()
    }

    /// Mean transaction size in bytes (0 when no transfer needed).
    pub fn mean_transaction_bytes(&self) -> f64 {
        if self.transactions.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.transactions.len() as f64
        }
    }
}

/// The KV-cache management unit for one stream.
#[derive(Debug)]
pub struct Kvmu {
    /// Bytes per token (per-layer KV record size).
    bytes_per_token: u64,
    /// Hot-window capacity in tokens.
    hot_capacity: usize,
    /// Residency per token index.
    residency: Vec<Residency>,
    /// Hot tokens in age order (front = oldest).
    hot_queue: std::collections::VecDeque<usize>,
    /// Next free offload offset.
    offload_tail: u64,
    /// Cluster id per token (used for contiguous placement), if known.
    cluster_of: Vec<Option<usize>>,
    /// Pending offload buffer grouped by cluster (tokens waiting to be
    /// written out together).
    stats: KvmuStats,
}

/// Aggregate KVMU statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvmuStats {
    /// Tokens appended.
    pub appended: u64,
    /// Tokens offloaded.
    pub offloaded: u64,
    /// Tokens fetched back.
    pub fetched: u64,
    /// Transactions issued.
    pub transactions: u64,
}

impl Kvmu {
    /// Creates a KVMU with a hot window of `hot_capacity` tokens and
    /// `bytes_per_token` per KV record.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_token == 0`.
    pub fn new(hot_capacity: usize, bytes_per_token: u64) -> Self {
        assert!(bytes_per_token > 0, "bytes_per_token must be positive");
        Self {
            bytes_per_token,
            hot_capacity,
            residency: Vec::new(),
            hot_queue: std::collections::VecDeque::new(),
            offload_tail: 0,
            cluster_of: Vec::new(),
            stats: KvmuStats::default(),
        }
    }

    /// Number of tracked tokens.
    pub fn len(&self) -> usize {
        self.residency.len()
    }

    /// Returns `true` when no tokens are tracked.
    pub fn is_empty(&self) -> bool {
        self.residency.is_empty()
    }

    /// Tokens currently resident in device memory.
    pub fn hot_len(&self) -> usize {
        self.hot_queue.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> KvmuStats {
        self.stats
    }

    /// Residency of a token.
    ///
    /// # Panics
    ///
    /// Panics if the token is unknown.
    pub fn residency(&self, token: usize) -> Residency {
        self.residency[token]
    }

    /// Appends one new token (optionally tagged with its hash-cluster
    /// id) to the hot window, spilling the oldest hot tokens to offload
    /// space if the budget is exceeded.
    pub fn append_token(&mut self, cluster: Option<usize>) -> usize {
        let token = self.residency.len();
        self.residency.push(Residency::Device);
        self.cluster_of.push(cluster);
        self.hot_queue.push_back(token);
        self.stats.appended += 1;
        self.enforce_budget();
        token
    }

    /// Updates a token's cluster assignment (clusters evolve as the HC
    /// table absorbs new tokens). Only meaningful while the token is
    /// still hot — offloaded placement is final until re-fetch.
    pub fn set_cluster(&mut self, token: usize, cluster: usize) {
        self.cluster_of[token] = Some(cluster);
    }

    fn enforce_budget(&mut self) {
        while self.hot_queue.len() > self.hot_capacity {
            // Offload the oldest hot tokens — grouped by cluster so
            // cluster members land contiguously. Collect the eviction
            // batch: the oldest token plus any other hot tokens sharing
            // its cluster (cluster-wise mapping).
            // vrex-lint: allow(panicking-seam) — loop guard: len() > capacity ≥ 0, so front() is Some.
            let oldest = *self.hot_queue.front().expect("non-empty");
            let cluster = self.cluster_of[oldest];
            let mut batch: Vec<usize> = match cluster {
                Some(c) => self
                    .hot_queue
                    .iter()
                    .copied()
                    .filter(|&t| self.cluster_of[t] == Some(c))
                    .collect(),
                None => vec![oldest],
            };
            batch.sort_unstable();
            // Keep the hot queue's newest members if evicting the whole
            // cluster would over-drain the window: evict at most the
            // overflow plus cluster co-members among the oldest half.
            for &t in &batch {
                self.residency[t] = Residency::Offloaded {
                    offset: self.offload_tail,
                };
                self.offload_tail += self.bytes_per_token;
                self.stats.offloaded += 1;
            }
            self.hot_queue.retain(|t| !batch.contains(t));
        }
    }

    /// Builds the coalesced fetch plan for a selection of token
    /// indices: resident tokens are hot hits; offloaded tokens are
    /// grouped into contiguous transactions (adjacent offload offsets
    /// merge — which is exactly what cluster-wise placement enables).
    ///
    /// # Panics
    ///
    /// Panics if a token index is unknown.
    pub fn plan_fetch(&mut self, selection: &[usize]) -> FetchPlan {
        let mut plan = FetchPlan::default();
        let mut offsets: BTreeMap<u64, usize> = BTreeMap::new();
        for &t in selection {
            match self.residency[t] {
                Residency::Device => plan.hot_hits += 1,
                Residency::Offloaded { offset } => {
                    offsets.insert(offset, t);
                }
            }
        }
        let mut current: Option<Transaction> = None;
        for &offset in offsets.keys() {
            match current.as_mut() {
                Some(tx) if tx.offset + tx.bytes == offset => {
                    tx.bytes += self.bytes_per_token;
                    tx.tokens += 1;
                }
                _ => {
                    if let Some(tx) = current.take() {
                        plan.transactions.push(tx);
                    }
                    current = Some(Transaction {
                        offset,
                        bytes: self.bytes_per_token,
                        tokens: 1,
                    });
                }
            }
        }
        if let Some(tx) = current {
            plan.transactions.push(tx);
        }
        self.stats.fetched += offsets.len() as u64;
        self.stats.transactions += plan.transactions.len() as u64;
        plan
    }

    /// Verifies residency invariants; panics on violation. For tests.
    pub fn assert_invariants(&self) {
        assert!(
            self.hot_queue.len() <= self.hot_capacity.max(1),
            "hot window over budget"
        );
        let mut seen = std::collections::BTreeSet::new();
        for &t in &self.hot_queue {
            assert!(seen.insert(t), "token {t} twice in hot queue");
            assert_eq!(
                self.residency[t],
                Residency::Device,
                "hot queue out of sync"
            );
        }
        let mut offsets = std::collections::BTreeSet::new();
        for (t, r) in self.residency.iter().enumerate() {
            match r {
                Residency::Device => assert!(
                    self.hot_queue.contains(&t),
                    "device token {t} missing from hot queue"
                ),
                Residency::Offloaded { offset } => {
                    assert!(offset % self.bytes_per_token == 0, "misaligned offset");
                    assert!(offsets.insert(*offset), "offload offset collision");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tokens_stay_hot_until_budget_exceeded() {
        let mut k = Kvmu::new(4, 512);
        for _ in 0..4 {
            k.append_token(None);
        }
        assert_eq!(k.hot_len(), 4);
        assert!(matches!(k.residency(0), Residency::Device));
        k.append_token(None);
        k.assert_invariants();
        assert!(k.hot_len() <= 4);
        assert!(matches!(k.residency(0), Residency::Offloaded { .. }));
    }

    #[test]
    fn cluster_members_offload_contiguously() {
        let mut k = Kvmu::new(2, 1024);
        // Tokens 0..4 in cluster 7, then overflow the window.
        for _ in 0..4 {
            k.append_token(Some(7));
        }
        for _ in 0..2 {
            k.append_token(Some(8));
        }
        k.assert_invariants();
        // All cluster-7 tokens were evicted together: their offsets are
        // consecutive, so a fetch of the cluster is ONE transaction.
        let plan = k.plan_fetch(&[0, 1, 2, 3]);
        assert_eq!(plan.transactions.len(), 1, "{plan:?}");
        assert_eq!(plan.transactions[0].tokens, 4);
        assert_eq!(plan.transactions[0].bytes, 4 * 1024);
    }

    #[test]
    fn unclustered_interleaved_evictions_scatter() {
        // Without cluster tags, tokens offload in age order; selecting
        // every other one yields per-token transactions.
        let mut k = Kvmu::new(0, 256);
        for _ in 0..8 {
            k.append_token(None);
        }
        let plan = k.plan_fetch(&[0, 2, 4, 6]);
        assert_eq!(plan.transactions.len(), 4);
        assert!((plan.mean_transaction_bytes() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn hot_hits_are_not_transferred() {
        let mut k = Kvmu::new(8, 64);
        for _ in 0..4 {
            k.append_token(None);
        }
        let plan = k.plan_fetch(&[0, 1, 2, 3]);
        assert_eq!(plan.hot_hits, 4);
        assert!(plan.transactions.is_empty());
        assert_eq!(plan.total_bytes(), 0);
    }

    #[test]
    fn adjacent_offsets_coalesce_across_clusters() {
        let mut k = Kvmu::new(0, 128);
        for _ in 0..3 {
            k.append_token(None);
        }
        // Offloaded in order 0,1,2 at offsets 0,128,256.
        let plan = k.plan_fetch(&[0, 1, 2]);
        assert_eq!(plan.transactions.len(), 1);
        assert_eq!(plan.transactions[0].bytes, 3 * 128);
    }

    #[test]
    fn stats_accumulate() {
        let mut k = Kvmu::new(1, 64);
        for _ in 0..3 {
            k.append_token(None);
        }
        let _ = k.plan_fetch(&[0, 1]);
        let s = k.stats();
        assert_eq!(s.appended, 3);
        assert!(s.offloaded >= 2);
        assert_eq!(s.fetched, 2);
        assert!(s.transactions >= 1);
    }

    proptest! {
        /// Residency invariants hold under arbitrary append/cluster
        /// sequences, and fetch plans exactly cover the cold part of
        /// the selection.
        #[test]
        fn kvmu_invariants_hold(
            clusters in proptest::collection::vec(proptest::option::of(0usize..5), 1..200),
            hot_cap in 0usize..32,
        ) {
            let mut k = Kvmu::new(hot_cap, 512);
            for c in &clusters {
                k.append_token(*c);
            }
            k.assert_invariants();
            // Select every third token.
            let selection: Vec<usize> = (0..clusters.len()).step_by(3).collect();
            let cold_expected = selection
                .iter()
                .filter(|&&t| matches!(k.residency(t), Residency::Offloaded { .. }))
                .count();
            let plan = k.plan_fetch(&selection);
            let covered: usize = plan.transactions.iter().map(|t| t.tokens).sum();
            prop_assert_eq!(covered, cold_expected);
            prop_assert_eq!(plan.hot_hits, selection.len() - cold_expected);
            prop_assert_eq!(plan.total_bytes(), cold_expected as u64 * 512);
            // Transactions are sorted, non-overlapping.
            for w in plan.transactions.windows(2) {
                prop_assert!(w[0].offset + w[0].bytes <= w[1].offset);
            }
        }

        /// Clustered streams produce strictly fewer (i.e. larger)
        /// transactions than unclustered ones for the same selection of
        /// a full cluster.
        #[test]
        fn clustering_never_increases_transactions(n_groups in 1usize..6, per_group in 2usize..8) {
            // A hot window one short of the stream length: the overflow
            // evicts the oldest token's whole cluster in one batch —
            // the mechanism that makes cluster fetches contiguous.
            let cap = n_groups * per_group - 1;
            let mut clustered = Kvmu::new(cap, 256);
            let mut plain = Kvmu::new(0, 256);
            // Interleave group members in arrival order (worst case for
            // age-order placement).
            for i in 0..per_group {
                for g in 0..n_groups {
                    clustered.append_token(Some(g));
                    plain.append_token(None);
                    let _ = i;
                }
            }
            // Select all members of group 0: arrival indices g=0 column.
            let selection: Vec<usize> = (0..per_group).map(|i| i * n_groups).collect();
            let tx_clustered = clustered.plan_fetch(&selection).transactions.len();
            let tx_plain = plain.plan_fetch(&selection).transactions.len();
            prop_assert!(tx_clustered <= tx_plain,
                "clustered {} vs plain {}", tx_clustered, tx_plain);
            if n_groups > 1 {
                prop_assert_eq!(tx_clustered, 1, "cluster must be one transaction");
            }
        }
    }
}
