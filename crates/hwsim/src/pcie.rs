//! PCIe link model with transaction-size-dependent efficiency.
//!
//! KV retrieval is bottlenecked by PCIe (paper §I: 4–32 GB/s vs.
//! 1–2 TB/s device memory). Crucially, *how* bytes are packed matters:
//! every TLP carries ~24 bytes of header/framing per ≤256-byte payload
//! and every DMA descriptor costs setup time, so thousands of scattered
//! per-token reads waste a large fraction of the link — the
//! inefficiency the KVMU's cluster-contiguous mapping removes
//! (paper §V-C).

use crate::time::seconds_to_ps;

/// Static PCIe link configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PcieConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Lane count.
    pub lanes: usize,
    /// Effective per-lane data bandwidth (bytes/s) after encoding.
    pub lane_bytes_per_s: f64,
    /// Maximum TLP payload (bytes).
    pub max_payload: u64,
    /// TLP header + framing overhead (bytes).
    pub tlp_overhead: u64,
    /// Per-DMA-descriptor setup latency (ps).
    pub dma_setup_ps: u64,
    /// Power per lane while active (W) — the paper budgets 3 W/lane.
    pub w_per_lane: f64,
}

impl PcieConfig {
    /// PCIe 3.0 ×4 — the edge platform's 4 GB/s storage link.
    pub fn gen3_x4() -> Self {
        Self {
            name: "PCIe3.0x4",
            lanes: 4,
            lane_bytes_per_s: 1.0e9,
            max_payload: 256,
            tlp_overhead: 24,
            dma_setup_ps: 400_000, // 0.4 µs per descriptor
            w_per_lane: 3.0,
        }
    }

    /// PCIe 4.0 ×16 — the server platform's 32 GB/s CPU-memory link.
    pub fn gen4_x16() -> Self {
        Self {
            name: "PCIe4.0x16",
            lanes: 16,
            lane_bytes_per_s: 2.0e9,
            max_payload: 256,
            tlp_overhead: 24,
            dma_setup_ps: 400_000,
            w_per_lane: 3.0,
        }
    }

    /// Raw link bandwidth (bytes/s).
    pub fn raw_bytes_per_s(&self) -> f64 {
        self.lane_bytes_per_s * self.lanes as f64
    }

    /// Payload efficiency for a given transfer chunk size: useful bytes
    /// over wire bytes (TLP headers included).
    pub fn payload_efficiency(&self, chunk_bytes: u64) -> f64 {
        if chunk_bytes == 0 {
            return 0.0;
        }
        let tlps = chunk_bytes.div_ceil(self.max_payload);
        chunk_bytes as f64 / (chunk_bytes + tlps * self.tlp_overhead) as f64
    }

    /// Duration (ps) of transferring `total_bytes` split into DMA
    /// chunks of `chunk_bytes` (last chunk may be short).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes == 0` while `total_bytes > 0`.
    pub fn transfer_ps(&self, total_bytes: u64, chunk_bytes: u64) -> u64 {
        if total_bytes == 0 {
            return 0;
        }
        assert!(chunk_bytes > 0, "chunk size must be positive");
        let n_chunks = total_bytes.div_ceil(chunk_bytes);
        let tlps = total_bytes.div_ceil(self.max_payload) + n_chunks; // +1 partial per chunk boundary
        let wire_bytes = total_bytes + tlps * self.tlp_overhead;
        let wire_ps = seconds_to_ps(wire_bytes as f64 / self.raw_bytes_per_s());
        wire_ps + n_chunks * self.dma_setup_ps
    }

    /// Effective bandwidth (bytes/s) at a chunk size.
    pub fn effective_bandwidth(&self, chunk_bytes: u64) -> f64 {
        let total = 64u64 << 20;
        let ps = self.transfer_ps(total, chunk_bytes);
        total as f64 / (ps as f64 / 1e12)
    }

    /// Link power while active (W).
    pub fn active_power_w(&self) -> f64 {
        self.w_per_lane * self.lanes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_bandwidths_match_table1() {
        assert!((PcieConfig::gen3_x4().raw_bytes_per_s() - 4.0e9).abs() < 1.0);
        assert!((PcieConfig::gen4_x16().raw_bytes_per_s() - 32.0e9).abs() < 1.0);
    }

    #[test]
    fn large_chunks_approach_line_rate() {
        let cfg = PcieConfig::gen3_x4();
        let bw = cfg.effective_bandwidth(1 << 20);
        assert!(
            bw > 0.85 * cfg.raw_bytes_per_s(),
            "1 MiB chunks should be efficient, got {bw:.2e}"
        );
    }

    #[test]
    fn tiny_chunks_collapse_bandwidth() {
        let cfg = PcieConfig::gen3_x4();
        let bw_small = cfg.effective_bandwidth(512);
        let bw_big = cfg.effective_bandwidth(1 << 20);
        assert!(
            bw_small < 0.6 * bw_big,
            "512 B chunks {bw_small:.2e} should clearly underperform {bw_big:.2e}"
        );
    }

    #[test]
    fn payload_efficiency_bounds() {
        let cfg = PcieConfig::gen4_x16();
        assert!(cfg.payload_efficiency(256) > 0.9);
        assert!(cfg.payload_efficiency(64) < 0.75);
        assert_eq!(cfg.payload_efficiency(0), 0.0);
    }

    #[test]
    fn zero_transfer_is_free() {
        assert_eq!(PcieConfig::gen3_x4().transfer_ps(0, 4096), 0);
    }

    #[test]
    fn power_is_3w_per_lane() {
        assert!((PcieConfig::gen3_x4().active_power_w() - 12.0).abs() < 1e-9);
        assert!((PcieConfig::gen4_x16().active_power_w() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn chunk_larger_than_total_is_one_dma_descriptor() {
        // 1 KiB sent with a 1 MiB chunk size: a single chunk, so one
        // DMA setup; 4 full TLPs for the payload + 1 for the chunk
        // boundary → 5·24 B of framing on the wire.
        let cfg = PcieConfig::gen3_x4();
        let t = cfg.transfer_ps(1024, 1 << 20);
        let wire_bytes = 1024 + 5 * 24;
        let expected = seconds_to_ps(wire_bytes as f64 / cfg.raw_bytes_per_s()) + cfg.dma_setup_ps;
        assert_eq!(t, expected);
    }

    #[test]
    fn single_sub_payload_transfer_still_pays_setup() {
        // 8 bytes: one TLP + one boundary TLP, one descriptor. The DMA
        // setup dominates by orders of magnitude.
        let cfg = PcieConfig::gen3_x4();
        let t = cfg.transfer_ps(8, 4096);
        assert!(t >= cfg.dma_setup_ps);
        assert!(t < 2 * cfg.dma_setup_ps, "tiny payload ≈ one setup: {t}");
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_with_nonzero_bytes_panics() {
        let _ = PcieConfig::gen3_x4().transfer_ps(4096, 0);
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let cfg = PcieConfig::gen3_x4();
        let t1 = cfg.transfer_ps(1 << 20, 64 << 10);
        let t2 = cfg.transfer_ps(2 << 20, 64 << 10);
        assert!(t2 > t1);
    }
}
