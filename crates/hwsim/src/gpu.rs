//! Roofline GPU model with irregular-operation penalties.
//!
//! The baselines run on a Jetson AGX Orin (edge) or an A100 (server).
//! For the operations the evaluation times — dense GEMMs, attention,
//! top-k/sort selection, scattered gathers — a GPU is characterised by
//! its compute roof, memory roof, kernel-launch quanta, and a heavily
//! reduced throughput for data-dependent conditional work (the paper's
//! §V motivation: ReSV's clustering/thresholding "would cause severe
//! slowdown and underutilization on a GPU").

use crate::time::seconds_to_ps;

/// Static GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Peak dense FP16/BF16 throughput (FLOP/s).
    pub peak_flops: f64,
    /// Device memory bandwidth (bytes/s).
    pub mem_bytes_per_s: f64,
    /// Device memory capacity (bytes).
    pub mem_capacity: u64,
    /// Achievable fraction of peak on well-shaped GEMMs.
    pub dense_efficiency: f64,
    /// Kernel launch + sync overhead per operation (ps).
    pub launch_ps: u64,
    /// Throughput for irregular parallel work (segmented sorts, top-k
    /// scans), in elementary ops/s. Calibrated so InfiniGen-style KV
    /// prediction takes the ~40% share of prefill latency the paper
    /// measures on an A100 at 40K cache (Fig. 4c).
    pub irregular_ops_per_s: f64,
    /// Throughput for serial data-dependent chains (ReSV's token-by-
    /// token clustering and conditional thresholding), in ops/s.
    /// Calibrated to Fig. 16's finding that ReSV-on-GPU spends ~48% of
    /// its time in KV prediction.
    pub serial_ops_per_s: f64,
    /// Board power (W) under load.
    pub board_power_w: f64,
}

impl GpuConfig {
    /// NVIDIA Jetson AGX Orin (Table I): 54 TFLOPS FP16, LPDDR5
    /// 204.8 GB/s, 32 GB shared, ~40 W.
    pub fn agx_orin() -> Self {
        Self {
            name: "AGX Orin",
            peak_flops: 54.0e12,
            mem_bytes_per_s: 204.8e9,
            mem_capacity: 32u64 << 30,
            dense_efficiency: 0.55,
            launch_ps: 8_000_000, // 8 µs
            irregular_ops_per_s: 2.5e8,
            serial_ops_per_s: 2.2e7,
            board_power_w: 40.0,
        }
    }

    /// NVIDIA A100 (Table I): 312 TFLOPS BF16, HBM2e 1935 GB/s, 80 GB,
    /// ~300 W.
    pub fn a100() -> Self {
        Self {
            name: "A100",
            peak_flops: 312.0e12,
            mem_bytes_per_s: 1935.0e9,
            mem_capacity: 80u64 << 30,
            dense_efficiency: 0.6,
            launch_ps: 5_000_000, // 5 µs
            irregular_ops_per_s: 1.2e9,
            serial_ops_per_s: 7.0e7,
            board_power_w: 300.0,
        }
    }

    /// Time (ps) for a dense kernel: roofline max of compute and memory
    /// time plus one launch.
    pub fn dense_op_ps(&self, flops: u64, bytes: u64) -> u64 {
        let compute_s = flops as f64 / (self.peak_flops * self.dense_efficiency);
        let memory_s = bytes as f64 / self.mem_bytes_per_s;
        seconds_to_ps(compute_s.max(memory_s)) + self.launch_ps
    }

    /// Time (ps) for irregular data-dependent work of `ops` elementary
    /// operations (comparisons, conditional updates), launched as
    /// `kernels` separate kernels.
    pub fn irregular_op_ps(&self, ops: u64, kernels: u64) -> u64 {
        seconds_to_ps(ops as f64 / self.irregular_ops_per_s) + kernels * self.launch_ps
    }

    /// Time (ps) for serial data-dependent chains of `ops` operations
    /// (each step's input depends on the previous step's branch).
    pub fn serial_op_ps(&self, ops: u64, kernels: u64) -> u64 {
        seconds_to_ps(ops as f64 / self.serial_ops_per_s) + kernels * self.launch_ps
    }

    /// Attainable throughput (FLOP/s) at operational intensity
    /// `oi` (FLOP/byte) — the roofline curve.
    pub fn attainable_flops(&self, oi: f64) -> f64 {
        (oi * self.mem_bytes_per_s).min(self.peak_flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_op_is_memory_bound_for_weight_streaming() {
        // Streaming 16 GB of weights for a single token is memory-bound
        // on AGX: ~78 ms.
        let gpu = GpuConfig::agx_orin();
        let flops = 16_000_000_000u64; // 16 GFLOP (1 token through 8B params)
        let bytes = 16u64 << 30;
        let t = gpu.dense_op_ps(flops, bytes);
        let ms = t as f64 / 1e9;
        assert!((75.0..95.0).contains(&ms), "weight streaming took {ms} ms");
    }

    #[test]
    fn dense_op_is_compute_bound_for_big_batches() {
        let gpu = GpuConfig::a100();
        // 1 PFLOP over only 1 GB of traffic: compute-bound.
        let t = gpu.dense_op_ps(1_000_000_000_000_000, 1 << 30);
        let compute_s = 1e15 / (gpu.peak_flops * gpu.dense_efficiency);
        assert!((t as f64 / 1e12 - compute_s).abs() / compute_s < 0.01);
    }

    #[test]
    fn irregular_work_is_much_slower_than_dense() {
        let gpu = GpuConfig::agx_orin();
        let n = 1_000_000u64;
        let dense = gpu.dense_op_ps(2 * n, 4 * n);
        let irregular = gpu.irregular_op_ps(n, 1);
        // Per-op irregular throughput is orders below dense FLOPs.
        assert!(irregular > dense / 4);
    }

    #[test]
    fn roofline_has_knee() {
        let gpu = GpuConfig::agx_orin();
        let knee = gpu.peak_flops / gpu.mem_bytes_per_s;
        assert!(gpu.attainable_flops(knee / 10.0) < gpu.peak_flops * 0.2);
        assert_eq!(gpu.attainable_flops(knee * 10.0), gpu.peak_flops);
    }

    #[test]
    fn launch_overhead_floors_small_ops() {
        let gpu = GpuConfig::a100();
        assert!(gpu.dense_op_ps(1, 1) >= gpu.launch_ps);
    }
}
