//! Offline, API-compatible subset of the [`criterion`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `criterion` its benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short warm-up, then
//! `sample_size` samples of a batched timing loop, reporting the
//! fastest/median/mean nanoseconds per iteration to stdout. There is no
//! statistical analysis, plotting, or baseline persistence — good
//! enough for the relative comparisons the workspace benches make
//! (full sort vs early exit, full vs filtered attention).
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the total time budget spread across the samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// No-op for CLI compatibility with upstream.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self, &mut f);
        print_report(name, &report);
        self
    }
}

/// A named collection of benchmarks sharing the parent's settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against one `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let report = run_bench(self.criterion, &mut |b| f(b, input));
        print_report(&label, &report);
        self
    }

    /// Benchmarks `f` under `name` within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let report = run_bench(self.criterion, &mut f);
        print_report(&label, &report);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// A benchmark label, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` label.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        // Size each sample's batch so all samples fit the budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples_ns.push(ns);
        }
    }
}

struct Report {
    fastest_ns: f64,
    median_ns: f64,
    mean_ns: f64,
}

fn run_bench(criterion: &Criterion, f: &mut dyn FnMut(&mut Bencher)) -> Report {
    let mut bencher = Bencher {
        warm_up_time: criterion.warm_up_time,
        measurement_time: criterion.measurement_time,
        sample_size: criterion.sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    let mut s = bencher.samples_ns;
    if s.is_empty() {
        // The closure never called `iter` — report zeros rather than
        // panicking, matching upstream's tolerance.
        return Report {
            fastest_ns: 0.0,
            median_ns: 0.0,
            mean_ns: 0.0,
        };
    }
    s.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
    Report {
        fastest_ns: s[0],
        median_ns: s[s.len() / 2],
        mean_ns: s.iter().sum::<f64>() / s.len() as f64,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn print_report(label: &str, report: &Report) {
    println!(
        "{label:<48} fastest {:>12}  median {:>12}  mean {:>12}",
        format_ns(report.fastest_ns),
        format_ns(report.median_ns),
        format_ns(report.mean_ns),
    );
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut ran = false;
        c.bench_function("smoke/sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        assert!(ran);
    }

    #[test]
    fn group_labels_and_ids() {
        let id = BenchmarkId::new("full", 512);
        assert_eq!(id.label, "full/512");
        let id = BenchmarkId::from_parameter(64);
        assert_eq!(id.label, "64");
    }
}
