//! Offline, API-compatible subset of the [`rand`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range`/`gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and
//! statistically strong enough for the workspace's seeded-experiment
//! and property-test workloads. Streams differ from upstream `rand`,
//! which is fine: the workspace only relies on *internal*
//! reproducibility (same seed, same binary, same values).
//!
//! [`rand`]: https://crates.io/crates/rand

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64
    /// expansion, so nearby seeds yield unrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of a word.
fn next_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` from the top 24 bits of a word.
fn next_f32<R: RngCore>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// A range that can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // 128-bit multiply-shift keeps the bias below 2^-64.
                let word = rng.next_u64() as u128;
                let off = (word * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let word = rng.next_u64() as u128;
                let off = (word * span) >> 64;
                (start as i128 + off as i128) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u = next_f32(rng);
        let v = self.start + (self.end - self.start) * u;
        // `start + span*u` can round up to the excluded endpoint for
        // large-magnitude ranges; clamp to the largest value below it.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        let u = (rng.next_u64() >> 40) as f32 / ((1u64 << 24) - 1) as f32;
        start + (end - start) * u
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = next_f64(rng);
        let v = self.start + (self.end - self.start) * u;
        // See the f32 impl: clamp endpoint-rounding to the value below.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + (end - start) * u
    }
}

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// The workspace-standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(
                a.gen_range(0usize..1_000_000),
                b.gen_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn int_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v));
            let w = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn half_open_excludes_endpoint_at_large_magnitude() {
        // At magnitude 2^24 the f32 ULP is 2: naive endpoint guards
        // round back up to the excluded bound.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100_000 {
            let v = rng.gen_range(16_777_216.0f32..16_777_218.0);
            assert!(v < 16_777_218.0, "returned excluded endpoint");
            let w = rng.gen_range(9.007_199e15f64..9.007_200e15);
            assert!(w < 9.007_200e15, "returned excluded endpoint");
        }
    }

    #[test]
    fn floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
