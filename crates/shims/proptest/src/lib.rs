//! Offline, API-compatible subset of the [`proptest`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `proptest` its property tests use:
//! the [`proptest!`] macro, range/tuple/`any::<bool>()` strategies,
//! [`collection::vec`], [`option::of`], `prop_assert!`/`prop_assert_eq!`,
//! and [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * sampling is purely random (no structured exploration), driven by a
//!   fixed per-test seed, so runs are deterministic;
//! * there is **no shrinking** — a failing case reports the sampled
//!   inputs as-is;
//! * the default case count is 64 (upstream: 256) to keep `cargo test`
//!   fast on simulator-heavy properties.
//!
//! [`proptest`]: https://crates.io/crates/proptest

use rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategy impls.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    //! `any::<T>()` support for types with a canonical strategy.

    use core::marker::PhantomData;
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen_range(0u64..2) == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// A length specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies (`of`).

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Strategy producing `Option`s of an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            // Match upstream's default: Some three times out of four.
            if rng.gen_bool(0.75) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! Test-runner configuration and failure plumbing.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carried out of the case closure).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test name keeps distinct tests on distinct
    // streams while staying deterministic across runs.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32))
}

/// Declares property tests: each `name in strategy` argument is sampled
/// per case and the body is run `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        config.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(
            n in 3usize..17,
            x in -1.5f32..2.5,
            flag in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!(usize::from(flag) < 2);
        }

        /// Vec strategies respect exact and ranged lengths.
        #[test]
        fn vec_lengths(
            exact in crate::collection::vec(any::<bool>(), 32),
            ranged in crate::collection::vec(0usize..5, 1..6),
            opts in crate::collection::vec(crate::option::of(0usize..5), 1..50),
        ) {
            prop_assert_eq!(exact.len(), 32);
            prop_assert!((1..6).contains(&ranged.len()));
            prop_assert!(opts.iter().flatten().all(|&v| v < 5));
        }

        /// Tuple strategies sample componentwise.
        #[test]
        fn tuples_componentwise(pair in (0.0f32..50.0, 1usize..40)) {
            prop_assert!(pair.0 >= 0.0 && pair.0 < 50.0);
            prop_assert!(pair.1 >= 1 && pair.1 < 40);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let a = (0usize..1000).sample(&mut crate::__case_rng("t", 0));
        let b = (0usize..1000).sample(&mut crate::__case_rng("t", 0));
        assert_eq!(a, b);
    }
}
