//! Full attention vs retrieval-filtered ("light") attention across
//! cache lengths — the compute-saving half of Fig. 13's shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vrex_model::attention::attention_with_selection;
use vrex_model::policy::Selection;
use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention");
    let d = 64;
    for cache in [512usize, 2048, 8192] {
        let mut rng = seeded_rng(1);
        let q = gaussian_matrix(&mut rng, 10, d, 1.0);
        let k = gaussian_matrix(&mut rng, cache + 10, d, 1.0);
        let v = gaussian_matrix(&mut rng, cache + 10, d, 1.0);
        group.bench_with_input(BenchmarkId::new("full", cache), &cache, |b, _| {
            b.iter(|| attention_with_selection(&q, &k, &v, cache, &Selection::All))
        });
        // ReSV-like selection: ~32.7% of the history.
        let sel: Vec<usize> = (0..cache).step_by(3).collect();
        let selection = Selection::Indices(sel);
        group.bench_with_input(BenchmarkId::new("light_33pct", cache), &cache, |b, _| {
            b.iter(|| attention_with_selection(&q, &k, &v, cache, &selection))
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast_config(); targets = bench_attention);
criterion_main!(benches);
