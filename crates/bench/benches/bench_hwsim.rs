//! Hardware-model throughput: DRAM/SSD access pricing and event-engine
//! scheduling rates (the simulator substrate itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vrex_hwsim::dram::{Dram, DramConfig};
use vrex_hwsim::ssd::{Ssd, SsdConfig};
use vrex_hwsim::Engine;
use vrex_model::ModelConfig;
use vrex_system::pipeline::{layer_costs, Workload};
use vrex_system::{Method, PlatformSpec};

fn bench_dram_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("hwsim/dram");
    for mb in [1u64, 16] {
        group.bench_with_input(BenchmarkId::new("stream", mb), &mb, |b, &mb| {
            b.iter(|| {
                let mut d = Dram::new(DramConfig::lpddr5_204gb());
                d.access(0, mb << 20)
            })
        });
    }
    group.finish();
}

fn bench_ssd_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("hwsim/ssd");
    group.bench_function("contiguous_256MB", |b| {
        b.iter(|| Ssd::new(SsdConfig::bg6_class()).read_contiguous(256 << 20))
    });
    group.bench_function("scattered_64k_reqs", |b| {
        b.iter(|| Ssd::new(SsdConfig::bg6_class()).read_scattered(65_536, 4096))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("hwsim/engine_schedule_10k_tasks", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            let r1 = e.add_resource("a");
            let r2 = e.add_resource("b");
            let mut prev = None;
            for i in 0..10_000u64 {
                let deps: Vec<_> = prev.into_iter().collect();
                let r = if i % 2 == 0 { r1 } else { r2 };
                prev = Some(e.schedule(r, 100 + i % 7, &deps, "t", i));
            }
            e.makespan()
        })
    });
}

fn bench_full_system_step(c: &mut Criterion) {
    let model = ModelConfig::llama3_8b();
    c.bench_function("system/layer_costs_vrex8_40k", |b| {
        let w = Workload::frame(&model, 40_000, 1);
        b.iter(|| layer_costs(&PlatformSpec::vrex8(), Method::ReSV, &w))
    });
}

criterion_group!(
    benches,
    bench_dram_model,
    bench_ssd_model,
    bench_engine,
    bench_full_system_step
);
criterion_main!(benches);
