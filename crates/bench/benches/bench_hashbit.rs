//! Hash-bit generation and Hamming clustering kernel scaling — the
//! operations behind ReSV's clustering claims (Figs. 7, 16, 19).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vrex_core::hashbit::HyperplaneSet;
use vrex_core::hctable::HcTable;
use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

fn bench_hash_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashbit/generation");
    let hp = HyperplaneSet::new(128, 32, 1);
    for n_tokens in [64usize, 256, 1024] {
        let keys = gaussian_matrix(&mut seeded_rng(2), n_tokens, 128, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n_tokens), &keys, |b, keys| {
            b.iter(|| hp.hash_rows(keys))
        });
    }
    group.finish();
}

fn bench_hamming_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashbit/clustering");
    let hp = HyperplaneSet::new(128, 32, 3);
    for n_tokens in [128usize, 512, 2048] {
        // Video-like keys: base set + small noise so clusters form.
        let mut rng = seeded_rng(4);
        let base = gaussian_matrix(&mut rng, 8, 128, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n_tokens), &n_tokens, |b, &n| {
            b.iter(|| {
                let mut table = HcTable::new(7);
                let mut rng = seeded_rng(5);
                for i in 0..n {
                    let noise = gaussian_matrix(&mut rng, 1, 128, 0.05);
                    let key: Vec<f32> = base
                        .row(i % 8)
                        .iter()
                        .zip(noise.row(0))
                        .map(|(a, b)| a + b)
                        .collect();
                    table.insert_token(&key, i, &hp);
                }
                table.n_clusters()
            })
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast_config(); targets = bench_hash_generation, bench_hamming_clustering);
criterion_main!(benches);
