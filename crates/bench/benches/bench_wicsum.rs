//! WiCSum selection: full-sort reference vs the WTU's early-exit bucket
//! dataflow (the hardware claim of Fig. 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use vrex_core::earlyexit::early_exit_select_row;
use vrex_core::wicsum::wicsum_select_row;
use vrex_tensor::rng::seeded_rng;

fn concentrated_scores(n: usize) -> (Vec<f32>, Vec<usize>) {
    // Power-law scores: a few large values carry most of the mass — the
    // regime where early exit wins (paper: top ~16% per row).
    let mut rng = seeded_rng(9);
    let scores: Vec<f32> = (0..n)
        .map(|i| 100.0 / (1.0 + i as f32) + rng.gen_range(0.0f32..0.5))
        .collect();
    let counts: Vec<usize> = (0..n).map(|_| rng.gen_range(1..64)).collect();
    (scores, counts)
}

fn bench_wicsum(c: &mut Criterion) {
    let mut group = c.benchmark_group("wicsum");
    for n in [256usize, 1024, 4096] {
        let (scores, counts) = concentrated_scores(n);
        group.bench_with_input(BenchmarkId::new("full_sort", n), &n, |b, _| {
            b.iter(|| wicsum_select_row(&scores, &counts, 0.3))
        });
        group.bench_with_input(BenchmarkId::new("early_exit", n), &n, |b, _| {
            b.iter(|| early_exit_select_row(&scores, &counts, 0.3, 32))
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast_config(); targets = bench_wicsum);
criterion_main!(benches);
