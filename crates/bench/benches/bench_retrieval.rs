//! Per-method selection cost on identical inputs: the "KV prediction"
//! computation each retrieval policy performs per attention head.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vrex_core::resv::{ResvConfig, ResvPolicy};
use vrex_model::policy::{RetrievalPolicy, SelectionRequest, Stage};
use vrex_model::ModelConfig;
use vrex_retrieval::{InfiniGenPPolicy, RekvPolicy};
use vrex_tensor::rng::{gaussian_matrix, seeded_rng};
use vrex_tensor::Matrix;

fn inputs(history: usize, d: usize) -> (Matrix, Matrix) {
    let mut rng = seeded_rng(6);
    let q = gaussian_matrix(&mut rng, 10, d, 1.0);
    let k = gaussian_matrix(&mut rng, history + 10, d, 1.0);
    (q, k)
}

fn request<'a>(queries: &'a Matrix, keys: &'a Matrix) -> SelectionRequest<'a> {
    SelectionRequest {
        layer: 0,
        query_head: 0,
        kv_head: 0,
        queries,
        keys,
        stage: Stage::Prefill,
    }
}

fn bench_selection(c: &mut Criterion) {
    let cfg = ModelConfig::small();
    let d = cfg.head_dim;
    let mut group = c.benchmark_group("retrieval/select");
    for history in [512usize, 2048] {
        let (q, k) = inputs(history, d);
        group.bench_with_input(BenchmarkId::new("infinigenp", history), &history, |b, _| {
            let mut p = InfiniGenPPolicy::paper_defaults();
            b.iter(|| p.select(&request(&q, &k)))
        });
        group.bench_with_input(BenchmarkId::new("rekv", history), &history, |b, _| {
            let mut p = RekvPolicy::paper_defaults(cfg.tokens_per_frame);
            b.iter(|| p.select(&request(&q, &k)))
        });
        group.bench_with_input(BenchmarkId::new("resv", history), &history, |b, _| {
            // ReSV amortises clustering over stream arrival; here the
            // table is pre-built and only selection is timed.
            let mut p = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
            p.on_keys_appended(0, 0, &k, 0);
            b.iter(|| p.select(&request(&q, &k)))
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast_config(); targets = bench_selection);
criterion_main!(benches);
