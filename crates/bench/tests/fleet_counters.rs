//! Worker-count determinism for the fleet-scale sweep.
//!
//! `fleet_scale --verbose` prints [`vrex_system::ServeCounters`]
//! event-loop telemetry per grid point, but nothing ever asserted those
//! counters are invariant to how many `par_map` workers raced over the
//! grid. They must be: each grid point runs wholly inside one worker
//! closure with its own plan stream and price cache, so every counter
//! is a function of the unit alone. This test drives the same
//! fleet-scale measurement grid through [`par_map_with_workers`] at one
//! worker and at several contended counts and pins reports *and*
//! counters bit-equal.

use vrex_bench::par::par_map_with_workers;
use vrex_model::ModelConfig;
use vrex_system::{
    serve_stream, Method, PlatformSpec, QueueKind, ServeConfig, ServeReport, StepPriceCache,
    SystemModel,
};
use vrex_workload::traffic::OpenLoopConfig;

/// A miniature of the `fleet_scale` grid: fleet size × admission ×
/// event core, sized for a test budget.
struct Unit {
    sessions: usize,
    tiered: bool,
    queue: QueueKind,
    seed: u64,
}

fn grid() -> Vec<Unit> {
    let mut units = Vec::new();
    for &sessions in &[50usize, 200] {
        for &tiered in &[false, true] {
            for &queue in &[QueueKind::Heap, QueueKind::Wheel] {
                units.push(Unit {
                    sessions,
                    tiered,
                    queue,
                    seed: 11,
                });
            }
        }
    }
    units
}

/// The `fleet_scale::measure` core without the wall-clock timing: one
/// open-loop streamed serve per unit, fresh price cache, full report.
fn measure(u: &Unit) -> ServeReport {
    let model = ModelConfig::llama3_8b();
    let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
    let cfg = if u.tiered {
        ServeConfig::real_time_tiered(32_000)
    } else {
        ServeConfig::real_time(32_000)
    }
    .with_queue(u.queue);
    let mut source = OpenLoopConfig {
        sessions: u.sessions,
        arrival_rate_per_s: 1.2,
        turns: 1,
        seed: u.seed,
    }
    .stream();
    let mut prices = StepPriceCache::new(&sys, &model);
    serve_stream(&mut prices, &mut source, &cfg)
}

#[test]
fn fleet_counters_are_invariant_to_worker_count() {
    let units = grid();
    let sequential = par_map_with_workers(&units, 1, measure);
    for n_workers in [2, 4, units.len() * 2] {
        let contended = par_map_with_workers(&units, n_workers, measure);
        assert_eq!(sequential.len(), contended.len());
        for (u, (a, b)) in units.iter().zip(sequential.iter().zip(&contended)) {
            let label = format!(
                "{} sessions, {}, {:?}, {} workers",
                u.sessions,
                if u.tiered { "tiered" } else { "reject" },
                u.queue,
                n_workers
            );
            assert_eq!(a, b, "report drifted: {label}");
            assert_eq!(a.counters, b.counters, "counters drifted: {label}");
        }
    }
}
