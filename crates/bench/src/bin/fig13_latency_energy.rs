//! Fig. 13: per-frame latency, TPOT, and energy efficiency versus the
//! KV-cache length sweep (1K–40K), on the edge (AGX Orin vs V-Rex8) and
//! the server (A100 vs V-Rex48).

use vrex_bench::report::{banner, f, Table};
use vrex_model::ModelConfig;
use vrex_system::{Method, PlatformSpec, SystemModel};

const SWEEP: [usize; 5] = [1_000, 5_000, 10_000, 20_000, 40_000];

fn edge_systems() -> Vec<SystemModel> {
    vec![
        SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen),
        SystemModel::new(PlatformSpec::agx_orin(), Method::InfiniGen),
        SystemModel::new(PlatformSpec::agx_orin(), Method::InfiniGenP),
        SystemModel::new(PlatformSpec::agx_orin(), Method::ReKV),
        SystemModel::new(PlatformSpec::vrex8(), Method::ReSV),
    ]
}

fn server_systems() -> Vec<SystemModel> {
    vec![
        SystemModel::new(PlatformSpec::a100(), Method::FlexGen),
        SystemModel::new(PlatformSpec::a100(), Method::InfiniGen),
        SystemModel::new(PlatformSpec::a100(), Method::InfiniGenP),
        SystemModel::new(PlatformSpec::a100(), Method::ReKV),
        SystemModel::new(PlatformSpec::vrex48(), Method::ReSV),
    ]
}

fn latency_table(systems: &[SystemModel], model: &ModelConfig, batch: usize, generation: bool) {
    let mut header = vec!["KV len".to_string()];
    header.extend(systems.iter().map(|s| s.label()));
    header.push("V-Rex speedup vs col-1".to_string());
    let mut t = Table::new(header);
    for s in SWEEP {
        let mut cells = vec![format!("{}K", s / 1000)];
        let mut first = 0.0;
        let mut last = 0.0;
        for (i, sys) in systems.iter().enumerate() {
            let r = if generation {
                sys.decode_step(model, s, batch)
            } else {
                sys.frame_step(model, s, batch)
            };
            let ms = r.latency_ms();
            if i == 0 {
                first = ms;
            }
            last = ms;
            cells.push(f(ms, 1));
        }
        cells.push(format!("{:.1}x", first / last));
        t.row(cells);
    }
    t.print();
}

fn energy_table(systems: &[SystemModel], model: &ModelConfig, batch: usize, generation: bool) {
    let mut header = vec!["KV len".to_string()];
    header.extend(systems.iter().map(|s| format!("{} (GOPS/W)", s.label())));
    header.push("V-Rex gain vs col-1".to_string());
    let mut t = Table::new(header);
    for s in SWEEP {
        let mut cells = vec![format!("{}K", s / 1000)];
        let mut first = 0.0;
        let mut last = 0.0;
        for (i, sys) in systems.iter().enumerate() {
            let r = if generation {
                sys.decode_step(model, s, batch)
            } else {
                sys.frame_step(model, s, batch)
            };
            let g = r.gops_per_watt();
            if i == 0 {
                first = g;
            }
            last = g;
            cells.push(f(g, 1));
        }
        cells.push(format!("{:.1}x", last / first));
        t.row(cells);
    }
    t.print();
}

fn main() {
    let model = ModelConfig::llama3_8b();

    banner("Fig. 13(a) EDGE: per-frame latency (ms), batch 1");
    latency_table(&edge_systems(), &model, 1, false);
    println!("Paper: V-Rex8 121/123/198/200/254 ms -> 3.9-8.3 FPS; 2.2-7.3x over AGX+FlexGen.");

    banner("Fig. 13(a) EDGE: per-frame latency (ms), batch 4");
    latency_table(&edge_systems(), &model, 4, false);
    println!("Paper: speedups rise to 2.1-13.8x at batch 4.");

    banner("Fig. 13(a) EDGE: TPOT (ms), batch 1");
    latency_table(&edge_systems(), &model, 1, true);
    println!("Paper: V-Rex8 TPOT 89-97 ms; 1.9-15.1x speedups.");

    banner("Fig. 13(a) EDGE: energy efficiency @ frame, batch 1");
    energy_table(&edge_systems(), &model, 1, false);
    println!("Paper: 5.5-10.2x over AGX+FlexGen (frame, batch 1).");

    banner("Fig. 13(a) EDGE: energy efficiency @ frame, batch 4");
    energy_table(&edge_systems(), &model, 4, false);

    banner("Fig. 13(a) EDGE: energy efficiency @ text, batch 1");
    energy_table(&edge_systems(), &model, 1, true);
    println!("Paper: 4.3-18.5x (text generation).");

    banner("Fig. 13(b) SERVER: per-frame latency (ms), batch 1");
    latency_table(&server_systems(), &model, 1, false);
    println!("Paper: V-Rex48 20-48 ms per frame; 2.6-7.3x at batch 1.");

    banner("Fig. 13(b) SERVER: per-frame latency (ms), batch 8");
    latency_table(&server_systems(), &model, 8, false);
    println!("Paper: 3.4-19.7x at batch 8.");

    banner("Fig. 13(b) SERVER: TPOT (ms), batch 1");
    latency_table(&server_systems(), &model, 1, true);
    println!("Paper: V-Rex48 TPOT 14-15 ms; 2.8-16.8x.");

    banner("Fig. 13(b) SERVER: energy efficiency @ frame, batch 1");
    energy_table(&server_systems(), &model, 1, false);
    println!("Paper: 9.0-29.7x over A100+FlexGen (frame, batch 1).");

    banner("Fig. 13(b) SERVER: energy efficiency @ frame, batch 8");
    energy_table(&server_systems(), &model, 8, false);
    println!("Paper: 5.9-52.2x; V-Rex48 reaches 1.1-1.4 TOPS/W.");
}
