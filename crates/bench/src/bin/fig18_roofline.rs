//! Fig. 18: roofline analysis of the frame-processing stage at 40K
//! cache, batch 4, for AGX+FlexGen, AGX+ReKV and V-Rex8.

use vrex_bench::report::{banner, f, Table};
use vrex_hwsim::roofline::{Roof, RooflinePoint};
use vrex_model::ModelConfig;
use vrex_system::{Method, PlatformSpec, SystemModel};

fn main() {
    let model = ModelConfig::llama3_8b();
    let systems = [
        SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen),
        SystemModel::new(PlatformSpec::agx_orin(), Method::ReKV),
        SystemModel::new(PlatformSpec::vrex8(), Method::ReSV),
    ];

    banner("Fig. 18: roofline @ 40K cache, batch 4 (frame processing)");
    let mut t = Table::new([
        "System",
        "OI (Op/B)",
        "Attainable (TFLOPS)",
        "Achieved (TFLOPS)",
        "% of attainable",
    ]);
    // Workload-normalised accounting (as the paper's single 15.2 Op/B
    // point implies): every system is credited with the FLOPs and bytes
    // the *full* frame-processing workload logically requires, so a
    // system that finishes it faster — by retrieving less — achieves a
    // larger fraction of its roof.
    let batch = 4u64;
    let workload_flops = batch * model.total_flops(model.tokens_per_frame, 40_000)
        + batch * PlatformSpec::vrex8().vision_flops;
    let workload_bytes =
        model.param_bytes() as u64 + batch * 40_000 * model.kv_bytes_per_token() as u64;
    for sys in &systems {
        let r = sys.frame_step(&model, 40_000, 4);
        let roof = Roof {
            peak_flops: sys.platform.compute.peak_flops(),
            mem_bytes_per_s: sys.platform.dram.peak_bytes_per_s(),
        };
        let p = RooflinePoint::from_measurement(
            &sys.label(),
            roof,
            workload_flops,
            workload_bytes + r.fetch_bytes,
            r.latency_ps as f64 / 1e12,
        );
        t.row([
            p.name.clone(),
            f(p.oi, 1),
            f(roof.attainable(p.oi) / 1e12, 2),
            f(p.achieved_flops / 1e12, 2),
            f(p.fraction_of_attainable * 100.0, 1),
        ]);
    }
    t.print();
    println!(
        "\nPaper: at OI 15.2 Op/B, AGX+FlexGen reaches 6.6% of attainable, \
         AGX+ReKV ~15%, V-Rex8 71.5% (10.8x over AGX+FlexGen)."
    );
}
