//! Fleet-scale simulator-throughput bench: how many offered sessions
//! per wall-clock second does the serving core sustain?
//!
//! The figure/table sweeps measure the *simulated* system; this bin
//! measures the *simulator*. It drives [`vrex_system::serve_stream`]
//! over a streaming open-loop Poisson fleet
//! ([`vrex_workload::traffic::OpenLoopConfig`]) — the fleet is never
//! materialized, so 10⁵–10⁶-session runs hold only the active working
//! set — and reports, per grid point:
//!
//! * **sessions/s (wall)** — offered sessions divided by wall-clock
//!   seconds, the headline throughput number gated by `--floor`;
//! * **sim/wall** — simulated seconds per wall second (how much faster
//!   than real time the simulator runs the fleet);
//! * the [`vrex_system::ServeCounters`] event-loop telemetry under
//!   `--verbose`.
//!
//! Axes: fleet size (10³/10⁴/10⁵/10⁶ sessions) × admission
//! (reject-only vs. tiered+prefetch) × event core ([`QueueKind::Heap`]
//! vs. [`QueueKind::Wheel`]), each replicated over seeds on the shared
//! sweep pool ([`vrex_bench::par`]) with wall times averaged. The 10⁶
//! tier runs reject-only with a single seed (it is the scale
//! demonstration, not a statistics point) and doubles as the
//! working-set gate: because the open-loop steady state is
//! O(λ · patience), its event-loop peaks (queue/active/pending) must
//! stay flat relative to the 10⁵ tier — a peak that grows with fleet
//! size means the working set has become O(fleet) and the gate trips.
//!
//! Usage: `fleet_scale [--smoke] [--verbose] [--json PATH]
//! [--floor SESSIONS_PER_S] [--sessions N]`
//!
//! * `--smoke` — the CI-sized grid: one seed, the 10⁵-session fleet
//!   only on the cheap reject-only×wheel corner, and the fleet-size
//!   axis capped at 10⁵ unless `--sessions` raises it (the
//!   `bench_serve` harness passes `--sessions 1000000` to keep the
//!   million-session row in CI);
//! * `--json PATH` — write the rows as a JSON array (merged into
//!   `BENCH_serve.json` by the `bench_serve` harness);
//! * `--floor N` — assert every row sustains at least N offered
//!   sessions per wall second (default 2000, more than an order of
//!   magnitude under the slowest measured row — ~37K sessions/s for
//!   the 10⁵ fleet on a single dev-box core — so the gate trips on
//!   structural regressions, e.g. an accidental O(fleet) rescan, not
//!   on runner noise);
//! * `--sessions N` — cap the fleet-size axis at N sessions (default
//!   10⁶ full, 10⁵ smoke); tiers above the cap are dropped, and the
//!   cap itself becomes a tier when it is not already one.

use std::io::Write;
use std::time::Instant;

use vrex_bench::par::{nested_split, par_map_with_workers, workers};
use vrex_bench::report::{banner, f, Table};
use vrex_model::ModelConfig;
use vrex_system::{
    serve_stream, Method, PlatformSpec, QueueKind, ServeConfig, ServeReport, StepPriceCache,
    SystemModel,
};
use vrex_workload::traffic::OpenLoopConfig;

/// Mean arrival rate λ (sessions/s). V-Rex48+ReSV at a 16K-token
/// initial cache sustains ~21 concurrent real-time streams of ~15 s
/// each (≈1.4 sessions/s of service capacity), so 1.2/s keeps the
/// fleet loaded — full admission queue, steady rejections — without
/// unbounded queue growth: the steady-state working set is
/// O(λ · patience), independent of total fleet size.
const ARRIVAL_RATE_PER_S: f64 = 1.2;

/// One grid point: a fleet size × admission policy × event core.
struct Unit {
    sessions: usize,
    tiered: bool,
    queue: QueueKind,
    seeds: &'static [u64],
}

/// One measured row (seed-averaged).
struct Row {
    sessions: usize,
    tiered: bool,
    queue: QueueKind,
    replicas: usize,
    wall_s: f64,
    sessions_per_wall_s: f64,
    sim_vs_wall: f64,
    admitted: usize,
    rejected: usize,
    report: ServeReport,
}

const FULL_SEEDS: &[u64] = &[11, 12, 13];
const SMOKE_SEEDS: &[u64] = &[11];
/// The 10⁶ tier is the scale demonstration, not a statistics point:
/// one seed regardless of mode keeps it inside the bench budget.
const SCALE_SEEDS: &[u64] = &[11];
const SCALE_TIER: usize = 1_000_000;

fn grid(smoke: bool, max_sessions: usize) -> Vec<Unit> {
    let mut tiers: Vec<usize> = [1_000usize, 10_000, 100_000, SCALE_TIER]
        .into_iter()
        .filter(|&s| s <= max_sessions)
        .collect();
    if tiers.last() != Some(&max_sessions) {
        tiers.push(max_sessions);
    }
    let mut units = Vec::new();
    for &sessions in &tiers {
        let seeds: &'static [u64] = if sessions >= SCALE_TIER {
            SCALE_SEEDS
        } else if smoke {
            SMOKE_SEEDS
        } else {
            FULL_SEEDS
        };
        for &tiered in &[false, true] {
            for &queue in &[QueueKind::Heap, QueueKind::Wheel] {
                // The 10⁶ tier is reject-only in every mode (tiered
                // admission at that scale buys no new information for
                // minutes of wall time); smoke additionally keeps the
                // 10⁵/10⁶ fleets only on their cheapest corner, the
                // 10⁴ tier reject-only over both cores, the 10³ tier
                // fully covered.
                if sessions >= SCALE_TIER && tiered {
                    continue;
                }
                if smoke {
                    let keep = match sessions {
                        0..=1_000 => true,
                        1_001..=10_000 => !tiered,
                        _ => !tiered && queue == QueueKind::Wheel,
                    };
                    if !keep {
                        continue;
                    }
                }
                units.push(Unit {
                    sessions,
                    tiered,
                    queue,
                    seeds,
                });
            }
        }
    }
    units
}

fn measure(u: &Unit) -> Row {
    let model = ModelConfig::llama3_8b();
    let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
    let cfg = if u.tiered {
        ServeConfig::real_time_tiered(32_000)
    } else {
        ServeConfig::real_time(32_000)
    }
    .with_queue(u.queue);
    let mut wall_s = 0.0;
    let mut last: Option<ServeReport> = None;
    for &seed in u.seeds {
        let mut source = OpenLoopConfig {
            sessions: u.sessions,
            arrival_rate_per_s: ARRIVAL_RATE_PER_S,
            turns: 1,
            seed,
        }
        .stream();
        // The price cache stays within the replica: memoized batch
        // shapes are part of the simulator's steady-state throughput,
        // cold-start pricing is not amortized across seeds.
        let mut prices = StepPriceCache::new(&sys, &model);
        let clock = Instant::now();
        let report = serve_stream(&mut prices, &mut source, &cfg);
        wall_s += clock.elapsed().as_secs_f64();
        assert_eq!(report.offered, u.sessions, "open-loop fleet fully offered");
        last = Some(report);
    }
    let replicas = u.seeds.len();
    let report = last.expect("at least one seed");
    let mean_wall = wall_s / replicas as f64;
    Row {
        sessions: u.sessions,
        tiered: u.tiered,
        queue: u.queue,
        replicas,
        wall_s: mean_wall,
        sessions_per_wall_s: u.sessions as f64 / mean_wall,
        sim_vs_wall: report.makespan_s / mean_wall,
        admitted: report.admitted,
        rejected: report.rejected,
        report,
    }
}

fn queue_label(q: QueueKind) -> &'static str {
    match q {
        QueueKind::Heap => "heap",
        QueueKind::Wheel => "wheel",
        QueueKind::Auto => "auto",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let verbose = args.iter().any(|a| a == "--verbose");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let floor: f64 = args
        .iter()
        .position(|a| a == "--floor")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--floor takes a number"))
        .unwrap_or(2000.0);
    let max_sessions: usize = args
        .iter()
        .position(|a| a == "--sessions")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--sessions takes a count"))
        .unwrap_or(if smoke { 100_000 } else { SCALE_TIER });

    banner(if smoke {
        "Fleet-scale simulator throughput (smoke)"
    } else {
        "Fleet-scale simulator throughput"
    });
    println!(
        "V-Rex48 + ReSV, open-loop Poisson λ = {ARRIVAL_RATE_PER_S}/s, \
         32K initial cache, floor {floor:.0} sessions/s over {} worker(s)\n",
        workers()
    );

    let units = grid(smoke, max_sessions);
    let clock = Instant::now();
    // Each unit is a single-device serve with no inner fan-out, so the
    // worker split is trivially (workers, 1) — recorded in the JSON so
    // nested sweeps and this flat one report through the same fields.
    let (outer_workers, inner_workers) = nested_split(units.len(), 1);
    let rows = par_map_with_workers(&units, outer_workers, measure);
    let sweep_wall = clock.elapsed().as_secs_f64();

    let mut t = Table::new([
        "Sessions",
        "Admission",
        "Queue",
        "Seeds",
        "Wall (s)",
        "Sessions/s",
        "Sim/wall",
        "Admit",
        "Reject",
    ]);
    for r in &rows {
        t.row([
            r.sessions.to_string(),
            if r.tiered { "tiered" } else { "reject" }.to_string(),
            queue_label(r.queue).to_string(),
            r.replicas.to_string(),
            f(r.wall_s, 3),
            f(r.sessions_per_wall_s, 0),
            f(r.sim_vs_wall, 0),
            r.admitted.to_string(),
            r.rejected.to_string(),
        ]);
    }
    t.print();

    if verbose {
        println!("\nEvent-loop counters (last replica per row):");
        let mut ct = Table::new([
            "Sessions",
            "Admission",
            "Queue",
            "Events",
            "Arrive",
            "Patience",
            "Ready",
            "StepDone",
            "Passes",
            "Checks",
            "Batches",
            "Members",
            "Pushes",
            "Q peak",
            "Act peak",
            "Pend peak",
        ]);
        for r in &rows {
            let c = r.report.counters;
            ct.row([
                r.sessions.to_string(),
                if r.tiered { "tiered" } else { "reject" }.to_string(),
                queue_label(r.queue).to_string(),
                c.events_fired().to_string(),
                c.arrival_events.to_string(),
                c.patience_events.to_string(),
                c.work_ready_events.to_string(),
                c.step_complete_events.to_string(),
                c.admission_passes.to_string(),
                c.admission_checks.to_string(),
                c.batches_formed.to_string(),
                c.batch_members.to_string(),
                c.queue_pushes.to_string(),
                c.queue_peak.to_string(),
                c.active_peak.to_string(),
                c.pending_peak.to_string(),
            ]);
        }
        ct.print();
    }

    if let Some(path) = json_path {
        let mut records = Vec::new();
        for r in &rows {
            let c = r.report.counters;
            records.push(format!(
                "  {{\"sessions\": {}, \"admission\": \"{}\", \"queue\": \"{}\", \
                 \"replicas\": {}, \"workers\": {}, \
                 \"outer_workers\": {outer_workers}, \
                 \"inner_workers\": {inner_workers}, \"wall_s\": {:.6}, \
                 \"sessions_per_wall_s\": {:.1}, \
                 \"sim_vs_wall\": {:.1}, \"admitted\": {}, \"rejected\": {}, \
                 \"events_fired\": {}, \"batches_formed\": {}, \"queue_peak\": {}, \
                 \"active_peak\": {}, \"pending_peak\": {}}}",
                r.sessions,
                if r.tiered { "tiered" } else { "reject" },
                queue_label(r.queue),
                r.replicas,
                workers(),
                r.wall_s,
                r.sessions_per_wall_s,
                r.sim_vs_wall,
                r.admitted,
                r.rejected,
                c.events_fired(),
                c.batches_formed,
                c.queue_peak,
                c.active_peak,
                c.pending_peak,
            ));
        }
        let json = format!("[\n{}\n]\n", records.join(",\n"));
        let mut out = std::fs::File::create(&path).expect("create fleet_scale json");
        out.write_all(json.as_bytes())
            .expect("write fleet_scale json");
        println!("\nwrote {path}");
    }

    eprintln!(
        "sweep wall time: {:.2} s over {} worker(s)",
        sweep_wall,
        workers()
    );

    // The throughput gate: every row must sustain the floor. The
    // default floor sits an order of magnitude under the slowest
    // measured row, so it trips on structural regressions (an
    // accidental O(fleet) rescan), not on runner noise.
    let mut floored = false;
    for r in &rows {
        if r.sessions_per_wall_s < floor {
            floored = true;
            eprintln!(
                "FLOOR: {} sessions, {}, {}: {:.0} sessions/s < floor {:.0}",
                r.sessions,
                if r.tiered { "tiered" } else { "reject" },
                queue_label(r.queue),
                r.sessions_per_wall_s,
                floor
            );
        }
    }
    assert!(
        !floored,
        "fleet-scale throughput fell under the floor; see stderr"
    );
    println!("\nOK: every row >= {floor:.0} offered sessions per wall second.");

    // The working-set gate: the open-loop steady state is
    // O(λ · patience), so the event-loop peaks of a 10⁶-session row
    // must stay flat relative to the matching 10⁵ row (2× headroom for
    // seed noise in the transient). A peak that scales with the fleet
    // means admission state has silently become O(fleet).
    for big in rows.iter().filter(|r| r.sessions >= SCALE_TIER) {
        let Some(small) = rows
            .iter()
            .find(|r| r.sessions == 100_000 && r.tiered == big.tiered && r.queue == big.queue)
        else {
            continue;
        };
        let (b, s) = (big.report.counters, small.report.counters);
        for (label, bp, sp) in [
            ("queue_peak", b.queue_peak, s.queue_peak),
            ("active_peak", b.active_peak, s.active_peak),
            ("pending_peak", b.pending_peak, s.pending_peak),
        ] {
            assert!(
                bp <= sp.max(1) * 2,
                "working set grew with fleet size: {label} is {bp} at {} sessions \
                 vs {sp} at 100000 ({}, {})",
                big.sessions,
                if big.tiered { "tiered" } else { "reject" },
                queue_label(big.queue),
            );
        }
        println!(
            "OK: {} sessions working set flat vs 100000 ({}, {}): \
             queue {} vs {}, active {} vs {}, pending {} vs {}.",
            big.sessions,
            if big.tiered { "tiered" } else { "reject" },
            queue_label(big.queue),
            b.queue_peak,
            s.queue_peak,
            b.active_peak,
            s.active_peak,
            b.pending_peak,
            s.pending_peak,
        );
    }
}
