//! Fig. 19: ReSV ablation — accuracy (functional proxy) and speedup
//! (system model) for VideoLLM-Online, ReSV w/o clustering, and ReSV.

use vrex_bench::report::{banner, f, Table};
use vrex_core::resv::{ResvConfig, ResvPolicy};
use vrex_model::ModelConfig;
use vrex_system::{Method, PlatformSpec, SystemModel};
use vrex_workload::accuracy::{evaluate_policy, EvalConfig};
use vrex_workload::{CoinTask, COIN_TASKS};

fn main() {
    let func_cfg = ModelConfig::small();
    let sys_model = ModelConfig::llama3_8b();
    let eval = EvalConfig {
        frames: 16,
        ..EvalConfig::default()
    };

    // Functional accuracy proxy, averaged over the five COIN tasks.
    let avg = |mk: &mut dyn FnMut(&ModelConfig) -> Box<dyn vrex_model::RetrievalPolicy>| {
        let mut acc = 0.0;
        let mut ratio = 0.0;
        for task in COIN_TASKS {
            let mut p = mk(&func_cfg);
            let r = evaluate_policy(&func_cfg, task, p.as_mut(), eval);
            acc += r.proxy_top1;
            ratio += r.frame_ratio_pct;
        }
        (acc / 5.0, ratio / 5.0)
    };
    let vanilla_acc = COIN_TASKS
        .iter()
        .map(|t: &CoinTask| t.reference().vanilla_top1)
        .sum::<f64>()
        / 5.0;
    let (acc_nc, ratio_nc) =
        avg(&mut |cfg| Box::new(ResvPolicy::new(cfg, ResvConfig::without_clustering())));
    let (acc_resv, ratio_resv) =
        avg(&mut |cfg| Box::new(ResvPolicy::new(cfg, ResvConfig::paper_defaults())));

    // System speedup at 40K over the vanilla (FlexGen-offloaded) edge
    // baseline.
    let base = SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen)
        .frame_step(&sys_model, 40_000, 1)
        .latency_ps as f64;
    let speedup = |m: Method, vrex: bool| {
        let p = if vrex {
            PlatformSpec::vrex8()
        } else {
            PlatformSpec::agx_orin()
        };
        base / SystemModel::new(p, m)
            .frame_step(&sys_model, 40_000, 1)
            .latency_ps as f64
    };

    banner("Fig. 19: ReSV ablation (accuracy proxy + frame-processing speedup @ 40K)");
    let mut t = Table::new([
        "Config",
        "Proxy Top-1 (avg)",
        "Acc drop vs vanilla",
        "Frame ratio %",
        "Speedup (edge system)",
    ]);
    t.row([
        "VideoLLM-Online".to_string(),
        f(vanilla_acc, 1),
        "--".to_string(),
        "100.0".to_string(),
        "1.0x".to_string(),
    ]);
    t.row([
        "ReSV w/o clustering".to_string(),
        f(acc_nc, 1),
        f(vanilla_acc - acc_nc, 2),
        f(ratio_nc, 1),
        format!("{:.1}x", speedup(Method::ReSVNoClustering, false)),
    ]);
    t.row([
        "ReSV (full)".to_string(),
        f(acc_resv, 1),
        f(vanilla_acc - acc_resv, 2),
        f(ratio_resv, 1),
        format!("{:.1}x", speedup(Method::ReSV, true)),
    ]);
    t.print();
    println!(
        "\nPaper: ReSV w/o clustering 1.6x with -0.3% accuracy; full ReSV 9.4x \
         with -0.8% accuracy. (Speedups here include the V-Rex hardware for the \
         full configuration, as the paper's 9.4x does.)"
    );
}
