//! Serving capacity sweep: how many concurrent real-time streams does
//! each platform sustain?
//!
//! Extends the paper's real-time story (Figs. 13/15) from one stream to
//! a fleet: COIN sessions with staggered arrivals are offered to each
//! platform+method pair through the continuous-batching scheduler, and
//! a platform "sustains" a fleet size when every offered session is
//! admitted and stays real-time (worst frame lag ≤ 2/FPS at 2 FPS).
//!
//! Usage: `serve_capacity [--smoke]` — `--smoke` shrinks the sweep for
//! CI smoke runs.
//!
//! Each platform × cache-length unit runs on its own sweep worker
//! ([`vrex_bench::par`]), sharing one [`StepPriceCache`] across its
//! fleet sizes; tables print in grid order afterwards so stdout stays
//! deterministic.

use vrex_bench::par::par_map;
use vrex_bench::report::{banner, f, Table};
use vrex_model::ModelConfig;
use vrex_system::{
    serve_with_cache, Method, PlatformSpec, ServeConfig, ServeReport, StepPriceCache, SystemModel,
};
use vrex_workload::traffic::TrafficConfig;

struct SweepPoint {
    sessions: usize,
    report: ServeReport,
}

fn sweep(
    sys: &SystemModel,
    model: &ModelConfig,
    cache: usize,
    fleet_sizes: &[usize],
    turns: usize,
) -> Vec<SweepPoint> {
    // One price cache across the fleet sizes: the growing fleets
    // replay the same per-session cache trajectories.
    let mut prices = StepPriceCache::new(sys, model);
    fleet_sizes
        .iter()
        .map(|&sessions| {
            let plans = TrafficConfig {
                sessions,
                turns,
                // Ramp the fleet up over half a minute of wall clock.
                arrival_spread_s: 30.0,
                seed: 42,
            }
            .generate();
            let report = serve_with_cache(&mut prices, &plans, &ServeConfig::real_time(cache));
            SweepPoint { sessions, report }
        })
        .collect()
}

/// Largest offered fleet the system sustained fully real-time.
fn capacity(points: &[SweepPoint]) -> usize {
    points
        .iter()
        .filter(|p| p.report.sustained_real_time())
        .map(|p| p.sessions)
        .max()
        .unwrap_or(0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let model = ModelConfig::llama3_8b();
    let systems = [
        SystemModel::new(PlatformSpec::a100(), Method::FlexGen),
        SystemModel::new(PlatformSpec::a100(), Method::InfiniGen),
        SystemModel::new(PlatformSpec::a100(), Method::ReKV),
        SystemModel::new(PlatformSpec::vrex48(), Method::ReSV),
    ];
    let caches: &[usize] = if smoke { &[32_000] } else { &[8_000, 32_000] };
    let fleet_sizes: &[usize] = if smoke {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 12, 16, 24]
    };
    let turns = if smoke { 1 } else { 2 };

    let mut summary = Table::new(["System", "Cache", "Sustained real-time sessions"]);
    // Fan the (cache, platform) grid out across sweep workers, then
    // render in grid order.
    let units: Vec<(usize, &SystemModel)> = caches
        .iter()
        .flat_map(|&cache| systems.iter().map(move |sys| (cache, sys)))
        .collect();
    let results = par_map(&units, |&(cache, sys)| {
        sweep(sys, &model, cache, fleet_sizes, turns)
    });
    let mut results = results.into_iter();
    for &cache in caches {
        banner(&format!(
            "Serving sweep at {}K cache tokens ({} turns/session, 2 FPS)",
            cache / 1000,
            turns
        ));
        let mut t = Table::new([
            "System",
            "Offered",
            "Admitted",
            "Queued",
            "Rejected",
            "Real-time",
            "p50 lag (s)",
            "p99 lag (s)",
            "p99 TTFT (s)",
            "p99 TPOT (s)",
        ]);
        for sys in &systems {
            let points = results.next().expect("one sweep per grid unit");
            for p in &points {
                let r = &p.report;
                t.row([
                    sys.label(),
                    p.sessions.to_string(),
                    r.admitted.to_string(),
                    r.queued.to_string(),
                    r.rejected.to_string(),
                    format!("{}/{}", r.real_time_sessions, r.admitted),
                    f(r.frame_lag_p50_s, 3),
                    f(r.frame_lag_p99_s, 3),
                    f(r.ttft_p99_s, 3),
                    f(r.tpot_p99_s, 3),
                ]);
            }
            summary.row([
                sys.label(),
                format!("{}K", cache / 1000),
                capacity(&points).to_string(),
            ]);
        }
        t.print();
    }

    banner("Sustained real-time capacity (max offered fleet fully real-time)");
    summary.print();
    println!(
        "\nGPU baselines saturate early: FlexGen refetches the whole cache per \
         frame, so its per-frame service time already exceeds the frame interval \
         at long cache lengths, and queued sessions pile up or get rejected. \
         V-Rex48's clustered retrieval keeps per-frame work small enough to \
         batch many concurrent streams inside the real-time budget."
    );
}
