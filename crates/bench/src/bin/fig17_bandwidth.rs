//! Fig. 17: DRAM bandwidth usage of V-Rex48 over two decoder layers of
//! the frame-processing stage, showing that KV prediction and retrieval
//! overlap LLM computation with minimal interference.

use vrex_bench::report::{banner, f, Table};
use vrex_hwsim::Engine;
use vrex_model::ModelConfig;
use vrex_system::pipeline::{layer_costs, Workload};
use vrex_system::{Method, PlatformSpec};

fn main() {
    let model = ModelConfig::llama3_8b();
    let platform = PlatformSpec::vrex48();
    let w = Workload::frame(&model, 40_000, 1);
    let c = layer_costs(&platform, Method::ReSV, &w);

    // Split the dense time into QKV-generation and FFN by their FLOP
    // shares (projections ~20%, FFN ~80% for Llama-3 8B).
    let qkv_ps = c.dense_ps / 5;
    let ffn_ps = c.dense_ps - qkv_ps;
    let qkv_bytes = c.dram_bytes / 5;
    let ffn_bytes = (c.dram_bytes - c.fetch_bytes).saturating_sub(qkv_bytes);

    let mut e = Engine::new();
    let lxe = e.add_resource("LXE");
    let dre = e.add_resource("DRE");
    let pcie = e.add_resource("PCIe->DRAM");
    let dram = e.add_resource("DRAM");

    let mut prev_ffn = None;
    for layer in 0..2 {
        let deps: Vec<_> = prev_ffn.into_iter().collect();
        let qkv = e.schedule(lxe, qkv_ps, &deps, &format!("L{layer} QKV gen"), 0);
        e.schedule(
            dram,
            qkv_ps,
            &deps,
            &format!("L{layer} weights(QKV)"),
            qkv_bytes,
        );
        // KV prediction on the DRE, concurrent with attention.
        let pred = e.schedule(
            dre,
            c.prediction_ps.max(1),
            &[qkv],
            &format!("L{layer} KV prediction"),
            0,
        );
        let attn = e.schedule(
            lxe,
            c.attention_ps,
            &[qkv],
            &format!("L{layer} attention"),
            0,
        );
        e.schedule(
            dram,
            c.attention_ps,
            &[qkv],
            &format!("L{layer} KV read"),
            c.dram_bytes - qkv_bytes - ffn_bytes,
        );
        // Retrieval for the *next* layer runs through most of this one.
        e.schedule(
            pcie,
            c.fetch_ps,
            &[pred],
            &format!("L{layer} KV retrieval"),
            c.fetch_bytes,
        );
        e.schedule(
            dram,
            c.fetch_ps,
            &[pred],
            &format!("L{layer} KV retrieval->DRAM"),
            c.fetch_bytes,
        );
        let ffn = e.schedule(lxe, ffn_ps, &[attn], &format!("L{layer} FFN"), 0);
        e.schedule(
            dram,
            ffn_ps,
            &[attn],
            &format!("L{layer} weights(FFN)"),
            ffn_bytes,
        );
        prev_ffn = Some(ffn);
    }

    banner("Fig. 17: DRAM / PCIe bandwidth over two V-Rex48 layers @ 40K, batch 1");
    let span = e.makespan();
    let buckets = 16;
    let mut t = Table::new([
        "t (us)",
        "DRAM BW (GB/s)",
        "PCIe BW (GB/s)",
        "LXE busy",
        "DRE busy",
    ]);
    for b in 0..buckets {
        let t0 = span * b / buckets;
        let t1 = span * (b + 1) / buckets;
        let dram_bw = e.bandwidth_in_window(dram, t0, t1) / 1e9;
        let pcie_bw = e.bandwidth_in_window(pcie, t0, t1) / 1e9;
        let busy = |r| {
            let tr = e.trace(r);
            let mut busy = 0u64;
            for iv in tr {
                busy += iv.end.min(t1).saturating_sub(iv.start.max(t0));
            }
            if busy * 2 > (t1 - t0) {
                "#"
            } else if busy > 0 {
                "+"
            } else {
                "."
            }
        };
        t.row([
            f(t0 as f64 / 1e6, 1),
            f(dram_bw, 1),
            f(pcie_bw, 2),
            busy(lxe).to_string(),
            busy(dre).to_string(),
        ]);
    }
    t.print();
    println!(
        "\nDRAM peak: {:.0} GB/s; PCIe raw: {:.0} GB/s.",
        platform.dram.peak_bytes_per_s() / 1e9,
        platform.pcie.raw_bytes_per_s() / 1e9
    );
    println!(
        "Paper: KV prediction briefly spikes bandwidth (~600 GB/s) but hides under \
         attention; KV retrieval runs most of the layer at ~1% of DRAM bandwidth \
         (PCIe-bound), so both overlap LLM computation with minimal interference."
    );
    println!(
        "LXE utilization {:.0}%, DRE utilization {:.1}%, PCIe utilization {:.0}%.",
        e.utilization(lxe) * 100.0,
        e.utilization(dre) * 100.0,
        e.utilization(pcie) * 100.0
    );
}
