//! Transient real-time behaviour: queue depth and frame lag over a
//! live session (the user-visible meaning of Fig. 13's "real-time
//! processing" line).

use vrex_bench::report::{banner, f, Table};
use vrex_model::ModelConfig;
use vrex_system::realtime::simulate_session;
use vrex_system::{Method, PlatformSpec, SystemModel};

fn main() {
    let model = ModelConfig::llama3_8b();
    let systems = [
        SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen),
        SystemModel::new(PlatformSpec::agx_orin(), Method::ReKV),
        SystemModel::new(PlatformSpec::vrex8(), Method::ReSV),
    ];

    banner("Live session: 2 FPS camera, 60 s, growing cache");
    let mut t = Table::new([
        "System",
        "Start cache",
        "Processed/offered",
        "Max queue",
        "Mean lag (s)",
        "Max lag (s)",
        "Real-time?",
    ]);
    for sys in &systems {
        for start in [1_000usize, 20_000, 40_000] {
            let r = simulate_session(sys, &model, start, 2.0, 60.0, 1);
            t.row([
                sys.label(),
                format!("{}K", start / 1000),
                format!("{}/{}", r.frames_processed, r.frames_offered),
                r.max_queue_depth.to_string(),
                f(r.mean_lag_s, 2),
                f(r.max_lag_s, 2),
                if r.real_time { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nGPU baselines fall behind as the cache grows — the queue (and the \
         user-visible narration lag) diverges; V-Rex8 stays bounded across the \
         sweep (paper: 3.9-8.3 FPS sustained)."
    );
}
