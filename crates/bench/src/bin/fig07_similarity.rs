//! Fig. 7: (a) cosine similarity of key tokens between adjacent frames,
//! (b) correlation between hash-bit Hamming distance and cosine
//! similarity.
//!
//! Unlike the system-level figures this one is *functional*: a real
//! (small) model prefills a COIN-like stream, and the measured layer
//! keys are analysed exactly as the paper does on its layer-3 keys.

use vrex_bench::report::{banner, f, Table};
use vrex_core::hashbit::HyperplaneSet;
use vrex_model::{ModelConfig, RunStats, SelectAll, StreamingVideoLlm, VideoStream};
use vrex_tensor::ops::{cosine_similarity, pearson_correlation};
use vrex_workload::CoinTask;

fn main() {
    let cfg = ModelConfig::small();
    let mut llm = StreamingVideoLlm::new(cfg.clone(), 42);
    let mut policy = SelectAll::new();
    let mut stats = RunStats::new(&cfg, false);
    let mut video =
        VideoStream::new(CoinTask::Step.video_config(cfg.tokens_per_frame, cfg.hidden_dim, 7));
    let n_frames: usize = 24;
    for _ in 0..n_frames {
        let frame = video.next_frame();
        llm.process_frame(&frame, &mut policy, &mut stats);
    }

    // Layer-3 keys of head 0 (paper measures the 3rd layer).
    let layer = 2.min(cfg.n_layers - 1);
    let keys = llm.cache().layer(layer).keys(0);
    let tpf = cfg.tokens_per_frame;

    banner("Fig. 7(a): cosine similarity of keys between frames (layer 3)");
    let mut t = Table::new(["Frame distance", "Mean cosine similarity"]);
    for dist in [1usize, 2, 4, 8, 16] {
        let mut sims = Vec::new();
        for frame in 0..n_frames.saturating_sub(dist) {
            for tok in 0..tpf {
                let a = keys.row(frame * tpf + tok);
                let b = keys.row((frame + dist) * tpf + tok);
                sims.push(cosine_similarity(a, b));
            }
        }
        let mean = sims.iter().sum::<f32>() / sims.len() as f32;
        t.row([dist.to_string(), f(mean as f64, 3)]);
    }
    t.print();
    println!("Paper Fig. 7a: bright diagonal blocks — adjacent frames highly similar.");

    banner("Fig. 7(b): Hamming distance vs cosine similarity (Nhp = 32)");
    let hp = HyperplaneSet::new(cfg.head_dim, 32, 0xC0DE);
    let mut cos = Vec::new();
    let mut ham = Vec::new();
    let n_tokens = keys.rows();
    for i in (0..n_tokens).step_by(3) {
        for j in (i + 1..n_tokens).step_by(7) {
            cos.push(cosine_similarity(keys.row(i), keys.row(j)));
            ham.push(hp.hash(keys.row(i)).hamming_distance(&hp.hash(keys.row(j))) as f32);
        }
    }
    let r = pearson_correlation(&cos, &ham);
    let mut t = Table::new(["Pairs", "Pearson r (cos vs hamming)", "|r|"]);
    t.row([cos.len().to_string(), f(r as f64, 3), f(r.abs() as f64, 3)]);
    t.print();
    println!("Paper Fig. 7b: |correlation| ~ 0.8 — hash bits track cosine similarity.");

    // Bucketed view of the scatter plot.
    let mut t = Table::new(["Cosine bucket", "Mean Hamming distance", "Samples"]);
    for b in 0..5 {
        let lo = -0.2 + 0.25 * b as f32;
        let hi = lo + 0.25;
        let sel: Vec<f32> = cos
            .iter()
            .zip(&ham)
            .filter(|(c, _)| **c >= lo && **c < hi)
            .map(|(_, h)| *h)
            .collect();
        if sel.is_empty() {
            continue;
        }
        let mean = sel.iter().sum::<f32>() / sel.len() as f32;
        t.row([
            format!("[{lo:.2},{hi:.2})"),
            f(mean as f64, 1),
            sel.len().to_string(),
        ]);
    }
    t.print();
}
