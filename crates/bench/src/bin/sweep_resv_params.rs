//! Design-choice sensitivity sweep for ReSV's hyper-parameters
//! (DESIGN.md ablation index): `N_hp` (hash-bit width), `Th_hd`
//! (Hamming clustering threshold), and `Th_r-wics` (WiCSum mass
//! threshold). For each setting the functional model measures the
//! retrieval ratio, attention recall, and cluster occupancy —
//! quantifying the trade-offs behind the paper's chosen
//! `N_hp = 32, Th_hd = 7, Th_wics = 0.3`.

use vrex_bench::par::par_map;
use vrex_bench::report::{banner, f, Table};
use vrex_core::resv::{ResvConfig, ResvPolicy};
use vrex_model::{ModelConfig, RunStats, StreamingVideoLlm, VideoStream};
use vrex_workload::CoinTask;

fn measure(cfg: &ModelConfig, resv: ResvConfig) -> (f64, f64, f64) {
    let mut llm = StreamingVideoLlm::new(cfg.clone(), 42);
    let mut policy = ResvPolicy::new(cfg, resv);
    let mut stats = RunStats::new(cfg, true);
    let mut video =
        VideoStream::new(CoinTask::Step.video_config(cfg.tokens_per_frame, cfg.hidden_dim, 7));
    for _ in 0..14 {
        let frame = video.next_frame();
        llm.process_frame(&frame, &mut policy, &mut stats);
    }
    (
        stats.overall_ratio() * 100.0,
        stats.mean_recall(),
        policy.mean_tokens_per_cluster(),
    )
}

fn main() {
    let cfg = ModelConfig::small();
    let base = ResvConfig::paper_defaults();

    banner("ReSV sweep: hash-bit width N_hp (Th_hd scaled proportionally)");
    let mut t = Table::new(["N_hp", "Th_hd", "ratio %", "recall", "tokens/cluster"]);
    let widths = [8usize, 16, 32, 64];
    for (n_hp, (th_hd, (ratio, recall, occ))) in widths.iter().zip(par_map(&widths, |&n_hp| {
        let th_hd = ((7.0 / 32.0) * n_hp as f64).round() as u32;
        (
            th_hd,
            measure(
                &cfg,
                ResvConfig {
                    n_hyperplanes: n_hp,
                    hamming_threshold: th_hd.max(1),
                    ..base
                },
            ),
        )
    })) {
        t.row([
            n_hp.to_string(),
            th_hd.to_string(),
            f(ratio, 1),
            f(recall, 3),
            f(occ, 1),
        ]);
    }
    t.print();
    println!("Wider signatures cluster more precisely (higher recall per ratio) at\nlinear hash-compute cost — 32 bits is the knee the paper picks.");

    banner("ReSV sweep: Hamming threshold Th_hd @ N_hp = 32");
    let mut t = Table::new(["Th_hd", "ratio %", "recall", "tokens/cluster"]);
    let thresholds = [1u32, 3, 5, 7, 9, 13];
    for (th, (ratio, recall, occ)) in thresholds.iter().zip(par_map(&thresholds, |&th| {
        measure(
            &cfg,
            ResvConfig {
                hamming_threshold: th,
                ..base
            },
        )
    })) {
        t.row([th.to_string(), f(ratio, 1), f(recall, 3), f(occ, 1)]);
    }
    t.print();
    println!("Loose thresholds merge dissimilar tokens: occupancy rises but cluster\nrepresentatives blur, dragging selection quality.");

    banner("ReSV sweep: WiCSum threshold Th_r-wics");
    let mut t = Table::new(["Th_wics", "ratio %", "recall", "recall/ratio"]);
    let wics = [0.05f32, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    for (th, (ratio, recall, _)) in wics.iter().zip(par_map(&wics, |&th| {
        measure(
            &cfg,
            ResvConfig {
                th_wics: th,
                ..base
            },
        )
    })) {
        t.row([
            f(*th as f64, 2),
            f(ratio, 1),
            f(recall, 3),
            f(recall / (ratio / 100.0), 2),
        ]);
    }
    t.print();
    println!("Th_wics is the accuracy/traffic dial: the paper tunes 0.3 to match\nbaseline accuracy at minimum fetched volume.");

    banner("ReSV sweep: clustering on/off x early-exit on/off (cross-check)");
    let mut t = Table::new(["clustering", "early-exit", "ratio %", "recall"]);
    let modes = [(true, true), (true, false), (false, true), (false, false)];
    for ((clustering, early), (ratio, recall, _)) in
        modes.iter().zip(par_map(&modes, |&(clustering, early)| {
            measure(
                &cfg,
                ResvConfig {
                    clustering_enabled: clustering,
                    use_early_exit: early,
                    ..base
                },
            )
        }))
    {
        t.row([
            clustering.to_string(),
            early.to_string(),
            f(ratio, 1),
            f(recall, 3),
        ]);
    }
    t.print();
    println!("Early exit is bit-exact (identical ratio/recall per clustering mode);\nonly the hardware work count changes.");
}
