//! Fig. 15: throughput (FPS) versus the SOTA quantization accelerator
//! (Oaken) at batch 16, with OOM points.

use vrex_bench::report::{banner, Table};
use vrex_model::ModelConfig;
use vrex_system::{Method, PlatformSpec, SystemModel};

fn main() {
    let model = ModelConfig::llama3_8b();
    let batch = 16;
    let systems = [
        SystemModel::new(PlatformSpec::agx_orin(), Method::VanillaInMemory),
        SystemModel::new(PlatformSpec::agx_orin(), Method::Oaken),
        SystemModel::new(PlatformSpec::vrex8(), Method::ReSV),
    ];

    banner("Fig. 15: throughput (FPS, batch 16) vs KV cache length");
    let mut header = vec!["KV len".to_string()];
    header.extend(systems.iter().map(|s| s.label()));
    let mut t = Table::new(header);
    for s in [1_000usize, 5_000, 10_000, 20_000, 40_000] {
        let mut cells = vec![format!("{}K", s / 1000)];
        for sys in &systems {
            cells.push(match sys.fps(&model, s, batch) {
                Some(fps) => format!("{fps:.1}"),
                None => "OOM".to_string(),
            });
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\nPaper: AGX Orin OOMs first as the cache grows; Oaken's 4-bit cache \
         survives longer but fails beyond 20K; V-Rex sustains ~7 FPS at large \
         lengths and never OOMs."
    );
}
