//! Fig. 16: ablation study and latency breakdown — AGX+FlexGen →
//! AGX+ReSV → V-Rex8 KVPU → V-Rex8 All, at 40K cache, batch 1.

use vrex_bench::report::{banner, f, Table};
use vrex_model::ModelConfig;
use vrex_system::ablation::fig16_ladder;

fn main() {
    let model = ModelConfig::llama3_8b();
    let ladder = fig16_ladder(&model, 40_000, 1);
    let base_latency = ladder[0].result.latency_ps as f64;
    let base_energy = ladder[0].result.energy.total_j();

    banner("Fig. 16: cumulative ablation @ 40K cache, batch 1 (frame processing)");
    let mut t = Table::new([
        "Config",
        "Latency (ms)",
        "Speedup",
        "Energy (J)",
        "Energy gain",
        "Pred share %",
        "Fetch (ms)",
    ]);
    for p in &ladder {
        let r = &p.result;
        t.row([
            p.label.to_string(),
            f(r.latency_ms(), 0),
            format!("{:.1}x", base_latency / r.latency_ps as f64),
            f(r.energy.total_j(), 1),
            format!("{:.1}x", base_energy / r.energy.total_j()),
            f(r.prediction_ps as f64 / r.latency_ps as f64 * 100.0, 1),
            f(r.fetch_ps as f64 / 1e9, 0),
        ]);
    }
    t.print();
    println!(
        "\nPaper: AGX+ReSV 2.8x (KV prediction still 48% of latency); \
         V-Rex8 KVPU 6.0x / 9.2x energy (prediction down to 0.5%); \
         V-Rex8 All 8.1x / 10.2x energy."
    );

    banner("Fig. 16 latency breakdown per config");
    let mut t = Table::new([
        "Config",
        "Vision+MLP (ms)",
        "LLM compute (ms)",
        "KV prediction (ms)",
        "Retrieval/fetch (ms)",
    ]);
    for p in &ladder {
        let r = &p.result;
        t.row([
            p.label.to_string(),
            f(r.vision_ps as f64 / 1e9, 0),
            f((r.dense_ps + r.attention_ps) as f64 / 1e9, 0),
            f(r.prediction_ps as f64 / 1e9, 0),
            f(r.fetch_ps as f64 / 1e9, 0),
        ]);
    }
    t.print();
}
