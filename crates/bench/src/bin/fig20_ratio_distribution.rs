//! Fig. 20: retrieval ratio per layer and per attention head — ReSV's
//! dynamic selection versus the fixed ratios of InfiniGenP / ReKV.
//!
//! Functional: a real (small) model streams COIN-like video under the
//! real ReSV policy; per-layer and per-head ratios come from the
//! measured selections.

use vrex_bench::report::{banner, f, Table};
use vrex_core::resv::{ResvConfig, ResvPolicy};
use vrex_model::{ModelConfig, RunStats, StreamingVideoLlm, VideoStream};
use vrex_workload::CoinTask;

fn main() {
    let cfg = ModelConfig::small();
    let mut llm = StreamingVideoLlm::new(cfg.clone(), 3);
    let mut policy = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
    let mut stats = RunStats::new(&cfg, false);
    let mut video =
        VideoStream::new(CoinTask::Step.video_config(cfg.tokens_per_frame, cfg.hidden_dim, 11));
    for _ in 0..20 {
        let frame = video.next_frame();
        llm.process_frame(&frame, &mut policy, &mut stats);
    }

    banner("Fig. 20: retrieval ratio per layer (ReSV vs fixed baselines)");
    let mut t = Table::new(["Layer", "ReSV %", "InfiniGenP %", "ReKV %"]);
    for l in 0..cfg.n_layers {
        t.row([
            l.to_string(),
            f(stats.layer_ratio(l) * 100.0, 1),
            "50.8".to_string(),
            "58.4".to_string(),
        ]);
    }
    t.print();

    banner("Fig. 20: retrieval ratio per head");
    let mut t = Table::new(["Head", "ReSV %", "InfiniGenP %", "ReKV %"]);
    for h in 0..cfg.n_heads {
        t.row([
            h.to_string(),
            f(stats.head_ratio(h) * 100.0, 1),
            "50.8".to_string(),
            "58.4".to_string(),
        ]);
    }
    t.print();

    let ratios: Vec<f64> = (0..cfg.n_layers).map(|l| stats.layer_ratio(l)).collect();
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nReSV layer-ratio spread: {:.1}%..{:.1}% (overall {:.1}%).",
        min * 100.0,
        max * 100.0,
        stats.overall_ratio() * 100.0
    );
    println!(
        "Paper: per-layer selection rates vary from 4.2% to ~44% while fixed \
         top-k methods are flat; ReSV retrieves ~3x fewer tokens than ReKV on \
         average."
    );
}
