//! Scalability sweep (the conclusion's "scalable deployment in
//! large-scale server environments" claim): per-frame latency, FPS and
//! energy as the V-Rex core count grows from edge (8) to server (48+),
//! at fixed workload.

use vrex_bench::report::{banner, f, Table};
use vrex_hwsim::area_power::{chip_area_mm2, vrex_core_total};
use vrex_hwsim::vrexunits::VRexChipConfig;
use vrex_model::ModelConfig;
use vrex_system::platform::ComputeSpec;
use vrex_system::{Method, PlatformSpec, SystemModel};

fn main() {
    let model = ModelConfig::llama3_8b();

    banner("V-Rex core-count scaling @ 40K cache (server memory system)");
    let mut t = Table::new([
        "Cores",
        "Peak TFLOPS",
        "Area mm^2",
        "ms/frame (b1)",
        "ms/frame (b8)",
        "TPOT ms",
        "FPS (b8)",
    ]);
    for n_cores in [4usize, 8, 16, 32, 48, 64] {
        let mut platform = PlatformSpec::vrex48();
        platform.compute = ComputeSpec::VRex(VRexChipConfig {
            core: Default::default(),
            n_cores,
        });
        platform.power_w = vrex_core_total().power_mw / 1000.0 * n_cores as f64 + 55.0 + 15.4 + 8.0;
        let sys = SystemModel::new(platform.clone(), Method::ReSV);
        let b1 = sys.frame_step(&model, 40_000, 1);
        let b8 = sys.frame_step(&model, 40_000, 8);
        let tpot = sys.decode_step(&model, 40_000, 1);
        t.row([
            n_cores.to_string(),
            f(platform.compute.peak_flops() / 1e12, 1),
            f(chip_area_mm2(n_cores), 1),
            f(b1.latency_ms(), 1),
            f(b8.latency_ms(), 1),
            f(tpot.latency_ms(), 1),
            f(sys.fps(&model, 40_000, 8).unwrap_or(0.0), 1),
        ]);
    }
    t.print();
    println!(
        "\nCompute scales with cores; at long caches the offload path (PCIe) \
         becomes the asymptotic limiter — the paper's motivation for the KVMU's \
         bandwidth efficiency rather than ever-larger compute."
    );

    banner("Speedup over A100+FlexGen at each scale (frame, batch 8)");
    let a100 = SystemModel::new(PlatformSpec::a100(), Method::FlexGen);
    let base = a100.frame_step(&model, 40_000, 8).latency_ms();
    let mut t = Table::new(["Cores", "Speedup"]);
    for n_cores in [8usize, 16, 32, 48, 64] {
        let mut platform = PlatformSpec::vrex48();
        platform.compute = ComputeSpec::VRex(VRexChipConfig {
            core: Default::default(),
            n_cores,
        });
        let sys = SystemModel::new(platform, Method::ReSV);
        let ms = sys.frame_step(&model, 40_000, 8).latency_ms();
        t.row([n_cores.to_string(), format!("{:.1}x", base / ms)]);
    }
    t.print();
}
