//! Fig. 4: motivation — (a) KV memory footprint growth, (b) end-to-end
//! latency breakdown vs. cache length, (c) KV-retrieval overhead split.

use vrex_bench::report::{banner, f, Table};
use vrex_model::ModelConfig;
use vrex_system::pipeline::{layer_costs, Workload};
use vrex_system::{Method, PlatformSpec, SystemModel};

fn main() {
    let model = ModelConfig::llama3_8b();

    // ---------------------------------------------------------------
    banner("Fig. 4(a): Memory footprint, 10 FPS streaming, batch 4");
    let mut t = Table::new([
        "Video duration (min)",
        "Model params (GB)",
        "KV cache (GB)",
        "Total (GB)",
    ]);
    let params_gb = model.param_bytes() as f64 / 1e9;
    for minutes in [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 20.0, 30.0] {
        let kv = model.kv_footprint_bytes(minutes * 60.0, 10.0, 4) as f64 / 1e9;
        t.row([
            f(minutes, 0),
            f(params_gb, 1),
            f(kv, 1),
            f(params_gb + kv, 1),
        ]);
    }
    t.print();
    println!("Edge GPU capacity: 32 GB — exceeded within minutes (paper Fig. 4a).");

    // ---------------------------------------------------------------
    banner(
        "Fig. 4(b): E2E latency breakdown, A100 + InfiniGen (26 frames, 25 q-tokens, 39 a-tokens)",
    );
    let sys = SystemModel::new(PlatformSpec::a100(), Method::InfiniGen);
    let mut t = Table::new([
        "KV len",
        "Vision+MLP %",
        "Prefill %",
        "Generation %",
        "Total (s)",
    ]);
    for s in [1_000usize, 10_000, 20_000, 40_000, 80_000] {
        let b = sys.interaction(&model, s, 1, 26, 25, 39);
        let total = b.total_ps() as f64;
        t.row([
            format!("{}K", s / 1000),
            f(b.vision_ps as f64 / total * 100.0, 1),
            f(b.prefill_ps as f64 / total * 100.0, 1),
            f(b.generation_ps as f64 / total * 100.0, 1),
            f(total / 1e12, 2),
        ]);
    }
    t.print();
    println!("Paper: at 80K, prefill takes 83% of end-to-end latency.");

    // ---------------------------------------------------------------
    banner("Fig. 4(c): retrieval overhead, A100 + InfiniGenP prefill @ 40K");
    let w = Workload::frame(&model, 40_000, 1);
    let c = layer_costs(&PlatformSpec::a100(), Method::InfiniGenP, &w);
    let compute = c.dense_ps + c.attention_ps;
    let total = compute + c.prediction_ps + c.fetch_ps;
    let mut t = Table::new(["Component", "Latency share %"]);
    t.row([
        "LLM compute".to_string(),
        f(compute as f64 / total as f64 * 100.0, 1),
    ]);
    t.row([
        "KV prediction".to_string(),
        f(c.prediction_ps as f64 / total as f64 * 100.0, 1),
    ]);
    t.row([
        "KV cache fetch".to_string(),
        f(c.fetch_ps as f64 / total as f64 * 100.0, 1),
    ]);
    t.print();
    println!("Paper: KV prediction 40%, KV fetch 39%, LLM 21% of serial work.");
}
