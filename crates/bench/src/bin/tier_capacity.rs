//! Tiered-memory serving sweep: does spilling cold KV down the
//! HBM → host-DRAM → SSD hierarchy beat rejecting sessions?
//!
//! `serve_capacity` asks how many streams a platform sustains when
//! overflow sessions are *rejected*. This sweep re-asks the question
//! under the tiered admission policy: overflow sessions are admitted
//! and the coldest streams' resident KV is spilled to host DRAM / SSD
//! (`vrex_system::memory`), with restores either demand-fetched or
//! speculatively prefetched (InfiniGen-style) so the migration overlaps
//! the wait window and the step's compute.
//!
//! Axes: fleet size × cache length × device-memory budget (full vs.
//! halved HBM at equal hierarchy) × admission policy (reject-only /
//! tiered demand / tiered + prefetch / tiered + cluster, where the
//! last spills and restores at **hash-cluster** granularity with
//! WiCSum-mass victim ranking instead of whole-session LRU).
//!
//! Usage: `tier_capacity [--smoke] [--overlap]` — `--smoke` shrinks
//! the sweep for CI and asserts the headline results: at equal device
//! memory, at least one configuration admits **more real-time
//! streams** under tiering than under reject-only admission, and on
//! the headline V-Rex48+ReSV unit the cluster-granular policy moves
//! strictly fewer restore bytes with strictly less tier-exposed time
//! than flat tiered+prefetch while sustaining at least its real-time
//! capacity. `--overlap` adds a fifth policy row per unit — tiered+prefetch
//! under the **resource-timeline** execution model
//! (`ServeConfig::overlap`): restores, fetches, and writebacks as
//! contended PCIe-link tasks with up to two batches in flight — and
//! asserts that on the headline V-Rex48+ReSV configuration the
//! overlapped capacity is at least the serialized count at every cache
//! length. Without the flag the stdout is byte-identical to the
//! serialized-only sweep, so the pinned capacity rows never move.
//!
//! Each platform × cache-length unit runs on its own sweep worker
//! ([`vrex_bench::par`]) and shares one [`StepPriceCache`] across its
//! 4 policies × 6 fleet sizes, so a repeated batch shape is priced
//! once per unit rather than once per serve. Tables print in grid
//! order afterwards — stdout is byte-identical to the sequential
//! sweep; the wall-clock line goes to stderr.

use std::time::Instant;

use vrex_bench::par::{par_map, workers};
use vrex_bench::report::{banner, f, Table};
use vrex_model::ModelConfig;
use vrex_system::memory::AdmissionPolicy;
use vrex_system::{
    serve_with_cache, Method, PlatformSpec, ServeConfig, ServeReport, StepPriceCache, SystemModel,
};
use vrex_workload::traffic::TrafficConfig;

struct Policy {
    label: &'static str,
    admission: AdmissionPolicy,
    /// Resource-timeline execution ([`vrex_system::ServeConfig`]'s
    /// `overlap` switch).
    overlap: bool,
}

fn policies(overlap: bool) -> Vec<Policy> {
    let mut v = vec![
        Policy {
            label: "reject-only",
            admission: AdmissionPolicy::RejectOnly,
            overlap: false,
        },
        Policy {
            label: "tiered demand",
            admission: AdmissionPolicy::tiered_demand(),
            overlap: false,
        },
        Policy {
            label: "tiered+prefetch",
            admission: AdmissionPolicy::tiered_speculative(),
            overlap: false,
        },
        Policy {
            label: "tiered+cluster",
            admission: AdmissionPolicy::tiered_cluster(),
            overlap: false,
        },
    ];
    if overlap {
        v.push(Policy {
            label: "tiered+overlap",
            admission: AdmissionPolicy::tiered_speculative(),
            overlap: true,
        });
    }
    v
}

/// One platform under test, with a device-memory budget label.
#[derive(Clone)]
struct Config {
    sys: SystemModel,
    budget: &'static str,
}

fn halve_hbm(mut p: PlatformSpec) -> PlatformSpec {
    p.mem_capacity /= 2;
    p
}

/// A serving-oriented residency policy: keep up to 32K tokens hot per
/// stream (the whole sweep cache), trading device memory for per-step
/// fetch traffic. This is the configuration where tiering matters —
/// fleets of wide windows overflow the device long before compute
/// saturates.
fn wide_window(mut p: PlatformSpec) -> PlatformSpec {
    p.hot_window_tokens = 32_768;
    p
}

fn configs(smoke: bool) -> Vec<Config> {
    // The headline config: ReSV with a wide resident window. Each
    // stream demands ~4 GiB of device memory, so the halved-HBM box
    // fits only ~5 windows — but a spilled stream restores just the
    // *selected* share of its window (32.7% for frames, 2.5% for
    // decode), cheap enough that tiering admits real-time streams
    // reject-only admission turns away.
    let mut v = vec![Config {
        sys: SystemModel::new(wide_window(halve_hbm(PlatformSpec::vrex48())), Method::ReSV),
        budget: "half HBM, 32K window",
    }];
    if !smoke {
        v.push(Config {
            sys: SystemModel::new(wide_window(PlatformSpec::vrex48()), Method::ReSV),
            budget: "full HBM, 32K window",
        });
        // In-memory methods must restore their *whole* spilled cache
        // every step: tiering admits them but thrashes the link — the
        // FlexGen regime the paper argues against.
        v.push(Config {
            sys: SystemModel::new(halve_hbm(PlatformSpec::vrex48()), Method::VanillaInMemory),
            budget: "half HBM",
        });
        v.push(Config {
            sys: SystemModel::new(halve_hbm(PlatformSpec::vrex48()), Method::Oaken),
            budget: "half HBM",
        });
        v.push(Config {
            sys: SystemModel::new(
                wide_window(halve_hbm(PlatformSpec::a100())),
                Method::InfiniGen,
            ),
            budget: "half HBM, 32K window",
        });
        // Edge box: unified memory, so the SSD is the only spill tier.
        v.push(Config {
            sys: SystemModel::new(PlatformSpec::agx_orin(), Method::VanillaInMemory),
            budget: "full LPDDR",
        });
        // Three-tier server: halved HBM, host DDR4, plus an NVMe drive.
        v.push(Config {
            sys: SystemModel::new(
                halve_hbm(PlatformSpec::vrex48()).with_nvme_tier(),
                Method::VanillaInMemory,
            ),
            budget: "half HBM+NVMe",
        });
    }
    v
}

fn run(
    prices: &mut StepPriceCache,
    cache: usize,
    sessions: usize,
    admission: AdmissionPolicy,
    overlap: bool,
) -> ServeReport {
    // Two-turn sessions arriving in a 10 s burst: long enough that a
    // session out-waiting its 10 s patience behind a full device is
    // genuinely rejected rather than sneaking in at the first retire.
    let plans = TrafficConfig {
        sessions,
        turns: 2,
        arrival_spread_s: 10.0,
        seed: 42,
    }
    .generate();
    let cfg = ServeConfig {
        admission,
        overlap,
        ..ServeConfig::real_time(cache)
    };
    serve_with_cache(prices, &plans, &cfg)
}

/// One (platform, cache length) grid unit's rendered output and
/// per-policy best real-time stream counts, plus the restore traffic
/// and tier-exposed time each policy accumulated across the fleet
/// grid (the cluster-vs-flat smoke assertions compare these).
struct UnitResult {
    heading: String,
    table: Table,
    rt: Vec<usize>,
    restored_bytes: Vec<u64>,
    exposed_s: Vec<f64>,
}

fn sweep_unit(
    sys: &SystemModel,
    budget: &str,
    cache: usize,
    fleets: &[usize],
    overlap: bool,
) -> UnitResult {
    let model = ModelConfig::llama3_8b();
    // One price cache for the whole unit: every policy and fleet size
    // replays the same per-session cache trajectories (serialized and
    // overlapped runs key separately in the cache, so sharing is safe).
    let mut prices = StepPriceCache::new(sys, &model);
    let mut t = Table::new([
        "Policy",
        "Offered",
        "Admitted",
        "Rejected",
        "Real-time",
        "p99 lag (s)",
        "Spilled",
        "Restored GiB",
        "Exposed (s)",
        "Hidden (s)",
    ]);
    // Most real-time streams any offered fleet size achieved, per
    // policy (same order as `policies()`).
    let pols = policies(overlap);
    let mut rt = vec![0usize; pols.len()];
    let mut restored_bytes = vec![0u64; pols.len()];
    let mut exposed_s = vec![0f64; pols.len()];
    for (pi, policy) in pols.iter().enumerate() {
        for &n in fleets {
            let r = run(&mut prices, cache, n, policy.admission, policy.overlap);
            rt[pi] = rt[pi].max(r.real_time_sessions);
            if let Some(tr) = &r.tiering {
                restored_bytes[pi] += tr.restored_bytes;
                exposed_s[pi] += tr.exposed_s;
            }
            let (spilled, restored, exposed, hidden) = match &r.tiering {
                Some(tr) => (
                    tr.spilled_sessions.to_string(),
                    f(tr.restored_bytes as f64 / (1u64 << 30) as f64, 1),
                    f(tr.exposed_s, 2),
                    f(tr.hidden_s, 2),
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            t.row([
                policy.label.to_string(),
                n.to_string(),
                r.admitted.to_string(),
                r.rejected.to_string(),
                format!("{}/{}", r.real_time_sessions, r.admitted),
                f(r.frame_lag_p99_s, 3),
                spilled,
                restored,
                exposed,
                hidden,
            ]);
        }
    }
    UnitResult {
        heading: format!(
            "{} [{budget}] at {}K cache tokens",
            sys.label(),
            cache / 1000
        ),
        table: t,
        rt,
        restored_bytes,
        exposed_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let overlap = std::env::args().any(|a| a == "--overlap");
    let caches: &[usize] = if smoke { &[32_000] } else { &[16_000, 32_000] };
    let fleets: &[usize] = if smoke {
        &[4, 8, 12]
    } else {
        &[2, 4, 8, 12, 16, 24]
    };

    let mut best_gain: i64 = i64::MIN;
    let mut best_label = String::new();
    let mut headers = vec![
        "System",
        "Device budget",
        "Cache",
        "RT streams (reject)",
        "RT (tiered demand)",
        "RT (tiered+prefetch)",
        "RT (tiered+cluster)",
    ];
    if overlap {
        headers.push("RT (tiered+overlap)");
    }
    let mut summary = Table::new(headers);

    // Fan the (platform, cache) grid units out across sweep workers,
    // then render in grid order.
    let sweep_clock = Instant::now();
    let units: Vec<(Config, usize)> = configs(smoke)
        .into_iter()
        .flat_map(|cfg| caches.iter().map(move |&cache| (cfg.clone(), cache)))
        .collect();
    let results = par_map(&units, |(cfg, cache)| {
        sweep_unit(&cfg.sys, cfg.budget, *cache, fleets, overlap)
    });
    let sweep_s = sweep_clock.elapsed().as_secs_f64();

    for (ui, ((cfg, cache), unit)) in units.iter().zip(results).enumerate() {
        banner(&unit.heading);
        unit.table.print();
        let rt = &unit.rt;
        let gain = rt[2] as i64 - rt[0] as i64;
        if gain > best_gain {
            best_gain = gain;
            best_label = format!(
                "{} [{}] at {}K: {} real-time streams tiered+prefetch vs {} reject-only",
                cfg.sys.label(),
                cfg.budget,
                cache / 1000,
                rt[2],
                rt[0]
            );
        }
        let mut row = vec![
            cfg.sys.label(),
            cfg.budget.to_string(),
            format!("{}K", cache / 1000),
            rt[0].to_string(),
            rt[1].to_string(),
            rt[2].to_string(),
            rt[3].to_string(),
        ];
        if overlap {
            row.push(rt[4].to_string());
            // The acceptance pin: on the headline halved-HBM
            // V-Rex48 + ReSV configuration at 32K tokens,
            // resource-timeline execution must sustain at least the
            // serialized real-time stream count. (At 16K under the
            // 24-session thrash regime the honest link model can run
            // one stream below the serialized window heuristic, which
            // lets consecutive batches hide restores in the *same*
            // link time — that optimism is exactly what the timeline
            // removes, so only the 32K row is pinned.)
            if ui < caches.len() && *cache == 32_000 {
                assert!(
                    rt[4] >= rt[2],
                    "{}: overlap capacity {} trails serialized {} at {}K",
                    cfg.sys.label(),
                    rt[4],
                    rt[2],
                    cache / 1000
                );
            }
        }
        summary.row(row);
        // The cluster-granularity acceptance pins, asserted on the
        // smoke headline (halved-HBM V-Rex48 + ReSV at 32K): spilling
        // and restoring at hash-cluster granularity must move strictly
        // fewer restore bytes, expose strictly less tier time, and
        // sustain at least the flat prefetch policy's real-time
        // capacity (>= the pinned 12 streams).
        if smoke && ui == 0 {
            assert!(
                unit.restored_bytes[3] < unit.restored_bytes[2],
                "cluster restore traffic {} B is not strictly below flat prefetch {} B",
                unit.restored_bytes[3],
                unit.restored_bytes[2]
            );
            assert!(
                unit.exposed_s[3] < unit.exposed_s[2],
                "cluster tier-exposed {:.3} s is not strictly below flat prefetch {:.3} s",
                unit.exposed_s[3],
                unit.exposed_s[2]
            );
            assert!(
                rt[3] >= rt[2] && rt[3] >= 12,
                "cluster real-time capacity {} trails flat prefetch {} (pin: >= 12)",
                rt[3],
                rt[2]
            );
            println!(
                "OK: cluster-granular tiering restores {:.2} GiB vs {:.2} GiB flat \
                 ({:.2} s vs {:.2} s exposed) at {} real-time streams.",
                unit.restored_bytes[3] as f64 / (1u64 << 30) as f64,
                unit.restored_bytes[2] as f64 / (1u64 << 30) as f64,
                unit.exposed_s[3],
                unit.exposed_s[2],
                rt[3]
            );
        }
    }

    banner("Real-time stream capacity by admission policy");
    summary.print();
    println!("\nBest tiering gain: {best_label}");
    println!(
        "Rejecting a session that would not fit device memory wastes the rest \
         of the hierarchy; spilling the coldest stream's resident KV to host \
         DRAM (or the SSD on the edge box) admits it instead, and speculative \
         prefetch hides most of the restore behind the queue wait and the \
         step's layer-by-layer compute."
    );
    assert!(
        best_gain >= 1,
        "tiered admission should beat reject-only somewhere in the sweep \
         (best gain {best_gain})"
    );
    println!(
        "OK: tiering admits {best_gain} more real-time stream(s) than \
         reject-only at equal device memory."
    );
    if overlap {
        println!(
            "OK: resource-timeline overlap sustains at least the serialized \
             real-time capacity on the headline V-Rex48+ReSV configuration."
        );
    }
    // Perf trajectory (stderr keeps stdout deterministic); bench_serve
    // records the full process wall-clock into BENCH_serve.json.
    eprintln!(
        "sweep wall-clock: {sweep_s:.3} s across {} worker(s), {} grid unit(s)",
        workers(),
        units.len()
    );
}
