//! Table II: COIN accuracy (proxy) and retrieval ratios per task for
//! every retrieval method, measured functionally on the small model.

use vrex_bench::report::{banner, f, Table};
use vrex_core::resv::{ResvConfig, ResvPolicy};
use vrex_model::{ModelConfig, RetrievalPolicy};
use vrex_retrieval::{InfiniGenPPolicy, InfiniGenPolicy, RekvPolicy};
use vrex_workload::accuracy::{evaluate_policy, AccuracyReport, EvalConfig};
use vrex_workload::COIN_TASKS;

fn main() {
    let cfg = ModelConfig::small();
    let eval = EvalConfig {
        frames: 16,
        ..EvalConfig::default()
    };

    let mut results: Vec<AccuracyReport> = Vec::new();
    for task in COIN_TASKS {
        let mut policies: Vec<Box<dyn RetrievalPolicy>> = vec![
            Box::new(InfiniGenPolicy::paper_defaults()),
            Box::new(InfiniGenPPolicy::paper_defaults()),
            Box::new(RekvPolicy::paper_defaults(cfg.tokens_per_frame)),
            Box::new(ResvPolicy::new(&cfg, ResvConfig::paper_defaults())),
        ];
        for p in policies.iter_mut() {
            results.push(evaluate_policy(&cfg, task, p.as_mut(), eval));
        }
    }

    banner("Table II (upper): COIN Top-1 accuracy proxy per task");
    let mut t = Table::new(["Method", "Step", "Next", "Task", "Proc.", "Proc.+", "Avg"]);
    // Vanilla reference row.
    {
        let mut cells = vec!["VideoLLM-Online (paper)".to_string()];
        let mut sum = 0.0;
        for task in COIN_TASKS {
            let v = task.reference().vanilla_top1;
            sum += v;
            cells.push(f(v, 1));
        }
        cells.push(f(sum / 5.0, 1));
        t.row(cells);
    }
    for method in ["InfiniGen", "InfiniGenP", "ReKV", "ReSV"] {
        let mut cells = vec![format!("{method} (measured proxy)")];
        let mut sum = 0.0;
        for task in COIN_TASKS {
            let r = results
                .iter()
                .find(|r| r.task == task && r.method == method)
                .unwrap();
            sum += r.proxy_top1;
            cells.push(f(r.proxy_top1, 1));
        }
        cells.push(f(sum / 5.0, 1));
        t.row(cells);
    }
    t.print();
    println!(
        "Paper Top-1 rows — InfiniGen: 48.3/62.1/51.0/92.2/49.5; InfiniGenP: \
         45.6/58.6/50.2/91.5/46.4; ReKV: 46.3/59.9/50.0/91.3/47.6; ReSV: \
         47.5/62.0/50.5/92.2/48.2 (drop vs vanilla ~0.8)."
    );

    banner("Table II (lower): retrieval ratio [frame % / text %] per task");
    let mut t = Table::new(["Method", "Step", "Next", "Task", "Proc.", "Proc.+", "Avg"]);
    for method in ["InfiniGen", "InfiniGenP", "ReKV", "ReSV"] {
        let mut cells = vec![format!("{method} (measured)")];
        let (mut fs, mut ts) = (0.0, 0.0);
        for task in COIN_TASKS {
            let r = results
                .iter()
                .find(|r| r.task == task && r.method == method)
                .unwrap();
            fs += r.frame_ratio_pct;
            ts += r.text_ratio_pct;
            cells.push(format!("{:.1}/{:.1}", r.frame_ratio_pct, r.text_ratio_pct));
        }
        cells.push(format!("{:.1}/{:.1}", fs / 5.0, ts / 5.0));
        t.row(cells);
    }
    t.print();
    println!(
        "Paper averages — InfiniGen 100/6.8, InfiniGenP 50.8/6.8, ReKV 58.4/31.2, \
         ReSV 32.7/2.5."
    );

    banner("Attention recall / output divergence (proxy internals)");
    let mut t = Table::new(["Method", "Frame recall", "Text recall", "Output divergence"]);
    for method in ["InfiniGen", "InfiniGenP", "ReKV", "ReSV"] {
        let rs: Vec<&AccuracyReport> = results.iter().filter(|r| r.method == method).collect();
        let n = rs.len() as f64;
        t.row([
            method.to_string(),
            f(rs.iter().map(|r| r.frame_recall).sum::<f64>() / n, 3),
            f(rs.iter().map(|r| r.text_recall).sum::<f64>() / n, 3),
            f(rs.iter().map(|r| r.output_divergence).sum::<f64>() / n, 4),
        ]);
    }
    t.print();
}
