//! Table III: area and power breakdown of one V-Rex core.

use vrex_bench::report::{banner, f, Table};
use vrex_hwsim::area_power::{
    chip_area_mm2, dre_area_fraction, dre_power_fraction, vrex_core_breakdown, vrex_core_total,
};

fn main() {
    banner("Table III: Breakdown of Area and Power (one V-Rex core, 14 nm, 0.8 V, 800 MHz)");
    let mut t = Table::new([
        "Component",
        "Group",
        "Area [mm^2]",
        "Area %",
        "Power [mW]",
        "Power %",
    ]);
    let total = vrex_core_total();
    for e in vrex_core_breakdown() {
        t.row([
            e.name.to_string(),
            e.group.to_string(),
            f(e.budget.area_mm2, 2),
            f(e.budget.area_mm2 / total.area_mm2 * 100.0, 2),
            f(e.budget.power_mw, 2),
            f(e.budget.power_mw / total.power_mw * 100.0, 2),
        ]);
    }
    t.row([
        "Total".to_string(),
        "".to_string(),
        f(total.area_mm2, 2),
        "100".to_string(),
        f(total.power_mw, 2),
        "100".to_string(),
    ]);
    t.print();
    println!(
        "\nDRE share: {:.1}% of area, {:.1}% of power (paper: ~2.0% / ~2.4%).",
        dre_area_fraction() * 100.0,
        dre_power_fraction() * 100.0
    );
    println!(
        "Chip areas: V-Rex8 = {:.2} mm^2 (AGX Orin ~200 mm^2), V-Rex48 = {:.2} mm^2 (A100 ~826 mm^2).",
        chip_area_mm2(8),
        chip_area_mm2(48)
    );
}
