//! Table I: hardware specifications of the evaluated platforms.

use vrex_bench::report::{banner, f, Table};
use vrex_system::PlatformSpec;

fn main() {
    banner("Table I: Hardware Specifications of GPUs and V-Rex");
    let platforms = [
        PlatformSpec::agx_orin(),
        PlatformSpec::a100(),
        PlatformSpec::vrex8(),
        PlatformSpec::vrex48(),
    ];
    let mut t = Table::new([
        "Platform",
        "Peak TFLOPS",
        "Mem BW (GB/s)",
        "Mem Cap (GB)",
        "PCIe (GB/s)",
        "Power (W)",
        "Offload target",
    ]);
    for p in &platforms {
        t.row([
            p.name.to_string(),
            f(p.compute.peak_flops() / 1e12, 1),
            f(p.dram.peak_bytes_per_s() / 1e9, 1),
            f(p.mem_capacity as f64 / (1u64 << 30) as f64, 0),
            f(p.pcie.raw_bytes_per_s() / 1e9, 0),
            f(p.power_w, 2),
            if p.storage.is_some() {
                "M.2 NVMe SSD".to_string()
            } else {
                "DDR4 CPU memory".to_string()
            },
        ]);
    }
    t.print();
    println!(
        "\nPaper Table I: AGX 54 TFLOPS/204.8 GB/s/32 GB/4 GB/s/40 W; \
         A100 312/1935/80/32/300; V-Rex8 53.3/204.8/32/4/35; \
         V-Rex48 319.5/1935/80/32/203.68."
    );
}
