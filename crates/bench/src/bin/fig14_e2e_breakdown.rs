//! Fig. 14: normalized end-to-end latency breakdown, AGX baselines vs
//! V-Rex8, over the 1K–40K sweep (average COIN interaction).

use vrex_bench::report::{banner, f, Table};
use vrex_model::ModelConfig;
use vrex_system::{Method, PlatformSpec, SystemModel};
use vrex_workload::CoinScenario;

fn main() {
    let model = ModelConfig::llama3_8b();
    let sc = CoinScenario::paper_average();
    let systems = [
        SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen),
        SystemModel::new(PlatformSpec::agx_orin(), Method::InfiniGenP),
        SystemModel::new(PlatformSpec::agx_orin(), Method::ReKV),
        SystemModel::new(PlatformSpec::vrex8(), Method::ReSV),
    ];

    banner("Fig. 14: E2E latency breakdown (normalized to V-Rex8), avg COIN interaction");
    let mut t = Table::new([
        "KV len",
        "System",
        "Vision+MLP %",
        "Prefill %",
        "Generation %",
        "E2E (s)",
        "vs V-Rex8",
    ]);
    for s in [1_000usize, 5_000, 10_000, 20_000, 40_000] {
        let vrex_total = systems[3]
            .interaction(
                &model,
                s,
                1,
                sc.frames_per_query,
                sc.question_tokens,
                sc.answer_tokens,
            )
            .total_ps() as f64;
        for sys in &systems {
            let b = sys.interaction(
                &model,
                s,
                1,
                sc.frames_per_query,
                sc.question_tokens,
                sc.answer_tokens,
            );
            let total = b.total_ps() as f64;
            t.row([
                format!("{}K", s / 1000),
                sys.label(),
                f(b.vision_ps as f64 / total * 100.0, 1),
                f(b.prefill_ps as f64 / total * 100.0, 1),
                f(b.generation_ps as f64 / total * 100.0, 1),
                f(total / 1e12, 2),
                format!("{:.1}x", total / vrex_total),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper: V-Rex8 reduces E2E latency 2x/2x/2.6x/3.9x/5.4x over the best AGX \
         configuration at 1K/5K/10K/20K/40K; InfiniGenP and ReKV are slower than \
         FlexGen between 1K and 20K due to KV-prediction overhead."
    );
}
