//! Multi-device scaling sweep: how many total real-time streams does a
//! [`DevicePool`] sustain as devices are added?
//!
//! `tier_capacity` pins the single-device headline (V-Rex48 + ReSV,
//! halved HBM, 32K-token windows: tiering admits 12 real-time streams
//! where reject-only admits 6). This sweep re-asks that question across
//! device counts 1/2/4/8 and every [`PlacementPolicy`]: arriving
//! sessions are *placed* on a device (admission becomes placement,
//! `vrex_system::placement`), and under [`PlacementPolicy::Migrate`]
//! off-home placements copy their resident context KV across the
//! NVLink fabric as contended resource-timeline work.
//!
//! The offered fleet scales with the pool — each device count is
//! driven at `base × devices` sessions — so the sweep answers
//! "capacity per pool", not "the same small fleet spread thinner".
//! The grids *nest* across device counts (every fleet size driven at
//! N devices is also driven at N + 1) so capacities compare fairly:
//! a policy that concentrates load (first-fit under tiered admission
//! fits against the whole hierarchy) still gets scored on the fleet
//! size it actually sustains. Capacity is the most *summed* real-time
//! streams any offered fleet achieved
//! ([`vrex_system::ShardedServeReport::real_time_sessions`]).
//!
//! Usage: `device_scaling [--smoke] [--json PATH]`
//!
//! * `--smoke` — CI-sized grid (device counts 1 and 2 only) which
//!   asserts the acceptance headline: for every placement policy,
//!   2-device capacity is at least 1-device capacity on the 32K
//!   halved-HBM V-Rex48 + ReSV configuration.
//! * `--json PATH` — write the summary rows as a JSON array (merged
//!   into `BENCH_serve.json` by the `bench_serve` harness), each
//!   recording the serve worker count and wall-clock, plus a final
//!   sequential-vs-parallel speedup row over the largest pool.
//!
//! Each device count runs on its own sweep worker ([`vrex_bench::par`])
//! and shares one [`StepPriceCache`] and one
//! [`vrex_system::ShardScratch`] across its 4 policies × fleet sizes
//! (recycled routing buffers); inside a serve the per-device loops fan
//! out across the same scoped-thread driver, byte-identical to
//! sequential by the placement-layer contract. Tables print in grid
//! order afterwards — stdout is byte-identical to the sequential
//! sweep; wall-clock goes to stderr. The full sweep on a ≥4-core host
//! additionally gates the parallel fan-out at ≥2× wall-clock speedup
//! over 4+ devices.

use std::io::Write;
use std::time::Instant;

use vrex_bench::par::{nested_split, par_map_with_workers, timed, workers};
use vrex_bench::report::{banner, f, Table};
use vrex_model::ModelConfig;
use vrex_system::{
    serve_sharded_with_cache_in, DevicePool, Method, PlacementPolicy, ServeConfig, ShardScratch,
    ShardedServeReport, StepPriceCache, SystemModel,
};
use vrex_workload::traffic::TrafficConfig;

/// The tier-capacity headline device: V-Rex48 with half its HBM and a
/// 32K-token resident window, serving ReSV under tiered+prefetch
/// admission at 32K initial cache tokens.
fn headline_device() -> vrex_system::PlatformSpec {
    let mut p = vrex_system::PlatformSpec::vrex48();
    p.mem_capacity /= 2;
    p.hot_window_tokens = 32_768;
    p
}

/// Initial cache tokens for every session (the 32K headline point).
const CACHE_TOKENS: usize = 32_000;

/// Per-device offered fleet sizes; the pool is driven at
/// `base × devices` sessions so capacity scales with the pool.
const FLEETS_PER_DEVICE: &[usize] = &[4, 8, 12, 16];
const SMOKE_FLEETS_PER_DEVICE: &[usize] = &[4, 8, 12];

/// Best summed real-time streams one (devices, policy) cell achieved,
/// with the fleet that achieved it and that run's fabric accounting.
struct Cell {
    policy: PlacementPolicy,
    capacity: usize,
    best_fleet: usize,
    offered: usize,
    admitted: usize,
    migrations: usize,
    migrated_bytes: u64,
    fabric_busy_ps: u64,
    /// Worker threads the best run's device fan-out used (clamped to
    /// the pool size).
    serve_workers: usize,
    /// Summed per-device serve wall-clock of the best run, seconds.
    wall_s: f64,
}

/// One device count's rendered table plus its per-policy cells.
struct UnitResult {
    devices: usize,
    table: Table,
    cells: Vec<Cell>,
}

/// The nested fleet grid for one device count: every `base × d`
/// product for `d` up to `devices`, deduplicated and sorted, so each
/// device count also drives every smaller count's fleet sizes.
fn fleet_grid(devices: usize, device_counts: &[usize], fleets_per_device: &[usize]) -> Vec<usize> {
    let mut fleets: Vec<usize> = device_counts
        .iter()
        .filter(|&&d| d <= devices)
        .flat_map(|&d| fleets_per_device.iter().map(move |&per| per * d))
        .collect();
    fleets.sort_unstable();
    fleets.dedup();
    fleets
}

fn sweep_unit(devices: usize, fleets: &[usize], serve_workers: usize) -> UnitResult {
    let model = ModelConfig::llama3_8b();
    let sys = SystemModel::new(headline_device(), Method::ReSV);
    let pool = DevicePool::homogeneous(headline_device(), devices);
    // One price cache per unit: every policy and fleet size replays the
    // same per-session cache trajectories on identical devices. The
    // shard scratch is recycled the same way — after the first serve
    // the routing pass reuses the grown per-device sub-fleet buffers.
    let mut prices = StepPriceCache::new(&sys, &model);
    let mut scratch = ShardScratch::new();
    let cfg = ServeConfig::real_time_tiered(CACHE_TOKENS);
    let mut t = Table::new([
        "Policy",
        "Offered",
        "Admitted",
        "Real-time",
        "Migrations",
        "Migrated GiB",
        "Fabric busy (ms)",
    ]);
    let mut cells = Vec::new();
    for &policy in &PlacementPolicy::ALL {
        let mut best: Option<(usize, ShardedServeReport)> = None;
        for &sessions in fleets {
            // Same traffic shape as the tier-capacity headline:
            // two-turn sessions arriving in a 10 s burst.
            let plans = TrafficConfig {
                sessions,
                turns: 2,
                arrival_spread_s: 10.0,
                seed: 42,
            }
            .generate();
            let r = serve_sharded_with_cache_in(
                &mut prices,
                &pool,
                &plans,
                &cfg,
                policy,
                serve_workers,
                &mut scratch,
            );
            let fabric = r.interconnect;
            t.row([
                policy.label().to_string(),
                sessions.to_string(),
                r.admitted().to_string(),
                format!("{}/{}", r.real_time_sessions(), r.admitted()),
                fabric.migrations.to_string(),
                f(fabric.migrated_bytes as f64 / (1u64 << 30) as f64, 2),
                f(fabric.busy_ps as f64 / 1e9, 2),
            ]);
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| r.real_time_sessions() > b.real_time_sessions());
            if better {
                best = Some((sessions, r));
            }
        }
        let (best_fleet, r) = best.expect("at least one fleet size");
        cells.push(Cell {
            policy,
            capacity: r.real_time_sessions(),
            best_fleet,
            offered: r.offered(),
            admitted: r.admitted(),
            migrations: r.interconnect.migrations,
            migrated_bytes: r.interconnect.migrated_bytes,
            fabric_busy_ps: r.interconnect.busy_ps,
            serve_workers: r.workers,
            wall_s: r.device_wall_ns.iter().sum::<u64>() as f64 / 1e9,
        });
    }
    UnitResult {
        devices,
        table: t,
        cells,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let device_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let fleets_per_device: &[usize] = if smoke {
        SMOKE_FLEETS_PER_DEVICE
    } else {
        FLEETS_PER_DEVICE
    };

    banner(if smoke {
        "Device-scaling capacity sweep (smoke)"
    } else {
        "Device-scaling capacity sweep"
    });
    println!(
        "V-Rex48 + ReSV, half HBM, 32K windows, tiered+prefetch admission, \
         {CACHE_TOKENS} initial cache tokens; fleets of {fleets_per_device:?} \
         sessions per device\n"
    );

    let sweep_clock = Instant::now();
    let units: Vec<(usize, Vec<usize>)> = device_counts
        .iter()
        .map(|&d| (d, fleet_grid(d, device_counts, fleets_per_device)))
        .collect();
    // Nested fan-out: each outer unit runs sharded serves whose
    // per-device loops fan out up to `largest_pool` ways on the same
    // scoped-thread driver. Split the host's workers between the two
    // levels so outer × inner never oversubscribes a small host.
    let largest_pool = *device_counts.last().expect("at least one device count");
    let (outer_workers, inner_workers) = nested_split(units.len(), largest_pool);
    let results = par_map_with_workers(&units, outer_workers, |(d, fleets)| {
        sweep_unit(*d, fleets, inner_workers)
    });
    let sweep_s = sweep_clock.elapsed().as_secs_f64();

    let mut summary = Table::new([
        "Devices",
        "RT (first-fit)",
        "RT (load-balanced)",
        "RT (tier-pressure)",
        "RT (migrate)",
        "Migrations",
    ]);
    for unit in &results {
        banner(&format!(
            "{} device(s): V-Rex48 [half HBM, 32K window] pool",
            unit.devices
        ));
        unit.table.print();
        summary.row([
            unit.devices.to_string(),
            unit.cells[0].capacity.to_string(),
            unit.cells[1].capacity.to_string(),
            unit.cells[2].capacity.to_string(),
            unit.cells[3].capacity.to_string(),
            unit.cells[3].migrations.to_string(),
        ]);
    }

    banner("Total real-time stream capacity by device count");
    summary.print();
    println!(
        "\nAdmission becomes placement: each arriving session is routed to one \
         device of the pool, every device runs the single-device tiered \
         scheduler unchanged, and under the migrate policy off-home placements \
         copy their resident context KV across the NVLink fabric first."
    );

    // The acceptance pin: adding the second device never shrinks
    // capacity, for any placement policy, on the 32K halved-HBM
    // V-Rex48 + ReSV headline.
    for (ci, policy) in PlacementPolicy::ALL.iter().enumerate() {
        let one = results[0].cells[ci].capacity;
        let two = results[1].cells[ci].capacity;
        assert!(
            two >= one,
            "{}: 2-device capacity {two} trails 1-device capacity {one}",
            policy.label()
        );
    }
    println!("OK: 2-device capacity >= 1-device capacity for every placement policy.");

    // Parallel-execution speedup: re-serve the largest pool's biggest
    // fleet at 1 worker and at the full fan-out (price cache warmed
    // first so neither run pays cold pricing), pin the reports
    // byte-identical, and record the wall-clock ratio. The ≥2× gate
    // applies to the full sweep on a ≥4-core host driving ≥4 devices;
    // smaller hosts still record their honest numbers.
    let largest = largest_pool;
    let big_fleet = fleets_per_device.last().expect("at least one fleet") * largest;
    let speedup_row = {
        let model = ModelConfig::llama3_8b();
        let sys = SystemModel::new(headline_device(), Method::ReSV);
        let pool = DevicePool::homogeneous(headline_device(), largest);
        let cfg = ServeConfig::real_time_tiered(CACHE_TOKENS);
        let plans = TrafficConfig {
            sessions: big_fleet,
            turns: 2,
            arrival_spread_s: 10.0,
            seed: 42,
        }
        .generate();
        // At least 2 so the scoped-thread path genuinely runs even on
        // a single-core host (its honest ~1x lands in the JSON).
        let par_workers = workers().clamp(2, largest);
        let mut prices = StepPriceCache::new(&sys, &model);
        let mut scratch = ShardScratch::new();
        let serve = |prices: &mut StepPriceCache, scratch: &mut ShardScratch, w: usize| {
            timed(|| {
                serve_sharded_with_cache_in(
                    prices,
                    &pool,
                    &plans,
                    &cfg,
                    PlacementPolicy::FirstFit,
                    w,
                    scratch,
                )
            })
        };
        let _warm = serve(&mut prices, &mut scratch, 1);
        let (seq, seq_ns) = serve(&mut prices, &mut scratch, 1);
        let (par, par_ns) = serve(&mut prices, &mut scratch, par_workers);
        assert_eq!(
            par, seq,
            "parallel sharded report drifted from sequential at {par_workers} workers"
        );
        let speedup = seq_ns as f64 / par_ns as f64;
        // Deterministic facts on stdout; measured wall-clock (which
        // varies run to run) goes to stderr like the sweep timing.
        println!(
            "\nParallel fan-out over {largest} devices × {big_fleet} sessions \
             (first-fit): parallel report byte-identical to sequential at \
             {par_workers} worker(s)."
        );
        eprintln!(
            "parallel fan-out wall-clock: {:.3} s at 1 worker, {:.3} s at \
             {par_workers} worker(s) — {speedup:.2}x",
            seq_ns as f64 / 1e9,
            par_ns as f64 / 1e9,
        );
        if !smoke && workers() >= 4 && largest >= 4 {
            assert!(
                speedup >= 2.0,
                "parallel sharded execution speedup {speedup:.2}x < 2x \
                 at {par_workers} workers over {largest} devices"
            );
            eprintln!("OK: >= 2x parallel speedup at {par_workers} workers");
        }
        format!(
            "  {{\"devices\": {largest}, \"policy\": \"speedup\", \
             \"fleet\": {big_fleet}, \"workers_seq\": 1, \"workers_par\": {par_workers}, \
             \"wall_s_seq\": {:.6}, \"wall_s_par\": {:.6}, \"speedup\": {speedup:.3}}}",
            seq_ns as f64 / 1e9,
            par_ns as f64 / 1e9,
        )
    };

    if let Some(path) = json_path {
        let mut records = Vec::new();
        for unit in &results {
            for c in &unit.cells {
                records.push(format!(
                    "  {{\"devices\": {}, \"policy\": \"{}\", \"capacity\": {}, \
                     \"best_fleet\": {}, \"offered\": {}, \"admitted\": {}, \
                     \"migrations\": {}, \"migrated_bytes\": {}, \
                     \"fabric_busy_ps\": {}, \"workers\": {}, \
                     \"outer_workers\": {outer_workers}, \
                     \"inner_workers\": {inner_workers}, \"wall_s\": {:.6}}}",
                    unit.devices,
                    c.policy.label(),
                    c.capacity,
                    c.best_fleet,
                    c.offered,
                    c.admitted,
                    c.migrations,
                    c.migrated_bytes,
                    c.fabric_busy_ps,
                    c.serve_workers,
                    c.wall_s,
                ));
            }
        }
        records.push(speedup_row);
        let json = format!("[\n{}\n]\n", records.join(",\n"));
        let mut out = std::fs::File::create(&path).expect("create device_scaling json");
        out.write_all(json.as_bytes())
            .expect("write device_scaling json");
        println!("\nwrote {path}");
    }

    eprintln!(
        "sweep wall-clock: {sweep_s:.3} s across {} worker(s) split \
         {outer_workers} outer x {inner_workers} inner, {} device count(s)",
        workers(),
        device_counts.len()
    );
}
