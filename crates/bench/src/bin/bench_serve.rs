//! Serving-stack bench harness: times the serving-path binaries and
//! records the perf trajectory as `BENCH_serve.json`.
//!
//! Runs each configured bin as a child process (same `target` dir as
//! this binary), measures wall-clock, checks a **soft** time budget —
//! an overrun prints a warning and is recorded in the JSON, but only a
//! child *failure* fails the harness — and writes one JSON artifact CI
//! uploads on every run, so sweep regressions are visible in PRs
//! instead of silently eating CI minutes.
//!
//! Usage: `bench_serve [--json PATH] [--smoke]`
//!
//! * `--json PATH` — where to write the report (default
//!   `BENCH_serve.json` in the current directory);
//! * `--smoke` — run only the CI-sized smoke variants (the default set
//!   also times the **full** `tier_capacity` sweep, the headline
//!   number for the event-driven scheduler + memoized pricing work).

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use vrex_bench::par::workers;
use vrex_bench::report::{banner, f, Table};

/// One timed bench entry.
struct Entry {
    bin: &'static str,
    args: &'static [&'static str],
    /// Soft wall-clock budget (seconds). Overruns warn, not fail.
    budget_s: f64,
}

fn entries(smoke: bool) -> Vec<Entry> {
    let mut v = vec![
        Entry {
            bin: "serve_capacity",
            args: &["--smoke"],
            budget_s: 60.0,
        },
        Entry {
            bin: "tier_capacity",
            args: &["--smoke"],
            budget_s: 60.0,
        },
        // The overlap-on row next to the overlap-off row above: the
        // same smoke grid under resource-timeline execution (a fourth
        // policy per unit), so the capacity delta and the cost of the
        // engine bookkeeping are both visible in BENCH_serve.json.
        Entry {
            bin: "tier_capacity",
            args: &["--smoke", "--overlap"],
            budget_s: 60.0,
        },
        Entry {
            bin: "fig13_latency_energy",
            args: &[],
            budget_s: 60.0,
        },
        // Simulator-throughput gate: the smoke grid plus an explicit
        // 10⁶-session streaming-fleet row (`--sessions 1000000`), which
        // *hard-asserts* both the sessions-per-wall-second floor and
        // the working-set flatness gate (event-loop peaks at 10⁶ must
        // match the 10⁵ row — the steady state is O(λ·patience), not
        // O(fleet)). A violation exits nonzero and fails this harness,
        // unlike the soft budgets. The million-session serve alone is
        // ~19 s on one dev-box core; the budget leaves headroom for a
        // loaded shared runner. Its per-row JSON lands in
        // `fleet_scale_rows` below.
        Entry {
            bin: "fleet_scale",
            args: &[
                "--smoke",
                "--sessions",
                "1000000",
                "--json",
                FLEET_SCALE_JSON,
            ],
            budget_s: 180.0,
        },
        // Multi-device placement sweep: hard-asserts the acceptance
        // headline (2-device capacity >= 1-device capacity for every
        // placement policy on the 32K halved-HBM V-Rex48 + ReSV
        // configuration). Its per-row JSON lands in
        // `device_scaling_rows` below.
        Entry {
            bin: "device_scaling",
            args: &["--smoke", "--json", DEVICE_SCALING_JSON],
            budget_s: 60.0,
        },
    ];
    if !smoke {
        // The headline sweep: full tier_capacity grid (7 platforms ×
        // 2 cache lengths × 3 policies × 6 fleet sizes). The seed
        // polling-loop scheduler ran this in ~2.6 s of CI wall-clock
        // (0.22 s on a local core); the event core + memoized pricing
        // keep it inside a 30 s budget with a wide margin even on a
        // loaded shared runner.
        v.push(Entry {
            bin: "tier_capacity",
            args: &[],
            budget_s: 30.0,
        });
        // Full grid with the tiered+overlap policy row: 4 serves per
        // fleet size instead of 3, plus the engine's reservation
        // bookkeeping on the spill-heavy units.
        v.push(Entry {
            bin: "tier_capacity",
            args: &["--overlap"],
            budget_s: 45.0,
        });
    }
    v
}

/// Where `fleet_scale` drops its row array (cwd-relative; the child
/// inherits this harness's working directory). Read back after the
/// runs and merged into the main JSON artifact.
const FLEET_SCALE_JSON: &str = "BENCH_fleet_scale.json";

/// Where `device_scaling` drops its row array (cwd-relative), merged
/// into the artifact the same way.
const DEVICE_SCALING_JSON: &str = "BENCH_device_scaling.json";

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path: PathBuf = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_serve.json"));

    // Sibling binaries live next to this one (same target profile).
    let bin_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();

    banner("Serving-stack bench smoke");
    let mut t = Table::new(["Bin", "Args", "Wall (s)", "Budget (s)", "Status"]);
    let mut records = Vec::new();
    let mut failed = false;
    let mut over_budget = 0usize;
    for e in entries(smoke) {
        let exe = bin_dir.join(e.bin);
        let clock = Instant::now();
        let status = Command::new(&exe)
            .args(e.args)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .status();
        let wall_s = clock.elapsed().as_secs_f64();
        let ok = matches!(&status, Ok(s) if s.success());
        let within = wall_s <= e.budget_s;
        if !ok {
            failed = true;
            eprintln!("FAIL: {} {:?}: {status:?}", exe.display(), e.args);
        } else if !within {
            over_budget += 1;
            eprintln!(
                "WARN: {} {:?} took {wall_s:.2} s (soft budget {:.0} s)",
                e.bin, e.args, e.budget_s
            );
        }
        t.row([
            e.bin.to_string(),
            e.args.join(" "),
            f(wall_s, 3),
            f(e.budget_s, 0),
            if !ok {
                "FAILED".to_string()
            } else if within {
                "ok".to_string()
            } else {
                "over budget".to_string()
            },
        ]);
        records.push(format!(
            "    {{\"bin\": \"{}\", \"args\": \"{}\", \"wall_s\": {:.6}, \"budget_s\": {:.1}, \"ok\": {}, \"within_budget\": {}}}",
            json_escape(e.bin),
            json_escape(&e.args.join(" ")),
            wall_s,
            e.budget_s,
            ok,
            within
        ));
    }
    t.print();

    // Merge the fleet_scale per-row throughput JSON (written by the
    // child above) into the single uploaded artifact; indent its array
    // to sit as a top-level key.
    let fleet_rows = std::fs::read_to_string(FLEET_SCALE_JSON)
        .map(|s| s.trim().replace('\n', "\n  "))
        .unwrap_or_else(|_| "[]".to_string());
    let device_rows = std::fs::read_to_string(DEVICE_SCALING_JSON)
        .map(|s| s.trim().replace('\n', "\n  "))
        .unwrap_or_else(|_| "[]".to_string());
    let json = format!(
        "{{\n  \"suite\": \"serve\",\n  \"workers\": {},\n  \"smoke\": {},\n  \"fleet_scale_rows\": {},\n  \"device_scaling_rows\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        workers(),
        smoke,
        fleet_rows,
        device_rows,
        records.join(",\n")
    );
    let mut out = std::fs::File::create(&json_path).expect("create bench json");
    out.write_all(json.as_bytes()).expect("write bench json");
    println!("\nwrote {}", json_path.display());
    if over_budget > 0 {
        println!("{over_budget} entr(ies) over their soft budget (non-fatal).");
    }
    assert!(!failed, "a bench binary failed; see stderr");
    println!("OK: all bench binaries ran.");
}
