//! Plain-text table rendering for experiment binaries.
//!
//! All experiment output is aligned text (no plotting dependencies);
//! each binary prints the same rows/series the paper's figure or table
//! reports, so results can be eyeballed against the paper directly.

/// A simple aligned-column table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                s.push_str(&format!("{cell:<w$}  "));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a f64 with the given number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("long-header"));
        assert_eq!(s.lines().count(), 4);
        // Header and row columns align.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(&lines[2][col..col + 1], "2");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn format_helper() {
        assert_eq!(f(2.46802, 2), "2.47");
    }
}
