//! # vrex-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (see `DESIGN.md` §3 for the index and `EXPERIMENTS.md`
//! for paper-vs-measured records), plus Criterion benches over the
//! timing-critical kernels.
//!
//! Run everything with:
//!
//! ```text
//! for bin in fig04_motivation fig07_similarity fig13_latency_energy \
//!            fig14_e2e_breakdown fig15_oaken fig16_ablation \
//!            fig17_bandwidth fig18_roofline fig19_resv_ablation \
//!            fig20_ratio_distribution tab1_specs tab2_accuracy \
//!            tab3_area_power; do
//!     cargo run --release -p vrex-bench --bin $bin
//! done
//! ```
//!
//! Beyond the figures, `realtime_session` shows single-stream queueing
//! transients, `serve_capacity` sweeps multi-session serving capacity
//! (sessions × cache length × method; `--smoke` for the CI-sized run),
//! and `scaling` / `sweep_resv_params` explore parameter spaces.

pub use vrex_core::par;

pub mod report;
