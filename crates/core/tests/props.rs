//! Property tests for ReSV's core invariants.

use proptest::prelude::*;
use vrex_core::hashbit::{HashBitVector, HyperplaneSet};
use vrex_core::hctable::HcTable;
use vrex_core::wicsum::{captured_fraction, wicsum_select_row};
use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

proptest! {
    /// Hamming distance is a metric: identity, symmetry, triangle
    /// inequality — the properties the HCU's clustering relies on.
    #[test]
    fn hamming_distance_is_a_metric(
        a in proptest::collection::vec(any::<bool>(), 32),
        b in proptest::collection::vec(any::<bool>(), 32),
        c in proptest::collection::vec(any::<bool>(), 32),
    ) {
        let (va, vb, vc) = (
            HashBitVector::from_bits(&a),
            HashBitVector::from_bits(&b),
            HashBitVector::from_bits(&c),
        );
        prop_assert_eq!(va.hamming_distance(&va), 0);
        prop_assert_eq!(va.hamming_distance(&vb), vb.hamming_distance(&va));
        prop_assert!(
            va.hamming_distance(&vc) <= va.hamming_distance(&vb) + vb.hamming_distance(&vc)
        );
    }

    /// Every inserted token lands in exactly one cluster; token counts
    /// agree; representatives have the right dimension.
    #[test]
    fn hc_table_is_a_partition(
        n_tokens in 1usize..80,
        threshold in 0u32..33,
        seed in 0u64..500,
    ) {
        let hp = HyperplaneSet::new(16, 32, seed);
        let keys = gaussian_matrix(&mut seeded_rng(seed + 1), n_tokens, 16, 1.0);
        let mut table = HcTable::new(threshold);
        table.insert_block(&keys, 100, &hp); // arbitrary start index
        table.assert_partition();
        prop_assert_eq!(table.n_tokens(), n_tokens);
        prop_assert!(table.n_clusters() >= 1);
        prop_assert!(table.n_clusters() <= n_tokens);
        let counts = table.token_counts();
        prop_assert_eq!(counts.iter().sum::<usize>(), n_tokens);
        // Threshold 0 ⇒ no clustering at all.
        if threshold == 0 {
            prop_assert_eq!(table.n_clusters(), n_tokens);
        }
        // All-inclusive threshold ⇒ one cluster.
        if threshold > 32 {
            prop_assert_eq!(table.n_clusters(), 1);
        }
    }

    /// tokens_of_clusters returns exactly the members, sorted, deduped.
    #[test]
    fn cluster_token_lookup_is_exact(
        n_tokens in 1usize..40,
        seed in 0u64..500,
    ) {
        let hp = HyperplaneSet::new(8, 16, seed);
        let keys = gaussian_matrix(&mut seeded_rng(seed), n_tokens, 8, 1.0);
        let mut table = HcTable::new(5);
        table.insert_block(&keys, 0, &hp);
        let all: Vec<usize> = (0..table.n_clusters()).collect();
        let tokens = table.tokens_of_clusters(&all);
        let expect: Vec<usize> = (0..n_tokens).collect();
        prop_assert_eq!(tokens, expect);
    }

    /// WiCSum always captures strictly more than the threshold fraction
    /// of the weighted mass (when mass exists), and never selects
    /// duplicates.
    #[test]
    fn wicsum_contract(
        pairs in proptest::collection::vec((0.0f32..50.0, 1usize..40), 1..64),
        ratio in 0.0f32..0.999,
    ) {
        let scores: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let counts: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let total: f64 = scores.iter().zip(&counts).map(|(&s, &c)| s as f64 * c as f64).sum();
        let sel = wicsum_select_row(&scores, &counts, ratio);
        if total > 0.0 {
            let frac = captured_fraction(&scores, &counts, &sel);
            prop_assert!(frac > ratio as f64, "captured {frac} <= {ratio}");
            // Minimality: dropping the last-selected (lowest-score)
            // element must fall to or below the threshold.
            if sel.len() > 1 {
                let without_last = &sel[..sel.len() - 1];
                let frac2 = captured_fraction(&scores, &counts, without_last);
                prop_assert!(frac2 <= ratio as f64 + 1e-9,
                    "selection not minimal: {frac2} still above {ratio}");
            }
        }
        let mut dedup = sel.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), sel.len());
    }

    /// Selection grows (weakly) with the threshold ratio.
    #[test]
    fn wicsum_is_monotone_in_ratio(
        pairs in proptest::collection::vec((0.0f32..50.0, 1usize..40), 1..64),
        r1 in 0.0f32..0.9,
        delta in 0.0f32..0.09,
    ) {
        let scores: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let counts: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let s1 = wicsum_select_row(&scores, &counts, r1).len();
        let s2 = wicsum_select_row(&scores, &counts, r1 + delta).len();
        prop_assert!(s2 >= s1);
    }

    /// Random-hyperplane hashing concentration: duplicating a key gives
    /// Hamming 0; mild noise keeps distance small relative to the bit
    /// width on average.
    #[test]
    fn hashing_is_stable_under_small_perturbation(seed in 0u64..200) {
        let dim = 64;
        let hp = HyperplaneSet::new(dim, 64, seed);
        let base = gaussian_matrix(&mut seeded_rng(seed + 9), 1, dim, 1.0);
        prop_assert_eq!(hp.hash(base.row(0)).hamming_distance(&hp.hash(base.row(0))), 0);
        let noise = gaussian_matrix(&mut seeded_rng(seed + 10), 1, dim, 0.02);
        let near = &base + &noise;
        let d = hp.hash(base.row(0)).hamming_distance(&hp.hash(near.row(0)));
        prop_assert!(d <= 16, "2% noise flipped {d}/64 bits");
    }
}
