//! Early-exit bucket-sort selection — the WTU's hardware dataflow.
//!
//! A full descending sort is the dominant cost of WiCSum thresholding
//! on a GPU. The paper's WTU replaces it with a bucketed scan (Fig. 11):
//! after a preprocess pass (weighted sum, min/max, threshold), buckets
//! are visited from the highest score range downward; members of each
//! bucket are selected and their weighted mass accumulated; the scan
//! *exits early* once the threshold is crossed — typically after the
//! top ~16% of the mass-carrying elements, so most buckets are never
//! sorted at all.
//!
//! The selection produced is **identical** to the full-sort reference
//! in [`crate::wicsum`] (property-tested), only the work differs; the
//! recorded [`EarlyExitStats`] feed the WTU cycle model in
//! `vrex-hwsim`.

use crate::wicsum::wicsum_select_row;

/// Work counters of one early-exit selection, consumed by the WTU
/// cycle model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarlyExitStats {
    /// Buckets actually visited before exit.
    pub buckets_visited: usize,
    /// Total buckets the range was divided into.
    pub buckets_total: usize,
    /// Elements membership-tested across visited buckets (one
    /// comparator pass per element per visited bucket).
    pub elements_scanned: usize,
    /// Elements that entered the (small) within-bucket sort.
    pub elements_sorted: usize,
}

/// Runs WiCSum selection with the early-exit bucket dataflow.
///
/// Semantics match [`wicsum_select_row`] exactly; see there for the
/// contract. `n_buckets` controls the score-range granularity (the
/// paper's WTU uses a fixed small bucket count; 16–64 is typical).
///
/// # Panics
///
/// Panics on the same inputs as [`wicsum_select_row`], or if
/// `n_buckets == 0`.
pub fn early_exit_select_row(
    scores: &[f32],
    counts: &[usize],
    th_ratio: f32,
    n_buckets: usize,
) -> (Vec<usize>, EarlyExitStats) {
    assert!(n_buckets > 0, "need at least one bucket");
    assert_eq!(scores.len(), counts.len(), "scores/counts length mismatch");
    assert!(
        (0.0..=1.0).contains(&th_ratio),
        "th_ratio {th_ratio} outside [0,1]"
    );

    let mut stats = EarlyExitStats {
        buckets_total: n_buckets,
        ..EarlyExitStats::default()
    };

    // Preprocess step: weighted sum, min/max (one pass — the WTU's
    // multiplier + adder-tree + min/max units).
    let mut total = 0.0f64;
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for (&s, &c) in scores.iter().zip(counts) {
        assert!(s >= 0.0, "WiCSum requires non-negative scores, got {s}");
        total += s as f64 * c as f64;
        min = min.min(s);
        max = max.max(s);
    }
    if total <= 0.0 || scores.is_empty() {
        return (Vec::new(), stats);
    }
    let threshold = total * th_ratio as f64;

    let width = (max - min) / n_buckets as f32;
    let bucket_of = |s: f32| -> usize {
        if width <= 0.0 {
            0
        } else {
            (((s - min) / width) as usize).min(n_buckets - 1)
        }
    };

    let mut selected = Vec::new();
    let mut acc = 0.0f64;
    // Token-selection step: highest bucket first.
    for b in (0..n_buckets).rev() {
        stats.buckets_visited += 1;
        stats.elements_scanned += scores.len();
        // Membership bitmask for this score range.
        let mut members: Vec<usize> = (0..scores.len())
            .filter(|&i| bucket_of(scores[i]) == b)
            .collect();
        if members.is_empty() {
            if width <= 0.0 && b != 0 {
                continue;
            }
            if width <= 0.0 {
                break;
            }
            continue;
        }
        // Small within-bucket sort keeps the visit order globally
        // descending (exact equivalence with the full sort).
        members.sort_by(|&a, &bb| {
            scores[bb]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&bb))
        });
        stats.elements_sorted += members.len();
        for idx in members {
            selected.push(idx);
            acc += scores[idx] as f64 * counts[idx] as f64;
            if acc > threshold {
                return (selected, stats); // early exit!
            }
        }
    }
    (selected, stats)
}

/// Convenience wrapper asserting bit-exact agreement with the
/// full-sort reference; used in tests and debug builds.
pub fn select_row_checked(
    scores: &[f32],
    counts: &[usize],
    th_ratio: f32,
    n_buckets: usize,
) -> Vec<usize> {
    let (fast, _) = early_exit_select_row(scores, counts, th_ratio, n_buckets);
    let reference = wicsum_select_row(scores, counts, th_ratio);
    assert_eq!(
        fast, reference,
        "early-exit selection diverged from reference"
    );
    fast
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_reference_on_fig9_example() {
        let scores = [9.0, 8.0, 2.0, 1.0, 1.0];
        let counts = [1, 3, 2, 2, 3];
        let sel = select_row_checked(&scores, &counts, 0.8, 16);
        assert_eq!(sel, vec![0, 1, 2]);
    }

    #[test]
    fn early_exit_skips_low_buckets_on_concentrated_scores() {
        // One dominant score: the top bucket alone crosses the
        // threshold, so only 1 bucket is visited out of 32.
        let mut scores = vec![0.01f32; 256];
        scores[17] = 1000.0;
        let counts = vec![1usize; 256];
        let (sel, stats) = early_exit_select_row(&scores, &counts, 0.8, 32);
        assert_eq!(sel, vec![17]);
        assert_eq!(stats.buckets_visited, 1);
        assert_eq!(stats.elements_sorted, 1);
    }

    #[test]
    fn flat_scores_visit_everything() {
        let scores = vec![1.0f32; 16];
        let counts = vec![1usize; 16];
        let (sel, stats) = early_exit_select_row(&scores, &counts, 0.9, 8);
        assert_eq!(sel.len(), 15); // > 90% of 16 equal masses
        assert!(stats.buckets_visited >= 1);
    }

    #[test]
    fn zero_mass_selects_nothing() {
        let (sel, _) = early_exit_select_row(&[0.0, 0.0], &[1, 1], 0.5, 8);
        assert!(sel.is_empty());
    }

    #[test]
    fn single_element_is_selected() {
        let (sel, _) = early_exit_select_row(&[3.0], &[4], 0.5, 8);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn equal_scores_tie_break_matches_reference() {
        let scores = [2.0, 2.0, 2.0, 2.0];
        let counts = [1, 2, 3, 4];
        select_row_checked(&scores, &counts, 0.55, 4);
    }

    proptest! {
        /// The hardware dataflow must reproduce the reference selection
        /// exactly for arbitrary score/count rows, thresholds, and
        /// bucket counts.
        #[test]
        fn early_exit_equals_full_sort(
            pairs in proptest::collection::vec((0.0f32..100.0, 1usize..50), 0..64),
            ratio in 0.0f32..1.0,
            n_buckets in 1usize..64,
        ) {
            let scores: Vec<f32> = pairs.iter().map(|p| p.0).collect();
            let counts: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let (fast, stats) = early_exit_select_row(&scores, &counts, ratio, n_buckets);
            let reference = wicsum_select_row(&scores, &counts, ratio);
            prop_assert_eq!(fast, reference);
            prop_assert!(stats.buckets_visited <= n_buckets);
            prop_assert!(stats.elements_sorted <= scores.len());
        }

        /// Early exit must never *increase* work beyond one full pass
        /// of bucketing plus one sort of every element.
        #[test]
        fn work_is_bounded(
            scores in proptest::collection::vec(0.0f32..10.0, 1..128),
            ratio in 0.0f32..1.0,
        ) {
            let counts = vec![1usize; scores.len()];
            let (_, stats) = early_exit_select_row(&scores, &counts, ratio, 32);
            prop_assert!(stats.elements_scanned <= scores.len() * 32);
            prop_assert!(stats.elements_sorted <= scores.len());
        }
    }
}
