//! Hash-bit generation: random-hyperplane LSH signatures for keys.
//!
//! A key vector `k ∈ R^d` is reduced to `N_hp` bits by multiplying with
//! `N_hp` random hyperplanes and keeping only the signs (paper Fig. 8,
//! "hash-bit generation"). The Hamming distance between two signatures
//! is a cheap, bit-parallel proxy for angular (cosine) distance — the
//! property the paper validates in Fig. 7b (|correlation| ≈ 0.8).

use rand::rngs::StdRng;
use vrex_tensor::rng::{gaussian_matrix, seeded_rng};
use vrex_tensor::Matrix;

/// A packed bit signature of `n_bits` bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HashBitVector {
    words: Vec<u64>,
    n_bits: usize,
}

impl HashBitVector {
    /// Builds a signature from individual bits.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut words = vec![0u64; bits.len().div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        Self {
            words,
            n_bits: bits.len(),
        }
    }

    /// Number of bits in the signature.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_bits`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.n_bits, "bit index out of range");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Hamming distance (XOR + popcount) to another signature.
    ///
    /// This is the operation the HCU hardware unit executes with its
    /// XOR-accumulator array.
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different lengths.
    pub fn hamming_distance(&self, other: &HashBitVector) -> u32 {
        assert_eq!(self.n_bits, other.n_bits, "signature length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }
}

/// A fixed set of `n_hyperplanes` random hyperplanes in `R^dim`,
/// generated deterministically from a seed.
#[derive(Debug, Clone)]
pub struct HyperplaneSet {
    planes: Matrix, // dim × n_hyperplanes
}

impl HyperplaneSet {
    /// Draws `n_hyperplanes` Gaussian hyperplanes for `dim`-dimensional
    /// keys.
    pub fn new(dim: usize, n_hyperplanes: usize, seed: u64) -> Self {
        let mut rng: StdRng = seeded_rng(seed);
        Self {
            planes: gaussian_matrix(&mut rng, dim, n_hyperplanes, 1.0),
        }
    }

    /// Key dimension.
    pub fn dim(&self) -> usize {
        self.planes.rows()
    }

    /// Signature width in bits.
    pub fn n_hyperplanes(&self) -> usize {
        self.planes.cols()
    }

    /// Hashes a single key vector into its bit signature
    /// (`Key_hp = k · H`, then sign-binarise).
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != self.dim()`.
    pub fn hash(&self, key: &[f32]) -> HashBitVector {
        assert_eq!(key.len(), self.dim(), "key dimension mismatch");
        let n = self.n_hyperplanes();
        let mut bits = vec![false; n];
        for (j, bit) in bits.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (i, &k) in key.iter().enumerate() {
                acc += k * self.planes[(i, j)];
            }
            *bit = acc > 0.0;
        }
        HashBitVector::from_bits(&bits)
    }

    /// Hashes every row of a key matrix.
    pub fn hash_rows(&self, keys: &Matrix) -> Vec<HashBitVector> {
        keys.iter_rows().map(|row| self.hash(row)).collect()
    }
}

/// Expected relationship between cosine similarity and normalised
/// Hamming distance under random-hyperplane hashing:
/// `E[hamming / n_bits] = angle / π = acos(cos_sim) / π`.
///
/// Exposed for the Fig. 7b experiment and tests.
pub fn expected_normalized_hamming(cosine_similarity: f32) -> f32 {
    cosine_similarity.clamp(-1.0, 1.0).acos() / std::f32::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_tensor::ops::{cosine_similarity, pearson_correlation};
    use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

    #[test]
    fn from_bits_round_trips() {
        let bits = [true, false, true, true, false];
        let v = HashBitVector::from_bits(&bits);
        assert_eq!(v.n_bits(), 5);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(v.bit(i), b);
        }
    }

    #[test]
    fn hamming_distance_counts_differing_bits() {
        let a = HashBitVector::from_bits(&[true, false, true, false]);
        let b = HashBitVector::from_bits(&[true, true, false, false]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn hamming_works_across_word_boundaries() {
        let mut bits_a = vec![false; 130];
        let mut bits_b = vec![false; 130];
        bits_a[0] = true;
        bits_a[64] = true;
        bits_a[129] = true;
        bits_b[129] = true;
        let a = HashBitVector::from_bits(&bits_a);
        let b = HashBitVector::from_bits(&bits_b);
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    fn identical_keys_hash_identically() {
        let hp = HyperplaneSet::new(16, 32, 9);
        let key: Vec<f32> = (0..16).map(|i| i as f32 * 0.3 - 2.0).collect();
        assert_eq!(hp.hash(&key), hp.hash(&key));
    }

    #[test]
    fn opposite_keys_hash_to_complements() {
        let hp = HyperplaneSet::new(16, 32, 10);
        let key: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let neg: Vec<f32> = key.iter().map(|v| -v).collect();
        let d = hp.hash(&key).hamming_distance(&hp.hash(&neg));
        // Sign projections flip for every hyperplane not exactly at 0.
        assert_eq!(d, 32);
    }

    #[test]
    fn similar_keys_have_small_hamming_distance() {
        let hp = HyperplaneSet::new(64, 32, 11);
        let mut rng = seeded_rng(12);
        let base = gaussian_matrix(&mut rng, 1, 64, 1.0);
        let noise = gaussian_matrix(&mut rng, 1, 64, 0.05);
        let similar = &base + &noise;
        let far = gaussian_matrix(&mut rng, 1, 64, 1.0);
        let d_sim = hp
            .hash(base.row(0))
            .hamming_distance(&hp.hash(similar.row(0)));
        let d_far = hp.hash(base.row(0)).hamming_distance(&hp.hash(far.row(0)));
        assert!(
            d_sim < d_far,
            "similar pair distance {d_sim} should beat random pair {d_far}"
        );
        assert!(
            d_sim <= 7,
            "paper threshold Th_hd=7 should capture near-duplicates"
        );
    }

    #[test]
    fn hamming_tracks_cosine_similarity_fig7b() {
        // Reproduces the Fig. 7b claim: strong (anti-)correlation
        // between cosine similarity and hash-bit Hamming distance.
        let dim = 64;
        let hp = HyperplaneSet::new(dim, 32, 13);
        let mut rng = seeded_rng(14);
        let base = gaussian_matrix(&mut rng, 1, dim, 1.0);
        let mut cos = Vec::new();
        let mut ham = Vec::new();
        for i in 0..200 {
            let noise_scale = 0.02 * i as f32;
            let noise = gaussian_matrix(&mut rng, 1, dim, noise_scale);
            let other = &base + &noise;
            cos.push(cosine_similarity(base.row(0), other.row(0)));
            ham.push(
                hp.hash(base.row(0))
                    .hamming_distance(&hp.hash(other.row(0))) as f32,
            );
        }
        let r = pearson_correlation(&cos, &ham);
        assert!(r < -0.75, "correlation {r} weaker than the paper's 0.8");
    }

    #[test]
    fn expected_hamming_endpoints() {
        assert!(expected_normalized_hamming(1.0) < 1e-6);
        assert!((expected_normalized_hamming(-1.0) - 1.0).abs() < 1e-6);
        assert!((expected_normalized_hamming(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn hash_rows_matches_per_row_hash() {
        let hp = HyperplaneSet::new(8, 16, 21);
        let mut rng = seeded_rng(22);
        let keys = gaussian_matrix(&mut rng, 5, 8, 1.0);
        let all = hp.hash_rows(&keys);
        for (i, sig) in all.iter().enumerate() {
            assert_eq!(*sig, hp.hash(keys.row(i)));
        }
    }
}
