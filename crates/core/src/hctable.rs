//! The hash-cluster (HC) table: spatio-temporal token clusters.
//!
//! One HC table exists per (layer, KV head). Each entry groups cached
//! tokens whose hash-bit signatures are within `Th_hd` of the cluster's
//! representative signature. The representative key is the running
//! mean of member keys (the paper's `Key_cluster`), and its hash bits
//! are re-derived from that mean whenever the cluster absorbs a token,
//! matching the "Update" arrow of Fig. 8.

use vrex_tensor::Matrix;

use crate::hashbit::{HashBitVector, HyperplaneSet};

/// One cluster of similar tokens.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Running mean of member keys (`Key_cluster`).
    rep_key: Vec<f32>,
    /// Hash bits of the representative key.
    rep_bits: HashBitVector,
    /// Cache-token indices of the members, ascending.
    token_indices: Vec<usize>,
}

impl Cluster {
    /// The representative (mean) key.
    pub fn rep_key(&self) -> &[f32] {
        &self.rep_key
    }

    /// The representative's hash-bit signature.
    pub fn rep_bits(&self) -> &HashBitVector {
        &self.rep_bits
    }

    /// Member token indices (ascending).
    pub fn token_indices(&self) -> &[usize] {
        &self.token_indices
    }

    /// Number of member tokens (`TC` in the paper's equations).
    pub fn token_count(&self) -> usize {
        self.token_indices.len()
    }
}

/// Statistics of the clustering work done, used by the hardware cost
/// model (HCU cycles scale with Hamming comparisons).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusteringStats {
    /// Total tokens inserted.
    pub tokens_inserted: u64,
    /// Total token-vs-cluster Hamming comparisons performed.
    pub hamming_comparisons: u64,
    /// Clusters created (tokens that matched nothing).
    pub clusters_created: u64,
}

/// The hash-cluster table for one (layer, KV head).
#[derive(Debug, Clone)]
pub struct HcTable {
    clusters: Vec<Cluster>,
    hamming_threshold: u32,
    n_tokens: usize,
    stats: ClusteringStats,
    reps_cache: Option<Matrix>,
}

impl HcTable {
    /// Creates an empty table with clustering threshold `Th_hd`.
    pub fn new(hamming_threshold: u32) -> Self {
        Self {
            clusters: Vec::new(),
            hamming_threshold,
            n_tokens: 0,
            stats: ClusteringStats::default(),
            reps_cache: None,
        }
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of clustered tokens.
    pub fn n_tokens(&self) -> usize {
        self.n_tokens
    }

    /// Mean tokens per cluster (`0.0` when empty). The paper reports an
    /// average of 32 tokens per cluster on COIN.
    pub fn mean_tokens_per_cluster(&self) -> f64 {
        if self.clusters.is_empty() {
            0.0
        } else {
            self.n_tokens as f64 / self.clusters.len() as f64
        }
    }

    /// The clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Clustering-work statistics.
    pub fn stats(&self) -> ClusteringStats {
        self.stats
    }

    /// Inserts one token (key row + its absolute cache index).
    ///
    /// The token joins the first existing cluster whose representative
    /// signature is within the Hamming threshold (updating the running
    /// mean and re-hashing the representative); otherwise it founds a
    /// new cluster.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != hyperplanes.dim()`.
    pub fn insert_token(&mut self, key: &[f32], token_index: usize, hyperplanes: &HyperplaneSet) {
        assert_eq!(key.len(), hyperplanes.dim(), "key dimension mismatch");
        let bits = hyperplanes.hash(key);
        self.stats.tokens_inserted += 1;
        self.reps_cache = None;
        for cluster in &mut self.clusters {
            self.stats.hamming_comparisons += 1;
            if bits.hamming_distance(&cluster.rep_bits) < self.hamming_threshold {
                // Running-mean update of the representative key.
                let n = cluster.token_indices.len() as f32;
                for (r, &k) in cluster.rep_key.iter_mut().zip(key) {
                    *r = (*r * n + k) / (n + 1.0);
                }
                cluster.rep_bits = hyperplanes.hash(&cluster.rep_key);
                cluster.token_indices.push(token_index);
                self.n_tokens += 1;
                return;
            }
        }
        self.clusters.push(Cluster {
            rep_key: key.to_vec(),
            rep_bits: bits,
            token_indices: vec![token_index],
        });
        self.stats.clusters_created += 1;
        self.n_tokens += 1;
    }

    /// Inserts every row of `keys`, with row `i` having cache index
    /// `start_index + i`.
    pub fn insert_block(&mut self, keys: &Matrix, start_index: usize, hp: &HyperplaneSet) {
        for i in 0..keys.rows() {
            self.insert_token(keys.row(i), start_index + i, hp);
        }
    }

    /// Representative keys as an `(n_clusters × dim)` matrix (cached
    /// between mutations) — the `Key_cluster` operand of the
    /// `Q × Key_clusterᵀ` score computation.
    pub fn representatives(&mut self) -> &Matrix {
        let clusters = &self.clusters;
        self.reps_cache.get_or_insert_with(|| {
            let rows: Vec<&[f32]> = clusters.iter().map(|c| c.rep_key.as_slice()).collect();
            if rows.is_empty() {
                Matrix::default()
            } else {
                Matrix::from_rows(&rows)
            }
        })
    }

    /// Token counts per cluster, aligned with [`Self::representatives`].
    pub fn token_counts(&self) -> Vec<usize> {
        self.clusters.iter().map(Cluster::token_count).collect()
    }

    /// Maps selected cluster indices back to the union of their member
    /// token indices, ascending and de-duplicated.
    ///
    /// # Panics
    ///
    /// Panics if a cluster index is out of range.
    pub fn tokens_of_clusters(&self, cluster_indices: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = cluster_indices
            .iter()
            .flat_map(|&c| self.clusters[c].token_indices.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Verifies the partition invariants (each inserted token index in
    /// exactly one cluster; counts consistent). Panics on violation.
    /// Intended for tests and property checks.
    pub fn assert_partition(&self) {
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0;
        for c in &self.clusters {
            for &t in &c.token_indices {
                assert!(seen.insert(t), "token {t} appears in two clusters");
                total += 1;
            }
        }
        assert_eq!(total, self.n_tokens, "token count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

    fn hp(dim: usize) -> HyperplaneSet {
        HyperplaneSet::new(dim, 32, 99)
    }

    #[test]
    fn identical_tokens_form_one_cluster() {
        let hp = hp(16);
        let mut t = HcTable::new(7);
        let key: Vec<f32> = (0..16).map(|i| (i as f32).cos()).collect();
        for i in 0..5 {
            t.insert_token(&key, i, &hp);
        }
        assert_eq!(t.n_clusters(), 1);
        assert_eq!(t.n_tokens(), 5);
        assert_eq!(t.clusters()[0].token_count(), 5);
        t.assert_partition();
    }

    #[test]
    fn orthogonal_tokens_form_separate_clusters() {
        let hp = hp(16);
        let mut t = HcTable::new(7);
        let mut rng = seeded_rng(3);
        let keys = gaussian_matrix(&mut rng, 6, 16, 1.0);
        t.insert_block(&keys, 0, &hp);
        // Random Gaussian keys are near-orthogonal: expect ~1 cluster/token.
        assert!(t.n_clusters() >= 4, "got only {} clusters", t.n_clusters());
        t.assert_partition();
    }

    #[test]
    fn representative_is_mean_of_members() {
        let hp = hp(8);
        let mut t = HcTable::new(33); // threshold > n_bits: everything clusters
        t.insert_token(&[2.0; 8], 0, &hp);
        t.insert_token(&[4.0; 8], 1, &hp);
        assert_eq!(t.n_clusters(), 1);
        for &v in t.clusters()[0].rep_key() {
            assert!((v - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn tokens_of_clusters_unions_and_sorts() {
        let hp = hp(8);
        let mut t = HcTable::new(33);
        t.insert_token(&[1.0; 8], 5, &hp);
        t.insert_token(&[1.0; 8], 2, &hp);
        let toks = t.tokens_of_clusters(&[0]);
        assert_eq!(toks, vec![2, 5]);
    }

    #[test]
    fn stats_count_comparisons_and_creations() {
        let hp = hp(8);
        let mut t = HcTable::new(0); // nothing ever clusters (distance < 0 impossible)
        t.insert_token(&[1.0; 8], 0, &hp);
        t.insert_token(&[1.0; 8], 1, &hp);
        t.insert_token(&[1.0; 8], 2, &hp);
        let s = t.stats();
        assert_eq!(s.tokens_inserted, 3);
        assert_eq!(s.clusters_created, 3);
        // token 1 compared against 1 cluster, token 2 against 2.
        assert_eq!(s.hamming_comparisons, 3);
    }

    #[test]
    fn representatives_matrix_tracks_clusters() {
        let hp = hp(8);
        let mut t = HcTable::new(0);
        t.insert_token(&[1.0; 8], 0, &hp);
        t.insert_token(&[2.0; 8], 1, &hp);
        let reps = t.representatives().clone();
        assert_eq!(reps.rows(), 2);
        assert_eq!(reps.row(1), &[2.0; 8]);
        assert_eq!(t.token_counts(), vec![1, 1]);
    }

    #[test]
    fn video_like_keys_compress_well() {
        // Slowly drifting keys should yield far fewer clusters than
        // tokens — the property Fig. 8's "clustering overhead" argument
        // relies on.
        let dim = 32;
        let hp = HyperplaneSet::new(dim, 32, 42);
        let mut t = HcTable::new(7);
        let mut rng = seeded_rng(8);
        let base = gaussian_matrix(&mut rng, 4, dim, 1.0);
        let mut idx = 0;
        for _frame in 0..20 {
            let noise = gaussian_matrix(&mut rng, 4, dim, 0.03);
            let keys = &base + &noise;
            t.insert_block(&keys, idx, &hp);
            idx += 4;
        }
        assert_eq!(t.n_tokens(), 80);
        assert!(
            t.n_clusters() <= 16,
            "80 near-duplicate tokens produced {} clusters",
            t.n_clusters()
        );
        assert!(t.mean_tokens_per_cluster() >= 5.0);
        t.assert_partition();
    }
}
