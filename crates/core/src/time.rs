//! Simulation time: integer picoseconds.
//!
//! All timing in the workspace is carried as durations/timestamps in
//! picoseconds (`u64`), which is exact for every clock in the system
//! (800 MHz core = 1250 ps) and overflows only after ~213 days of
//! simulated time. The helpers live here in `vrex-core` (layer 2) so
//! both the hardware models (`vrex-hwsim`) and the traffic generator
//! (`vrex-workload`) can stamp integer-ps timestamps without a
//! dependency cycle; `vrex_hwsim::time` re-exports everything under its
//! historical path.

/// Picoseconds per second.
pub const PS_PER_SECOND: u64 = 1_000_000_000_000;

/// Converts a cycle count at `freq_hz` to picoseconds (rounding up).
///
/// # Panics
///
/// Panics if `freq_hz` is zero.
pub fn cycles_to_ps(cycles: u64, freq_hz: u64) -> u64 {
    assert!(freq_hz > 0, "frequency must be positive");
    // ps = cycles * 1e12 / freq; compute with u128 to avoid overflow.
    ((cycles as u128 * PS_PER_SECOND as u128).div_ceil(freq_hz as u128)) as u64
}

/// Converts seconds (f64) to picoseconds.
pub fn seconds_to_ps(seconds: f64) -> u64 {
    (seconds * PS_PER_SECOND as f64).round() as u64
}

/// Converts picoseconds to seconds (f64).
pub fn ps_to_seconds(ps: u64) -> f64 {
    ps as f64 / PS_PER_SECOND as f64
}

/// Converts picoseconds to milliseconds (f64).
pub fn ps_to_ms(ps: u64) -> f64 {
    ps as f64 / 1e9
}

/// Time to move `bytes` at `bytes_per_second`, in picoseconds.
///
/// # Panics
///
/// Panics if `bytes_per_second` is zero.
pub fn transfer_ps(bytes: u64, bytes_per_second: f64) -> u64 {
    assert!(bytes_per_second > 0.0, "bandwidth must be positive");
    seconds_to_ps(bytes as f64 / bytes_per_second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_at_800mhz_is_1250ps() {
        assert_eq!(cycles_to_ps(1, 800_000_000), 1250);
        assert_eq!(cycles_to_ps(800_000_000, 800_000_000), PS_PER_SECOND);
    }

    #[test]
    fn seconds_round_trip() {
        let ps = seconds_to_ps(0.125);
        assert_eq!(ps, PS_PER_SECOND / 8);
        assert!((ps_to_seconds(ps) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1 GiB at 1 GiB/s = 1 s.
        let ps = transfer_ps(1 << 30, (1u64 << 30) as f64);
        assert_eq!(ps, PS_PER_SECOND);
    }

    #[test]
    fn ms_conversion() {
        assert!((ps_to_ms(2_500_000_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cycles_rounding_is_up() {
        // 1 cycle at 3 Hz = 333,333,333,333.33 ps -> rounds up.
        assert_eq!(cycles_to_ps(1, 3), 333_333_333_334);
    }
}
