//! Scoped-thread parallel sweep driver.
//!
//! The figure/table binaries sweep independent grid points (platform ×
//! cache × policy × fleet), and sharded serving fans the per-device
//! serve loops out the same way; [`par_map`] runs them across
//! `std::thread::scope` workers — no external thread-pool dependency,
//! no `'static` bounds — and returns results in input order so table
//! rendering (and per-device report/trace ordering) stays
//! deterministic. Each worker claims the next unclaimed index from a
//! shared atomic cursor, which load-balances uneven grid points (a
//! 24-stream tiered serve costs ~10× a 2-stream one).
//!
//! This module lives in `vrex-core` (the workspace's lowest crate) so
//! both `vrex_system::placement` and the bench binaries can share one
//! driver; `vrex_bench::par` re-exports it under its historical path.
//!
//! On a single-core runner (`available_parallelism() == 1`) the fan-out
//! degenerates to an in-order sequential loop with one worker thread —
//! same results, negligible overhead.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count used by [`par_map`]: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits the machine's workers between an outer [`par_map`] sweep of
/// `outer_units` units whose bodies each fan out up to `inner_width`
/// ways (nested sweeps: a device-scaling unit runs a sharded serve
/// whose per-device loops use the same scoped-thread driver). The
/// inner width is granted first — it bounds a single unit's latency —
/// and the outer level gets the remaining quotient, so
/// `outer × inner <= workers()` and a small host is never
/// oversubscribed by the product of the two levels.
///
/// Returns `(outer_workers, inner_workers)`, each at least 1; the
/// outer count is additionally capped at `outer_units` (matching the
/// clamp [`par_map_with_workers`] applies anyway).
pub fn nested_split(outer_units: usize, inner_width: usize) -> (usize, usize) {
    let total = workers();
    let inner = total.min(inner_width.max(1));
    let outer = (total / inner).clamp(1, outer_units.max(1));
    (outer, inner)
}

/// Times `f` on the host monotonic clock, returning its result and the
/// elapsed wall-clock in integer nanoseconds.
///
/// This is report-boundary observability over the *simulator* — it
/// feeds `ShardedServeReport::device_wall_ns`, which is excluded from
/// report equality exactly like the serve counters. No simulated
/// quantity (integer picoseconds) is ever derived from it.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    // vrex-lint: allow(wall-clock-in-sim) — host wall-clock observability at the report boundary (excluded from report equality); no simulated quantity is derived from it.
    let clock = std::time::Instant::now();
    let r = f();
    (r, clock.elapsed().as_nanos() as u64)
}

/// Applies `f` to every item on a scoped worker pool and returns the
/// results in input order.
///
/// `f` runs concurrently: it must not rely on call order. Grid sweeps
/// that share a per-unit cache (e.g. a `StepPriceCache` per platform)
/// should make the *unit* the item and loop inside `f`.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_workers(items, workers(), f)
}

/// [`par_map`] with an explicit worker count, clamped to
/// `1..=items.len()`.
///
/// The sweep contract is that results — including every observability
/// counter a unit reports — are a function of the *items only*, never
/// of how many workers raced over the cursor. The fleet-counter
/// determinism test drives the same grid at 1 and N workers through
/// this seam and pins the outputs equal.
pub fn par_map_with_workers<T, R, F>(items: &[T], n_workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let n_workers = n_workers.clamp(1, items.len());
    let cursor = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // vrex-lint: allow(panicking-seam) — propagating a worker panic is the sweep contract (a silently dropped unit would corrupt result ordering); the payload is re-thrown, not swallowed.
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    pairs.sort_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = par_map(&[], |&i: &usize| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_on_one_worker() {
        assert_eq!(par_map(&[41], |&i| i + 1), vec![42]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map(&[1, 2, 3], |&i| {
            assert!(i < 3, "boom");
            i
        });
    }

    #[test]
    fn at_least_one_worker() {
        assert!(workers() >= 1);
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let items: Vec<usize> = (0..37).collect();
        let one = par_map_with_workers(&items, 1, |&i| i * i);
        for n in [2, 4, 16, 1024] {
            assert_eq!(par_map_with_workers(&items, n, |&i| i * i), one);
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(par_map_with_workers(&[7usize], 0, |&i| i + 1), vec![8]);
    }

    #[test]
    fn nested_split_never_oversubscribes() {
        let total = workers();
        for outer_units in [0usize, 1, 2, 4, 100] {
            for inner_width in [0usize, 1, 2, 8, 1024] {
                let (outer, inner) = nested_split(outer_units, inner_width);
                assert!(outer >= 1 && inner >= 1);
                assert!(
                    outer * inner <= total.max(1),
                    "split {outer}x{inner} oversubscribes {total} workers"
                );
                assert!(outer <= outer_units.max(1));
                assert!(inner <= inner_width.max(1).max(1));
            }
        }
    }

    #[test]
    fn nested_split_grants_the_inner_width_first() {
        // A wide inner fan-out on any host serializes the outer level
        // before it shrinks the inner one below the machine width.
        let (outer, inner) = nested_split(100, usize::MAX);
        assert_eq!(inner, workers());
        assert_eq!(outer, 1);
        // No inner fan-out: the outer level gets every worker.
        let (outer, inner) = nested_split(100, 1);
        assert_eq!(inner, 1);
        assert_eq!(outer, workers().min(100));
    }
}
