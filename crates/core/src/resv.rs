//! The ReSV retrieval policy: clustering + WiCSum, packaged as a
//! [`RetrievalPolicy`] for the streaming LLM.

use vrex_model::policy::{RetrievalPolicy, Selection, SelectionRequest};
use vrex_model::ModelConfig;
use vrex_tensor::Matrix;

use crate::earlyexit::{early_exit_select_row, EarlyExitStats};
use crate::hashbit::HyperplaneSet;
use crate::hctable::{ClusteringStats, HcTable};
use crate::wicsum::wicsum_select_row;

/// ReSV hyper-parameters. Paper defaults (§VI-E): `N_hp = 32`,
/// `Th_hd = 7`, `Th_r-wics = 0.3`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResvConfig {
    /// Number of random hyperplanes (hash-bit width).
    pub n_hyperplanes: usize,
    /// Hamming-distance clustering threshold (`Th_hd`).
    pub hamming_threshold: u32,
    /// WiCSum mass-fraction threshold (`Th_r-wics`).
    pub th_wics: f32,
    /// Bucket count for the early-exit dataflow.
    pub n_buckets: usize,
    /// `false` reproduces the "ReSV w/o clustering" ablation of
    /// Fig. 19: WiCSum runs directly on per-token scores (every token
    /// is its own cluster).
    pub clustering_enabled: bool,
    /// Use the early-exit bucket sort (bit-exact with the reference;
    /// also accumulates WTU work statistics).
    pub use_early_exit: bool,
    /// Seed for the hyperplane draw.
    pub seed: u64,
}

impl ResvConfig {
    /// The configuration the paper evaluates with.
    pub fn paper_defaults() -> Self {
        Self {
            n_hyperplanes: 32,
            hamming_threshold: 7,
            th_wics: 0.3,
            n_buckets: 32,
            clustering_enabled: true,
            use_early_exit: true,
            seed: 0xC0DE,
        }
    }

    /// The Fig. 19 ablation variant without clustering.
    pub fn without_clustering() -> Self {
        Self {
            clustering_enabled: false,
            ..Self::paper_defaults()
        }
    }
}

impl Default for ResvConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Aggregate work counters of a ReSV run, consumed by the hardware
/// cost model (`vrex-hwsim` DRE units).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResvWorkStats {
    /// Cluster scores computed (`Q × Key_clusterᵀ` elements).
    pub cluster_scores_computed: u64,
    /// Full-cache scores a token-granular method would have computed.
    pub token_scores_equivalent: u64,
    /// Accumulated early-exit sorting work.
    pub early_exit: EarlyExitStatsSum,
    /// Accumulated clustering work across all HC tables.
    pub clustering: ClusteringStats,
}

/// Sum of [`EarlyExitStats`] over many selections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarlyExitStatsSum {
    /// Selections performed.
    pub selections: u64,
    /// Σ buckets visited.
    pub buckets_visited: u64,
    /// Σ buckets available.
    pub buckets_total: u64,
    /// Σ elements membership-scanned.
    pub elements_scanned: u64,
    /// Σ elements sorted within buckets.
    pub elements_sorted: u64,
}

impl EarlyExitStatsSum {
    fn add(&mut self, s: EarlyExitStats) {
        self.selections += 1;
        self.buckets_visited += s.buckets_visited as u64;
        self.buckets_total += s.buckets_total as u64;
        self.elements_scanned += s.elements_scanned as u64;
        self.elements_sorted += s.elements_sorted as u64;
    }

    /// Mean fraction of buckets visited before exit (1.0 if none).
    pub fn mean_visited_fraction(&self) -> f64 {
        if self.buckets_total == 0 {
            1.0
        } else {
            self.buckets_visited as f64 / self.buckets_total as f64
        }
    }
}

/// The ReSV policy: per-(layer, KV-head) hash-cluster tables plus
/// per-(layer, head, query-row) WiCSum selection.
#[derive(Debug)]
pub struct ResvPolicy {
    cfg: ResvConfig,
    head_dim: usize,
    hyperplanes: HyperplaneSet,
    /// `tables[layer][kv_head]`.
    tables: Vec<Vec<HcTable>>,
    work: ResvWorkStats,
}

impl ResvPolicy {
    /// Creates a policy shaped for `model` with configuration `cfg`.
    pub fn new(model: &ModelConfig, cfg: ResvConfig) -> Self {
        let hyperplanes = HyperplaneSet::new(model.head_dim, cfg.n_hyperplanes, cfg.seed);
        let threshold = if cfg.clustering_enabled {
            cfg.hamming_threshold
        } else {
            0 // distance < 0 never holds: every token founds a cluster
        };
        let tables = (0..model.n_layers)
            .map(|_| {
                (0..model.n_kv_heads)
                    .map(|_| HcTable::new(threshold))
                    .collect()
            })
            .collect();
        Self {
            cfg,
            head_dim: model.head_dim,
            hyperplanes,
            tables,
            work: ResvWorkStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ResvConfig {
        &self.cfg
    }

    /// Accumulated work statistics.
    pub fn work_stats(&self) -> ResvWorkStats {
        let mut w = self.work;
        for row in &self.tables {
            for t in row {
                let s = t.stats();
                w.clustering.tokens_inserted += s.tokens_inserted;
                w.clustering.hamming_comparisons += s.hamming_comparisons;
                w.clustering.clusters_created += s.clusters_created;
            }
        }
        w
    }

    /// HC table for `(layer, kv_head)`.
    pub fn table(&self, layer: usize, kv_head: usize) -> &HcTable {
        &self.tables[layer][kv_head]
    }

    /// Mean tokens per cluster across all tables (paper: ≈32 on COIN).
    pub fn mean_tokens_per_cluster(&self) -> f64 {
        let (mut tok, mut clu) = (0usize, 0usize);
        for row in &self.tables {
            for t in row {
                tok += t.n_tokens();
                clu += t.n_clusters();
            }
        }
        if clu == 0 {
            0.0
        } else {
            tok as f64 / clu as f64
        }
    }

    /// HC-table memory overhead relative to the full KV cache, as in
    /// the paper's claim that the table occupies ~1.67% of the cache.
    ///
    /// Per cluster the table stores: cluster idx (4 B), `Key_cluster`
    /// (`head_dim · 2` B), its hash bits (`N_hp / 8` B) and token count
    /// (4 B); per token it stores the token index (4 B).
    pub fn hc_table_overhead_fraction(&self, model: &ModelConfig) -> f64 {
        let mut table_bytes = 0usize;
        let mut tokens = 0usize;
        for row in &self.tables {
            for t in row {
                table_bytes += t.n_clusters()
                    * (4 + self.head_dim * 2 + self.cfg.n_hyperplanes / 8 + 4)
                    + t.n_tokens() * 4;
                tokens += t.n_tokens();
            }
        }
        // Tokens counted per (layer, kv-head); per-token-per-head KV bytes:
        let kv_bytes = tokens * 2 * model.head_dim * model.bytes_per_element;
        if kv_bytes == 0 {
            0.0
        } else {
            table_bytes as f64 / kv_bytes as f64
        }
    }

    fn select_clusters(&mut self, req: &SelectionRequest<'_>, old_len: usize) -> Vec<usize> {
        let table = &mut self.tables[req.layer][req.kv_head];
        if table.n_clusters() == 0 {
            return Vec::new();
        }
        let counts = table.token_counts();
        let reps = table.representatives();
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut scores: Matrix = req.queries.matmul_transposed(reps);
        scores.scale_in_place(scale);
        self.work.cluster_scores_computed += (scores.rows() * scores.cols()) as u64;
        self.work.token_scores_equivalent += (scores.rows() * old_len) as u64;

        let mut union: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for r in 0..scores.rows() {
            let row = scores.row(r);
            // Monotone non-negative transform: exponentiated max-shifted
            // score (the softmax numerator) — concentrated rows stay
            // concentrated, and WiCSum's weighted mass is well-defined.
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let transformed: Vec<f32> = row.iter().map(|&s| (s - max).exp()).collect();
            let selected = if self.cfg.use_early_exit {
                let (sel, st) = early_exit_select_row(
                    &transformed,
                    &counts,
                    self.cfg.th_wics,
                    self.cfg.n_buckets,
                );
                self.work.early_exit.add(st);
                sel
            } else {
                wicsum_select_row(&transformed, &counts, self.cfg.th_wics)
            };
            union.extend(selected);
        }
        union.into_iter().collect()
    }
}

impl RetrievalPolicy for ResvPolicy {
    fn name(&self) -> &str {
        if self.cfg.clustering_enabled {
            "ReSV"
        } else {
            "ReSV w/o clustering"
        }
    }

    fn on_keys_appended(
        &mut self,
        layer: usize,
        kv_head: usize,
        new_keys: &Matrix,
        start_token: usize,
    ) {
        self.tables[layer][kv_head].insert_block(new_keys, start_token, &self.hyperplanes);
    }

    fn select(&mut self, req: &SelectionRequest<'_>) -> Selection {
        let old_len = req.keys.rows() - req.queries.rows();
        if old_len == 0 {
            return Selection::All;
        }
        let clusters = self.select_clusters(req, old_len);
        let tokens = self.tables[req.layer][req.kv_head].tokens_of_clusters(&clusters);
        // The current block's tokens are always attended; the selection
        // covers history only.
        let history: Vec<usize> = tokens.into_iter().filter(|&t| t < old_len).collect();
        Selection::Indices(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_model::policy::Stage;
    use vrex_model::{RunStats, StreamingVideoLlm, VideoStream, VideoStreamConfig};

    fn run_stream(cfg_resv: ResvConfig, frames: usize) -> (ResvPolicy, RunStats) {
        let cfg = ModelConfig::tiny();
        let mut llm = StreamingVideoLlm::new(cfg.clone(), 17);
        let mut policy = ResvPolicy::new(&cfg, cfg_resv);
        let mut video = VideoStream::new(VideoStreamConfig::coin_like(
            cfg.tokens_per_frame,
            cfg.hidden_dim,
            23,
        ));
        let mut stats = RunStats::new(&cfg, true);
        for _ in 0..frames {
            let f = video.next_frame();
            llm.process_frame(&f, &mut policy, &mut stats);
        }
        (policy, stats)
    }

    #[test]
    fn resv_selects_fewer_tokens_than_full() {
        let (_, stats) = run_stream(ResvConfig::paper_defaults(), 6);
        let ratio = stats.overall_ratio();
        assert!(ratio < 1.0, "ReSV selected everything (ratio {ratio})");
        assert!(ratio > 0.0, "ReSV selected nothing");
    }

    #[test]
    fn resv_keeps_high_attention_recall() {
        let (_, stats) = run_stream(ResvConfig::paper_defaults(), 6);
        let recall = stats.mean_recall();
        let ratio = stats.overall_ratio();
        // Random (untrained) tiny-model attention is much flatter than a
        // trained model's, so absolute recall at the paper's Th_r-wics is
        // lower here; the substantive invariant is that the selection
        // captures far more attention mass than its size (beats random).
        assert!(
            recall > 0.55,
            "recall {recall} too low for negligible accuracy loss"
        );
        assert!(
            recall > ratio,
            "recall {recall} should exceed ratio {ratio}: selection must beat random"
        );
    }

    #[test]
    fn clustering_reduces_score_computation() {
        let (with, _) = run_stream(ResvConfig::paper_defaults(), 6);
        let (without, _) = run_stream(ResvConfig::without_clustering(), 6);
        let w = with.work_stats();
        let wo = without.work_stats();
        assert!(
            w.cluster_scores_computed < wo.cluster_scores_computed,
            "clustering should shrink the score matrix: {} vs {}",
            w.cluster_scores_computed,
            wo.cluster_scores_computed
        );
        assert!(w.cluster_scores_computed < w.token_scores_equivalent);
    }

    #[test]
    fn without_clustering_each_token_is_own_cluster() {
        let (policy, _) = run_stream(ResvConfig::without_clustering(), 3);
        assert!((policy.mean_tokens_per_cluster() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn with_clustering_tokens_share_clusters() {
        let (policy, _) = run_stream(ResvConfig::paper_defaults(), 8);
        assert!(
            policy.mean_tokens_per_cluster() > 1.5,
            "video tokens should cluster, got {}",
            policy.mean_tokens_per_cluster()
        );
    }

    #[test]
    fn early_exit_visits_fraction_of_buckets() {
        let (policy, _) = run_stream(ResvConfig::paper_defaults(), 6);
        let frac = policy.work_stats().early_exit.mean_visited_fraction();
        assert!(frac < 0.9, "early exit never fired (visited {frac})");
    }

    #[test]
    fn early_exit_and_reference_paths_agree_end_to_end() {
        let a = run_stream(ResvConfig::paper_defaults(), 4)
            .1
            .overall_ratio();
        let b = run_stream(
            ResvConfig {
                use_early_exit: false,
                ..ResvConfig::paper_defaults()
            },
            4,
        )
        .1
        .overall_ratio();
        assert!((a - b).abs() < 1e-12, "paths diverged: {a} vs {b}");
    }

    #[test]
    fn hc_table_overhead_is_small() {
        let (policy, _) = run_stream(ResvConfig::paper_defaults(), 8);
        let frac = policy.hc_table_overhead_fraction(&ModelConfig::tiny());
        assert!(frac > 0.0);
        // head_dim=16 makes the per-cluster metadata relatively heavy;
        // at Llama-3 dimensions (head_dim=128) the same cluster
        // occupancy gives the paper's ~1.7% — checked below.
        assert!(frac < 0.5, "HC table overhead {frac} too large");
        // Analytic overhead at Llama dims with the paper's reported
        // occupancy of 32 tokens per cluster — should land near the
        // paper's 1.67% claim.
        let llama = ModelConfig::llama3_8b();
        let per_cluster = 4.0 + llama.head_dim as f64 * 2.0 + 32.0 / 8.0 + 4.0;
        let per_token = 4.0;
        let kv_per_token = (2 * llama.head_dim * llama.bytes_per_element) as f64;
        let overhead = (per_cluster / 32.0 + per_token) / kv_per_token;
        assert!(
            overhead < 0.05,
            "Llama-dim HC overhead {overhead} should be a few percent"
        );
    }

    #[test]
    fn selection_never_contains_current_block() {
        // Covered implicitly by model asserts, but check directly.
        let cfg = ModelConfig::tiny();
        let mut policy = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
        let mut rng = vrex_tensor::rng::seeded_rng(31);
        let keys_old = vrex_tensor::rng::gaussian_matrix(&mut rng, 6, cfg.head_dim, 1.0);
        let keys_new = vrex_tensor::rng::gaussian_matrix(&mut rng, 2, cfg.head_dim, 1.0);
        policy.on_keys_appended(0, 0, &keys_old, 0);
        policy.on_keys_appended(0, 0, &keys_new, 6);
        let mut all = keys_old.clone();
        all.append_rows(&keys_new);
        let q = vrex_tensor::rng::gaussian_matrix(&mut rng, 2, cfg.head_dim, 1.0);
        let req = SelectionRequest {
            layer: 0,
            query_head: 0,
            kv_head: 0,
            queries: &q,
            keys: &all,
            stage: Stage::Prefill,
        };
        let sel = policy.select(&req);
        let idx = sel
            .materialized()
            .expect("ReSV must return an explicit selection over non-empty history");
        assert!(idx.iter().all(|&i| i < 6));
    }

    #[test]
    fn generation_stage_selects_less_than_prefill() {
        // Single-query selections (generation) union fewer clusters
        // than 4-row blocks (prefill) — the Table II ratio asymmetry.
        let cfg = ModelConfig::tiny();
        let mut llm = StreamingVideoLlm::new(cfg.clone(), 17);
        let mut policy = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
        let mut video = VideoStream::new(VideoStreamConfig::coin_like(
            cfg.tokens_per_frame,
            cfg.hidden_dim,
            23,
        ));
        let mut prefill = RunStats::new(&cfg, false);
        let mut h = Matrix::zeros(1, cfg.hidden_dim);
        for _ in 0..6 {
            let f = video.next_frame();
            h = llm.process_frame(&f, &mut policy, &mut prefill);
        }
        let mut generation = RunStats::new(&cfg, false);
        llm.generate(&h, 6, &mut policy, &mut generation);
        assert!(
            generation.overall_ratio() <= prefill.overall_ratio() + 0.05,
            "generation ratio {} should not exceed prefill ratio {}",
            generation.overall_ratio(),
            prefill.overall_ratio()
        );
    }
}
