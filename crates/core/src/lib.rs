//! # vrex-core
//!
//! **ReSV** — the paper's primary contribution: a training-free dynamic
//! KV-cache retrieval algorithm for streaming video LLMs.
//!
//! ReSV replaces the fixed top-k selection of GPU-oriented retrieval
//! systems with two cooperating mechanisms:
//!
//! 1. **Hash-bit key clustering** ([`hashbit`], [`hctable`]): keys are
//!    projected onto a handful of random hyperplanes and sign-binarised
//!    into short bit vectors; tokens whose bit vectors are within a
//!    Hamming-distance threshold are grouped into clusters whose
//!    representative key is the running mean. Because adjacent video
//!    frames are highly similar, a few clusters cover many tokens,
//!    shrinking the score computation from `O(tokens)` to
//!    `O(clusters)`.
//! 2. **WiCSum thresholding** ([`wicsum`], [`earlyexit`]): instead of a
//!    fixed k, each layer/head accumulates cluster scores weighted by
//!    cluster token count until a fraction `Th_r-wics` of the total
//!    weighted mass is covered — selecting few tokens where attention
//!    is concentrated and many where it is flat. The hardware WTU
//!    evaluates the same rule with an early-exit bucket sort
//!    ([`earlyexit`]), which this crate implements bit-exactly and
//!    property-tests against the full-sort reference.
//!
//! [`resv::ResvPolicy`] packages both into a
//! [`vrex_model::RetrievalPolicy`] that plugs into the streaming LLM.
//!
//! ```
//! use vrex_core::resv::{ResvConfig, ResvPolicy};
//! use vrex_model::{ModelConfig, RunStats, StreamingVideoLlm, VideoStream, VideoStreamConfig};
//!
//! let cfg = ModelConfig::tiny();
//! let mut llm = StreamingVideoLlm::new(cfg.clone(), 1);
//! let mut policy = ResvPolicy::new(&cfg, ResvConfig::paper_defaults());
//! let mut video = VideoStream::new(VideoStreamConfig::coin_like(
//!     cfg.tokens_per_frame, cfg.hidden_dim, 2));
//! let mut stats = RunStats::new(&cfg, false);
//! for _ in 0..4 {
//!     let frame = video.next_frame();
//!     llm.process_frame(&frame, &mut policy, &mut stats);
//! }
//! // Dynamic selection touched strictly less than the full cache.
//! assert!(stats.overall_ratio() < 1.0);
//! ```

#![warn(missing_docs)]

pub mod earlyexit;
pub mod hashbit;
pub mod hctable;
pub mod par;
pub mod resv;
pub mod time;
pub mod wicsum;

pub use hashbit::{HashBitVector, HyperplaneSet};
pub use hctable::HcTable;
pub use resv::{ResvConfig, ResvPolicy};
