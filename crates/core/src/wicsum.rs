//! WiCSum thresholding: weighted-cumulative-sum dynamic selection.
//!
//! Implements Equations (1)–(3) of the paper. For one score row over
//! clusters with token counts `TC`:
//!
//! * `Sum = Σ_j score_j · TC_j`               (Eq. 1)
//! * `Th_wics = Sum · Th_r-wics`              (Eq. 2)
//! * visit clusters in descending score order, accumulating
//!   `score · TC` until the accumulation exceeds `Th_wics`; everything
//!   visited is selected                      (Eq. 3)
//!
//! Unlike fixed top-k this adapts the selected count to the score
//! distribution: a concentrated row selects a handful of clusters, a
//! flat row selects many — which is exactly the per-layer/per-head
//! variability Fig. 20 shows.
//!
//! Scores must be non-negative (the caller applies a monotone
//! non-negative transform such as the exponentiated, max-shifted
//! attention score — see `resv`).

/// Selects cluster indices for one score row.
///
/// Returns indices in the order visited (descending score, ties by
/// ascending index). Returns an empty selection when the total
/// weighted mass is zero.
///
/// # Panics
///
/// Panics if `scores.len() != counts.len()`, if a score is negative,
/// or if `th_ratio` is outside `[0, 1]`.
pub fn wicsum_select_row(scores: &[f32], counts: &[usize], th_ratio: f32) -> Vec<usize> {
    assert_eq!(scores.len(), counts.len(), "scores/counts length mismatch");
    assert!(
        (0.0..=1.0).contains(&th_ratio),
        "th_ratio {th_ratio} outside [0,1]"
    );
    let total: f64 = scores
        .iter()
        .zip(counts)
        .map(|(&s, &c)| {
            assert!(s >= 0.0, "WiCSum requires non-negative scores, got {s}");
            s as f64 * c as f64
        })
        .sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let threshold = total * th_ratio as f64;

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut selected = Vec::new();
    let mut acc = 0.0f64;
    for idx in order {
        selected.push(idx);
        acc += scores[idx] as f64 * counts[idx] as f64;
        if acc > threshold {
            break;
        }
    }
    selected
}

/// Applies [`wicsum_select_row`] to every row of a score matrix and
/// returns the per-row selections.
pub fn wicsum_select_rows(
    scores: &vrex_tensor::Matrix,
    counts: &[usize],
    th_ratio: f32,
) -> Vec<Vec<usize>> {
    (0..scores.rows())
        .map(|r| wicsum_select_row(scores.row(r), counts, th_ratio))
        .collect()
}

/// The weighted mass fraction actually captured by a selection —
/// used in tests to verify the threshold contract.
pub fn captured_fraction(scores: &[f32], counts: &[usize], selected: &[usize]) -> f64 {
    let total: f64 = scores
        .iter()
        .zip(counts)
        .map(|(&s, &c)| s as f64 * c as f64)
        .sum();
    if total <= 0.0 {
        return 1.0;
    }
    let got: f64 = selected
        .iter()
        .map(|&i| scores[i] as f64 * counts[i] as f64)
        .sum();
    got / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig9_worked_example() {
        // Fig. 9, first row: Score_cluster = [9,8,2,1,1] after sorting,
        // token counts [1,3,2,2,3] (aligned with sorted scores),
        // weighted sum = 9+24+4+2+3 = 42... the figure instead uses
        // Thr-wics = 80% with running sums 9,33,37 — crossing at the
        // third element. We reproduce the *mechanism* on those numbers.
        let scores = [9.0, 8.0, 2.0, 1.0, 1.0];
        let counts = [1, 3, 2, 2, 3];
        // total = 42, threshold = 33.6; 9 -> 33 -> 37 crosses at idx 2.
        let sel = wicsum_select_row(&scores, &counts, 0.8);
        assert_eq!(sel, vec![0, 1, 2]);
    }

    #[test]
    fn concentrated_row_selects_few() {
        let scores = [100.0, 0.1, 0.1, 0.1, 0.1];
        let counts = [1usize; 5];
        let sel = wicsum_select_row(&scores, &counts, 0.8);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn flat_row_selects_many() {
        let scores = [1.0f32; 10];
        let counts = [1usize; 10];
        let sel = wicsum_select_row(&scores, &counts, 0.8);
        // Need strictly more than 80% of mass: 9 of 10 equal scores.
        assert_eq!(sel.len(), 9);
    }

    #[test]
    fn token_counts_weight_the_selection() {
        // Same scores, but index 1 represents a huge cluster — its
        // weighted mass lets the accumulation cross sooner.
        let scores = [5.0, 4.0, 3.0, 2.0];
        let light = wicsum_select_row(&scores, &[1, 1, 1, 1], 0.6);
        let heavy = wicsum_select_row(&scores, &[1, 100, 1, 1], 0.6);
        assert!(heavy.len() <= light.len());
        assert!(heavy.contains(&1));
    }

    #[test]
    fn selection_meets_threshold_contract() {
        let scores = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let counts = [2, 7, 1, 8, 2, 8, 1, 8];
        for ratio in [0.1, 0.3, 0.5, 0.8, 0.95] {
            let sel = wicsum_select_row(&scores, &counts, ratio);
            let frac = captured_fraction(&scores, &counts, &sel);
            assert!(
                frac > ratio as f64,
                "ratio {ratio}: captured {frac} not above threshold"
            );
        }
    }

    #[test]
    fn zero_mass_selects_nothing() {
        assert!(wicsum_select_row(&[0.0, 0.0], &[3, 4], 0.5).is_empty());
        assert!(wicsum_select_row(&[], &[], 0.5).is_empty());
    }

    #[test]
    fn ratio_zero_selects_single_top_cluster() {
        let sel = wicsum_select_row(&[1.0, 9.0, 2.0], &[1, 1, 1], 0.0);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scores_are_rejected() {
        let _ = wicsum_select_row(&[1.0, -0.5], &[1, 1], 0.5);
    }

    #[test]
    fn monotone_rows_select_a_hotness_prefix() {
        // The cluster-granular KV tier (`vrex_system::memory`) keys
        // each session's clusters by coldness rank and models the
        // spilled set as a contiguous cold prefix. That model is
        // exactly WiCSum's behaviour on a rank-sorted row: when
        // scores are monotone decreasing (distinct), the selection is
        // the hottest prefix [0, k) — never a cluster skipped in
        // favour of a colder one — so "protect the top ceil(ratio * n)
        // ranks" and "run WiCSum over the rank-sorted masses" agree.
        let scores = [13.0f32, 8.0, 5.0, 3.0, 2.0, 1.0, 0.5];
        let counts = [4usize, 4, 4, 4, 4, 4, 4];
        for ratio in [0.0, 0.2, 0.327, 0.5, 0.8, 0.95] {
            let sel = wicsum_select_row(&scores, &counts, ratio);
            let prefix: Vec<usize> = (0..sel.len()).collect();
            assert_eq!(sel, prefix, "ratio {ratio}: selection is not a rank prefix");
        }
        // And the prefix length is monotone in the threshold ratio.
        let mut last = 0;
        for ratio in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let len = wicsum_select_row(&scores, &counts, ratio).len();
            assert!(len >= last, "ratio {ratio}: prefix shrank {last} -> {len}");
            last = len;
        }
    }

    #[test]
    fn rows_helper_matches_row_calls() {
        let m = vrex_tensor::Matrix::from_rows(&[&[1.0, 5.0, 2.0], &[4.0, 0.5, 4.0]]);
        let counts = [1, 2, 1];
        let all = wicsum_select_rows(&m, &counts, 0.5);
        assert_eq!(all[0], wicsum_select_row(m.row(0), &counts, 0.5));
        assert_eq!(all[1], wicsum_select_row(m.row(1), &counts, 0.5));
    }
}
