//! Causal attention with retrieval-filtered context.
//!
//! The streaming model's attention differs from vanilla decoding in one
//! way: the cached ("old") tokens a query block attends to may be a
//! *subset* chosen by a retrieval policy, while the tokens of the block
//! itself are always visible causally (they are on-device — only the
//! offloaded history is subject to retrieval).

use vrex_tensor::{ops, Matrix};

use crate::policy::Selection;

/// Computes attention output for a block of `q.rows()` new tokens.
///
/// * `q` — `(new × head_dim)` post-RoPE queries.
/// * `keys` / `values` — the **full** per-head cache `(total × head_dim)`
///   *including* the new tokens (appended before calling).
/// * `old_len` — number of cached tokens that precede the block
///   (`total = old_len + new`).
/// * `selected_old` — which of the `old_len` history tokens to attend
///   to.
///
/// Returns the `(new × head_dim)` attention output.
///
/// # Panics
///
/// Panics if shapes are inconsistent or a selected index is out of
/// range.
pub fn attention_with_selection(
    q: &Matrix,
    keys: &Matrix,
    values: &Matrix,
    old_len: usize,
    selected_old: &Selection,
) -> Matrix {
    let new = q.rows();
    let total = keys.rows();
    assert_eq!(total, values.rows(), "key/value cache length mismatch");
    assert_eq!(
        total,
        old_len + new,
        "cache must already contain the new block"
    );
    let d = q.cols();
    assert_eq!(d, keys.cols(), "query/key width mismatch");

    // Effective context = selected old tokens ++ new tokens. The lazy
    // `All` case skips the gather entirely.
    let (k_eff, v_eff, n_sel) = match selected_old.materialized() {
        None => (keys.clone(), values.clone(), old_len),
        Some(idx) => {
            for &i in idx {
                assert!(
                    i < old_len,
                    "selected index {i} not in history (len {old_len})"
                );
            }
            let mut rows: Vec<usize> = idx.to_vec();
            rows.extend(old_len..total);
            (
                keys.gather_rows(&rows),
                values.gather_rows(&rows),
                idx.len(),
            )
        }
    };

    let scale = 1.0 / (d as f32).sqrt();
    let mut scores = q.matmul_transposed(&k_eff);
    scores.scale_in_place(scale);

    // Causal mask over the new-token part of the context.
    for i in 0..new {
        let row = scores.row_mut(i);
        for j_new in (i + 1)..new {
            row[n_sel + j_new] = f32::NEG_INFINITY;
        }
    }
    ops::softmax_rows(&mut scores);
    scores.matmul(&v_eff)
}

/// Fraction of the *full-attention* probability mass that falls on the
/// selected history tokens, averaged over the query rows.
///
/// This is the attention-recall metric behind the accuracy proxy
/// (DESIGN.md §1): a retrieval method that captures nearly all of the
/// true attention mass cannot change the model output much.
///
/// Only history tokens are scored (the block's own tokens are always
/// attended and would inflate recall).
///
/// Returns `1.0` when there is no history.
pub fn selection_recall(
    q: &Matrix,
    keys: &Matrix,
    old_len: usize,
    selected_old: &Selection,
) -> f64 {
    if old_len == 0 || q.rows() == 0 {
        return 1.0;
    }
    // A selection with no explicit list covers the whole history.
    let Some(idx) = selected_old.materialized() else {
        return 1.0;
    };
    let d = q.cols() as f32;
    let scale = 1.0 / d.sqrt();
    let mut total_recall = 0.0;
    // vrex-lint: allow(unordered-iteration) — membership-only set: order is never observed, and the per-row recall loop wants O(1) contains().
    let selected: std::collections::HashSet<usize> = idx.iter().copied().collect();
    for r in 0..q.rows() {
        let qrow = q.row(r);
        // softmax over history only
        let mut scores = Vec::with_capacity(old_len);
        for j in 0..old_len {
            let krow = keys.row(j);
            let dot: f32 = qrow.iter().zip(krow).map(|(a, b)| a * b).sum();
            scores.push(dot * scale);
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        let mut num = 0.0f64;
        for (j, s) in scores.iter().enumerate() {
            let e = ((s - max) as f64).exp();
            denom += e;
            if selected.contains(&j) {
                num += e;
            }
        }
        total_recall += if denom > 0.0 { num / denom } else { 1.0 };
    }
    total_recall / q.rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

    fn setup(old: usize, new: usize, d: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = seeded_rng(42);
        let q = gaussian_matrix(&mut rng, new, d, 1.0);
        let k = gaussian_matrix(&mut rng, old + new, d, 1.0);
        let v = gaussian_matrix(&mut rng, old + new, d, 1.0);
        (q, k, v)
    }

    #[test]
    fn select_all_equals_explicit_full_index_list() {
        let (q, k, v) = setup(6, 3, 8);
        let full = attention_with_selection(&q, &k, &v, 6, &Selection::All);
        let explicit =
            attention_with_selection(&q, &k, &v, 6, &Selection::Indices((0..6).collect()));
        assert!(full.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn causal_mask_blocks_future_tokens() {
        // With no history, token 0 must be unaffected by token 1's K/V.
        let (q, k, mut v) = setup(0, 2, 4);
        let out_a = attention_with_selection(&q, &k, &v, 0, &Selection::All);
        // perturb token 1's value; token 0's output must not change.
        for x in v.row_mut(1) {
            *x += 100.0;
        }
        let out_b = attention_with_selection(&q, &k, &v, 0, &Selection::All);
        let row0_diff: f32 = out_a
            .row(0)
            .iter()
            .zip(out_b.row(0))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(row0_diff < 1e-6, "token 0 saw the future");
        let row1_diff: f32 = out_a
            .row(1)
            .iter()
            .zip(out_b.row(1))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(row1_diff > 1.0, "token 1 should see its own value");
    }

    #[test]
    fn single_token_context_returns_its_value() {
        // One query, history of one token with overwhelming score.
        let q = Matrix::from_rows(&[&[10.0, 0.0]]);
        let k = Matrix::from_rows(&[&[10.0, 0.0], &[-10.0, 0.0]]);
        let v = Matrix::from_rows(&[&[1.0, 2.0], &[-5.0, -6.0]]);
        let out = attention_with_selection(&q, &k, &v, 1, &Selection::All);
        // History token dominates (its own token has score -100).
        assert!((out[(0, 0)] - 1.0).abs() < 0.01);
        assert!((out[(0, 1)] - 2.0).abs() < 0.01);
    }

    #[test]
    fn subselection_changes_output_but_keeps_shape() {
        let (q, k, v) = setup(10, 2, 8);
        let full = attention_with_selection(&q, &k, &v, 10, &Selection::All);
        let some = attention_with_selection(&q, &k, &v, 10, &Selection::Indices(vec![0, 3, 7]));
        assert_eq!(full.rows(), some.rows());
        assert_eq!(full.cols(), some.cols());
        assert!(full.max_abs_diff(&some) > 1e-6);
    }

    #[test]
    #[should_panic(expected = "not in history")]
    fn selected_index_must_be_history() {
        let (q, k, v) = setup(4, 2, 8);
        let _ = attention_with_selection(&q, &k, &v, 4, &Selection::Indices(vec![5]));
    }

    #[test]
    fn recall_of_all_is_one() {
        let (q, k, _) = setup(5, 2, 8);
        assert_eq!(selection_recall(&q, &k, 5, &Selection::All), 1.0);
    }

    #[test]
    fn recall_of_empty_selection_is_near_zero() {
        let (q, k, _) = setup(5, 2, 8);
        let r = selection_recall(&q, &k, 5, &Selection::Indices(vec![]));
        assert!(r < 1e-9);
    }

    #[test]
    fn recall_is_monotone_in_selection_size() {
        let (q, k, _) = setup(20, 2, 8);
        let r1 = selection_recall(&q, &k, 20, &Selection::Indices(vec![0, 1]));
        let r2 = selection_recall(&q, &k, 20, &Selection::Indices((0..10).collect()));
        let r3 = selection_recall(&q, &k, 20, &Selection::Indices((0..20).collect()));
        assert!(r1 <= r2 + 1e-9);
        assert!(r2 <= r3 + 1e-9);
        assert!((r3 - 1.0).abs() < 1e-9);
    }
}
