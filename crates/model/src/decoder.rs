//! One transformer decoder layer with retrieval-filtered attention.

use rand::rngs::StdRng;
use vrex_tensor::rng::xavier_matrix;
use vrex_tensor::{ops, Matrix};

use crate::attention::{attention_with_selection, selection_recall};
use crate::config::ModelConfig;
use crate::kv_cache::LayerKvCache;
use crate::llm::RunStats;
use crate::policy::{RetrievalPolicy, SelectionRequest, Stage};

/// Weights of a single decoder layer (attention + gated FFN, RMS
/// norms). Initialised randomly but deterministically from a seed.
#[derive(Debug, Clone)]
pub struct DecoderLayer {
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    w_gate: Matrix,
    w_up: Matrix,
    w_down: Matrix,
    attn_norm: Vec<f32>,
    ffn_norm: Vec<f32>,
}

impl DecoderLayer {
    /// Creates a layer with Xavier-initialised weights drawn from `rng`.
    pub fn new(cfg: &ModelConfig, rng: &mut StdRng) -> Self {
        let d = cfg.hidden_dim;
        let qdim = cfg.n_heads * cfg.head_dim;
        let kvdim = cfg.n_kv_heads * cfg.head_dim;
        Self {
            wq: xavier_matrix(rng, d, qdim),
            wk: xavier_matrix(rng, d, kvdim),
            wv: xavier_matrix(rng, d, kvdim),
            wo: xavier_matrix(rng, qdim, d),
            w_gate: xavier_matrix(rng, d, cfg.ffn_dim),
            w_up: xavier_matrix(rng, d, cfg.ffn_dim),
            w_down: xavier_matrix(rng, cfg.ffn_dim, d),
            attn_norm: vec![1.0; d],
            ffn_norm: vec![1.0; d],
        }
    }

    /// Extracts head `h` (width `head_dim`) from a fused projection.
    fn head_slice(fused: &Matrix, h: usize, head_dim: usize) -> Matrix {
        let mut out = Matrix::zeros(fused.rows(), head_dim);
        for r in 0..fused.rows() {
            out.row_mut(r)
                .copy_from_slice(&fused.row(r)[h * head_dim..(h + 1) * head_dim]);
        }
        out
    }

    /// Runs the layer over a block of `x.rows()` new tokens.
    ///
    /// `start_pos` is the absolute position of the first token of the
    /// block; `cache` must hold exactly `start_pos` tokens on entry and
    /// holds `start_pos + x.rows()` on exit.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        cfg: &ModelConfig,
        layer_idx: usize,
        x: &Matrix,
        cache: &mut LayerKvCache,
        policy: &mut dyn RetrievalPolicy,
        stage: Stage,
        start_pos: usize,
        stats: &mut RunStats,
    ) -> Matrix {
        debug_assert_eq!(cache.len(), start_pos, "cache/position skew");
        let n = x.rows();
        let hd = cfg.head_dim;

        let mut xn = x.clone();
        ops::rmsnorm_rows(&mut xn, &self.attn_norm);

        let q_fused = xn.matmul(&self.wq);
        let k_fused = xn.matmul(&self.wk);
        let v_fused = xn.matmul(&self.wv);

        // Append new K/V (keys get RoPE before caching and before any
        // hashing, matching the paper: "the key matrix, obtained after
        // applying the rotary position embedding").
        for kvh in 0..cfg.n_kv_heads {
            let mut k_h = Self::head_slice(&k_fused, kvh, hd);
            ops::apply_rope(&mut k_h, start_pos);
            let v_h = Self::head_slice(&v_fused, kvh, hd);
            policy.on_keys_appended(layer_idx, kvh, &k_h, start_pos);
            cache.append(kvh, &k_h, &v_h);
        }

        // Per-query-head attention with policy-selected history.
        let group = cfg.gqa_group();
        let mut attn_concat = Matrix::zeros(n, cfg.n_heads * hd);
        // Per-kv-head union of selected history indices (fetch volume).
        let mut kv_union: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); cfg.n_kv_heads];
        let mut kv_union_all = vec![false; cfg.n_kv_heads];

        for qh in 0..cfg.n_heads {
            let kvh = qh / group;
            let mut q_h = Self::head_slice(&q_fused, qh, hd);
            ops::apply_rope(&mut q_h, start_pos);
            let keys = cache.keys(kvh);
            let request = SelectionRequest {
                layer: layer_idx,
                query_head: qh,
                kv_head: kvh,
                queries: &q_h,
                keys,
                stage,
            };
            let selection = policy.select(&request);
            stats.record_selection(layer_idx, qh, &selection, start_pos);
            if stats.track_recall() && start_pos > 0 {
                let r = selection_recall(&q_h, keys, start_pos, &selection);
                stats.record_recall(r);
            }
            match selection.materialized() {
                None => kv_union_all[kvh] = true,
                Some(idx) => kv_union[kvh].extend(idx.iter().copied()),
            }
            let out =
                attention_with_selection(&q_h, keys, cache.values(kvh), start_pos, &selection);
            for r in 0..n {
                attn_concat.row_mut(r)[qh * hd..(qh + 1) * hd].copy_from_slice(out.row(r));
            }
        }

        for kvh in 0..cfg.n_kv_heads {
            let distinct = if kv_union_all[kvh] {
                start_pos
            } else {
                kv_union[kvh].len()
            };
            stats.record_fetch(layer_idx, kvh, distinct, start_pos, cfg);
        }

        let x = &(attn_concat.matmul(&self.wo)) + x;

        // Gated FFN.
        let mut hn = x.clone();
        ops::rmsnorm_rows(&mut hn, &self.ffn_norm);
        let mut gate = hn.matmul(&self.w_gate);
        ops::silu_in_place(&mut gate);
        let up = hn.matmul(&self.w_up);
        for (g, u) in gate.data_mut().iter_mut().zip(up.data()) {
            *g *= u;
        }
        let ffn_out = gate.matmul(&self.w_down);
        &ffn_out + &x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SelectAll;
    use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

    #[test]
    fn forward_appends_to_cache_and_keeps_shape() {
        let cfg = ModelConfig::tiny();
        let mut rng = seeded_rng(3);
        let layer = DecoderLayer::new(&cfg, &mut rng);
        let mut cache = LayerKvCache::new(cfg.n_kv_heads, cfg.head_dim);
        let mut policy = SelectAll::new();
        let mut stats = RunStats::new(&cfg, false);
        let x = gaussian_matrix(&mut rng, 5, cfg.hidden_dim, 0.5);
        let y = layer.forward(
            &cfg,
            0,
            &x,
            &mut cache,
            &mut policy,
            Stage::Prefill,
            0,
            &mut stats,
        );
        assert_eq!(y.rows(), 5);
        assert_eq!(y.cols(), cfg.hidden_dim);
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn forward_is_deterministic() {
        let cfg = ModelConfig::tiny();
        let run = || {
            let mut rng = seeded_rng(9);
            let layer = DecoderLayer::new(&cfg, &mut rng);
            let mut cache = LayerKvCache::new(cfg.n_kv_heads, cfg.head_dim);
            let mut policy = SelectAll::new();
            let mut stats = RunStats::new(&cfg, false);
            let x = gaussian_matrix(&mut rng, 3, cfg.hidden_dim, 0.5);
            layer.forward(
                &cfg,
                0,
                &x,
                &mut cache,
                &mut policy,
                Stage::Prefill,
                0,
                &mut stats,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn incremental_blocks_match_cache_growth() {
        let cfg = ModelConfig::tiny();
        let mut rng = seeded_rng(4);
        let layer = DecoderLayer::new(&cfg, &mut rng);
        let mut cache = LayerKvCache::new(cfg.n_kv_heads, cfg.head_dim);
        let mut policy = SelectAll::new();
        let mut stats = RunStats::new(&cfg, false);
        let x1 = gaussian_matrix(&mut rng, 2, cfg.hidden_dim, 0.5);
        let x2 = gaussian_matrix(&mut rng, 3, cfg.hidden_dim, 0.5);
        layer.forward(
            &cfg,
            0,
            &x1,
            &mut cache,
            &mut policy,
            Stage::Prefill,
            0,
            &mut stats,
        );
        layer.forward(
            &cfg,
            0,
            &x2,
            &mut cache,
            &mut policy,
            Stage::Prefill,
            2,
            &mut stats,
        );
        assert_eq!(cache.len(), 5);
    }
}
