//! Growing per-layer, per-head key/value caches.
//!
//! The KV cache is the central data structure of the paper: it grows
//! with every frame of the stream (iterative prefill), is offloaded to
//! CPU memory or storage by retrieval systems, and is selectively
//! fetched back. This module stores the functional cache; residency
//! (what is on-device vs. offloaded) is modelled in `vrex-system`.

use vrex_tensor::Matrix;

use crate::config::ModelConfig;

/// Key/value cache for one decoder layer: one `(tokens × head_dim)`
/// key matrix and one value matrix per KV head.
#[derive(Debug, Clone)]
pub struct LayerKvCache {
    keys: Vec<Matrix>,
    values: Vec<Matrix>,
    head_dim: usize,
}

impl LayerKvCache {
    /// Creates an empty cache for `n_kv_heads` heads of `head_dim`.
    pub fn new(n_kv_heads: usize, head_dim: usize) -> Self {
        Self {
            keys: vec![Matrix::default(); n_kv_heads],
            values: vec![Matrix::default(); n_kv_heads],
            head_dim,
        }
    }

    /// Number of KV heads.
    pub fn n_kv_heads(&self) -> usize {
        self.keys.len()
    }

    /// Number of cached tokens (identical across heads).
    pub fn len(&self) -> usize {
        self.keys.first().map_or(0, Matrix::rows)
    }

    /// Returns `true` when no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends per-head keys and values for a block of new tokens.
    ///
    /// # Panics
    ///
    /// Panics if a matrix has the wrong width or the heads disagree on
    /// token count.
    pub fn append(&mut self, head: usize, new_keys: &Matrix, new_values: &Matrix) {
        assert_eq!(new_keys.cols(), self.head_dim, "key width mismatch");
        assert_eq!(new_values.cols(), self.head_dim, "value width mismatch");
        assert_eq!(
            new_keys.rows(),
            new_values.rows(),
            "key/value token count mismatch"
        );
        self.keys[head].append_rows(new_keys);
        self.values[head].append_rows(new_values);
    }

    /// Keys of `head` (all cached tokens).
    pub fn keys(&self, head: usize) -> &Matrix {
        &self.keys[head]
    }

    /// Values of `head` (all cached tokens).
    pub fn values(&self, head: usize) -> &Matrix {
        &self.values[head]
    }
}

/// Full-model KV cache: one [`LayerKvCache`] per decoder layer.
#[derive(Debug, Clone)]
pub struct KvCache {
    layers: Vec<LayerKvCache>,
    kv_bytes_per_token: usize,
}

impl KvCache {
    /// Creates an empty cache shaped for `cfg`.
    pub fn new(cfg: &ModelConfig) -> Self {
        Self {
            layers: (0..cfg.n_layers)
                .map(|_| LayerKvCache::new(cfg.n_kv_heads, cfg.head_dim))
                .collect(),
            kv_bytes_per_token: cfg.kv_bytes_per_token(),
        }
    }

    /// Cache for one layer.
    pub fn layer(&self, l: usize) -> &LayerKvCache {
        &self.layers[l]
    }

    /// Mutable cache for one layer.
    pub fn layer_mut(&mut self, l: usize) -> &mut LayerKvCache {
        &mut self.layers[l]
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Cached tokens (taken from layer 0; all layers stay in lockstep).
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, LayerKvCache::len)
    }

    /// Returns `true` when no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cache size in bytes at the model's storage precision.
    pub fn total_bytes(&self) -> usize {
        self.len() * self.kv_bytes_per_token
    }

    /// Asserts that every layer holds the same number of tokens.
    /// Used by tests and debug assertions after each prefill step.
    pub fn assert_coherent(&self) {
        let n = self.len();
        for (l, layer) in self.layers.iter().enumerate() {
            assert_eq!(layer.len(), n, "layer {l} cache out of lockstep");
            for h in 0..layer.n_kv_heads() {
                assert_eq!(layer.keys(h).rows(), n, "layer {l} head {h} keys");
                assert_eq!(layer.values(h).rows(), n, "layer {l} head {h} values");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

    #[test]
    fn empty_cache_has_zero_len_and_bytes() {
        let cache = KvCache::new(&ModelConfig::tiny());
        assert!(cache.is_empty());
        assert_eq!(cache.total_bytes(), 0);
    }

    #[test]
    fn append_grows_all_heads_in_lockstep() {
        let cfg = ModelConfig::tiny();
        let mut cache = KvCache::new(&cfg);
        let mut rng = seeded_rng(1);
        for l in 0..cfg.n_layers {
            for h in 0..cfg.n_kv_heads {
                let k = gaussian_matrix(&mut rng, 3, cfg.head_dim, 1.0);
                let v = gaussian_matrix(&mut rng, 3, cfg.head_dim, 1.0);
                cache.layer_mut(l).append(h, &k, &v);
            }
        }
        cache.assert_coherent();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.total_bytes(), 3 * cfg.kv_bytes_per_token());
    }

    #[test]
    #[should_panic(expected = "key width mismatch")]
    fn append_rejects_wrong_width() {
        let cfg = ModelConfig::tiny();
        let mut cache = KvCache::new(&cfg);
        let bad = Matrix::zeros(1, cfg.head_dim + 1);
        let ok = Matrix::zeros(1, cfg.head_dim);
        cache.layer_mut(0).append(0, &bad, &ok);
    }

    #[test]
    #[should_panic(expected = "out of lockstep")]
    fn coherence_check_catches_skew() {
        let cfg = ModelConfig::tiny();
        let mut cache = KvCache::new(&cfg);
        let k = Matrix::zeros(1, cfg.head_dim);
        cache.layer_mut(0).append(0, &k, &k);
        cache.layer_mut(0).append(1, &k, &k);
        // layer 1 never appended -> skewed.
        cache.assert_coherent();
    }
}
