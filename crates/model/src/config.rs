//! Model configuration and analytic cost formulas.
//!
//! The functional experiments run a small configuration for speed; the
//! hardware simulator uses the Llama-3 8B configuration's analytic
//! byte/FLOP counts so latency and memory magnitudes match the paper's
//! setup (Llama-3 8B backbone, BF16 weights and KV cache).

/// Static description of a decoder-only transformer used as the LLM
/// backbone of a streaming video model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Number of decoder layers.
    pub n_layers: usize,
    /// Number of query heads.
    pub n_heads: usize,
    /// Number of key/value heads (grouped-query attention when smaller
    /// than `n_heads`).
    pub n_kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Model (residual stream) dimension.
    pub hidden_dim: usize,
    /// Feed-forward intermediate dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Bytes per stored weight / KV element (2 for BF16).
    pub bytes_per_element: usize,
    /// Visual tokens emitted per video frame by the vision tower +
    /// projector (VideoLLM-Online uses a small per-frame token count).
    pub tokens_per_frame: usize,
}

impl ModelConfig {
    /// The Llama-3 8B configuration used by the paper's evaluation.
    ///
    /// # Examples
    ///
    /// ```
    /// let cfg = vrex_model::ModelConfig::llama3_8b();
    /// // ~16 GB of BF16 weights.
    /// assert!(cfg.param_bytes() > 15_000_000_000 && cfg.param_bytes() < 17_000_000_000);
    /// // 128 KiB of KV cache per token.
    /// assert_eq!(cfg.kv_bytes_per_token(), 128 * 1024);
    /// ```
    pub fn llama3_8b() -> Self {
        Self {
            n_layers: 32,
            n_heads: 32,
            n_kv_heads: 8,
            head_dim: 128,
            hidden_dim: 4096,
            ffn_dim: 14336,
            vocab_size: 128_256,
            bytes_per_element: 2,
            tokens_per_frame: 10,
        }
    }

    /// A tiny configuration for unit tests (fast, still multi-layer and
    /// grouped-query so all code paths are exercised).
    pub fn tiny() -> Self {
        Self {
            n_layers: 2,
            n_heads: 4,
            n_kv_heads: 2,
            head_dim: 16,
            hidden_dim: 64,
            ffn_dim: 128,
            vocab_size: 257,
            bytes_per_element: 2,
            tokens_per_frame: 4,
        }
    }

    /// A small-but-meaningful configuration for functional accuracy
    /// experiments (Table II / Fig. 19 proxies).
    pub fn small() -> Self {
        Self {
            n_layers: 4,
            n_heads: 8,
            n_kv_heads: 4,
            head_dim: 32,
            hidden_dim: 128,
            ffn_dim: 256,
            vocab_size: 512,
            bytes_per_element: 2,
            tokens_per_frame: 8,
        }
    }

    /// Query heads per KV head (the GQA group size).
    ///
    /// # Panics
    ///
    /// Panics if `n_heads` is not a multiple of `n_kv_heads`.
    pub fn gqa_group(&self) -> usize {
        assert!(
            self.n_kv_heads > 0 && self.n_heads % self.n_kv_heads == 0,
            "n_heads must be a positive multiple of n_kv_heads"
        );
        self.n_heads / self.n_kv_heads
    }

    /// KV-cache bytes appended per token across all layers
    /// (`2 · layers · kv_heads · head_dim · bytes`).
    pub fn kv_bytes_per_token(&self) -> usize {
        2 * self.n_layers * self.n_kv_heads * self.head_dim * self.bytes_per_element
    }

    /// KV-cache bytes per token for a *single* layer.
    pub fn kv_bytes_per_token_per_layer(&self) -> usize {
        self.kv_bytes_per_token() / self.n_layers
    }

    /// Total parameter count of the decoder stack plus embeddings.
    pub fn param_count(&self) -> usize {
        let d = self.hidden_dim;
        let attn = d * (self.n_heads * self.head_dim) // Wq
            + 2 * d * (self.n_kv_heads * self.head_dim) // Wk, Wv
            + (self.n_heads * self.head_dim) * d; // Wo
        let ffn = 3 * d * self.ffn_dim; // w1, w3 (gate), w2
        let norms = 2 * d;
        let per_layer = attn + ffn + norms;
        let embed = self.vocab_size * d; // tied LM head
        self.n_layers * per_layer + embed + d
    }

    /// Parameter bytes at the configured storage precision.
    pub fn param_bytes(&self) -> usize {
        self.param_count() * self.bytes_per_element
    }

    /// Dense (non-attention) FLOPs per token per layer: projections +
    /// FFN. One multiply-accumulate counts as 2 FLOPs.
    pub fn dense_flops_per_token_per_layer(&self) -> u64 {
        let d = self.hidden_dim as u64;
        let qo = 2 * d * (self.n_heads * self.head_dim) as u64 * 2;
        let kv = 2 * d * (self.n_kv_heads * self.head_dim) as u64 * 2;
        let ffn = 3 * 2 * d * self.ffn_dim as u64;
        qo + kv + ffn
    }

    /// Attention FLOPs for `new_tokens` query tokens attending to
    /// `context_tokens` cached tokens in one layer (QKᵀ + weighted sum
    /// over V across all query heads).
    pub fn attention_flops_per_layer(&self, new_tokens: usize, context_tokens: usize) -> u64 {
        2 * 2 * (self.n_heads * self.head_dim) as u64 * new_tokens as u64 * context_tokens as u64
    }

    /// Total FLOPs to process `new_tokens` with `context_tokens` of
    /// cached context through the whole decoder stack.
    pub fn total_flops(&self, new_tokens: usize, context_tokens: usize) -> u64 {
        self.n_layers as u64
            * (self.dense_flops_per_token_per_layer() * new_tokens as u64
                + self.attention_flops_per_layer(new_tokens, context_tokens))
    }

    /// KV-cache memory footprint in bytes after `seconds` of video at
    /// `fps` with `batch` independent streams (paper Fig. 4a).
    pub fn kv_footprint_bytes(&self, seconds: f64, fps: f64, batch: usize) -> usize {
        let tokens = (seconds * fps) as usize * self.tokens_per_frame;
        tokens * self.kv_bytes_per_token() * batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_kv_bytes_match_paper_setup() {
        // 2 (K+V) * 32 layers * 8 kv heads * 128 dim * 2 bytes = 128 KiB.
        assert_eq!(ModelConfig::llama3_8b().kv_bytes_per_token(), 131_072);
    }

    #[test]
    fn llama3_param_count_is_about_8b() {
        let p = ModelConfig::llama3_8b().param_count();
        assert!(
            (7_500_000_000..8_600_000_000).contains(&p),
            "param count {p} not ~8B"
        );
    }

    #[test]
    fn gqa_group_of_llama3_is_4() {
        assert_eq!(ModelConfig::llama3_8b().gqa_group(), 4);
    }

    #[test]
    fn kv_footprint_exceeds_edge_memory_within_minutes() {
        // Paper Fig. 4a: 10 FPS, batch 4 exceeds edge GPU memory
        // (32 GB incl. 16 GB weights) within minutes.
        let cfg = ModelConfig::llama3_8b();
        let budget = (32usize << 30) - cfg.param_bytes();
        let mut minutes = 0.0;
        while cfg.kv_footprint_bytes(minutes * 60.0, 10.0, 4) < budget {
            minutes += 0.5;
            assert!(minutes < 60.0, "footprint never exceeded budget");
        }
        assert!(
            minutes <= 10.0,
            "exceeded only after {minutes} min; paper says within minutes"
        );
    }

    #[test]
    fn dense_flops_scale_linearly_with_tokens() {
        let cfg = ModelConfig::small();
        let one = cfg.total_flops(1, 0);
        let ten = cfg.total_flops(10, 0);
        assert_eq!(ten, 10 * one);
    }

    #[test]
    fn attention_flops_grow_with_context() {
        let cfg = ModelConfig::small();
        assert!(cfg.total_flops(4, 1000) > cfg.total_flops(4, 100));
    }

    #[test]
    fn tiny_config_is_consistent() {
        let cfg = ModelConfig::tiny();
        assert_eq!(cfg.gqa_group(), 2);
        assert!(cfg.param_count() > 0);
        assert_eq!(
            cfg.kv_bytes_per_token_per_layer() * cfg.n_layers,
            cfg.kv_bytes_per_token()
        );
    }
}
