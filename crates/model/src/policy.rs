//! The KV-cache retrieval policy interface.
//!
//! A retrieval policy decides, per layer and attention head, which
//! cached tokens participate in attention. The streaming LLM calls the
//! policy at every prefill/generation step; ReSV (`vrex-core`) and the
//! baselines (`vrex-retrieval`) implement it.

use vrex_tensor::Matrix;

/// Which inference stage a selection is being made for. The paper's
/// central observation is that streaming video LLMs are dominated by
/// the *iterative prefill* stage, while prior retrieval work only
/// optimised generation — so policies get to behave differently per
/// stage (e.g. InfiniGen retrieves only during [`Stage::Generation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Frame-processing (iterative prefill over video/question tokens).
    Prefill,
    /// Autoregressive text generation.
    Generation,
}

/// The outcome of a selection: either attend to everything (no
/// retrieval filtering) or to an explicit ascending list of cached
/// token indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Attend to the whole cache.
    All,
    /// Attend only to these cached token indices (ascending, unique).
    Indices(Vec<usize>),
}

impl Selection {
    /// Number of tokens selected out of a cache of `cache_len`.
    pub fn selected_count(&self, cache_len: usize) -> usize {
        match self {
            Selection::All => cache_len,
            Selection::Indices(v) => v.len(),
        }
    }

    /// Selected fraction of the cache in `[0, 1]`; `1.0` for an empty
    /// cache (nothing needed fetching).
    pub fn ratio(&self, cache_len: usize) -> f64 {
        if cache_len == 0 {
            return 1.0;
        }
        self.selected_count(cache_len) as f64 / cache_len as f64
    }
}

/// Context handed to a policy when selecting tokens for one attention
/// head of one layer.
#[derive(Debug)]
pub struct SelectionRequest<'a> {
    /// Decoder layer index.
    pub layer: usize,
    /// Query head index (KV head = `query_head / gqa_group`).
    pub query_head: usize,
    /// KV head index that owns the cache being selected from.
    pub kv_head: usize,
    /// Query block `(new_tokens × head_dim)` after RoPE.
    pub queries: &'a Matrix,
    /// All cached keys of the KV head `(cached_tokens × head_dim)`,
    /// after RoPE. Policies that predict importance may read this; the
    /// hardware-cost model separately charges them for doing so.
    pub keys: &'a Matrix,
    /// Stage the selection is for.
    pub stage: Stage,
}

/// A KV-cache retrieval policy.
///
/// Implementations must be deterministic for reproducibility. Methods
/// receive `&mut self` because realistic policies keep state (hash
/// cluster tables, running statistics).
pub trait RetrievalPolicy {
    /// Human-readable policy name used in reports (e.g. `"ReSV"`).
    fn name(&self) -> &str;

    /// Notifies the policy that `new_keys` (post-RoPE) were appended to
    /// the cache of (`layer`, `kv_head`) starting at token index
    /// `start_token`. ReSV updates its hash-cluster table here.
    fn on_keys_appended(
        &mut self,
        layer: usize,
        kv_head: usize,
        new_keys: &Matrix,
        start_token: usize,
    );

    /// Selects the cached tokens that the query block should attend to.
    fn select(&mut self, request: &SelectionRequest<'_>) -> Selection;
}

/// The trivial policy: attend to the entire cache (the vanilla
/// VideoLLM-Online configuration and the FlexGen compute behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectAll;

impl SelectAll {
    /// Creates a new pass-through policy.
    pub fn new() -> Self {
        SelectAll
    }
}

impl RetrievalPolicy for SelectAll {
    fn name(&self) -> &str {
        "SelectAll"
    }

    fn on_keys_appended(&mut self, _: usize, _: usize, _: &Matrix, _: usize) {}

    fn select(&mut self, _: &SelectionRequest<'_>) -> Selection {
        Selection::All
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_ratio_all_is_one() {
        assert_eq!(Selection::All.ratio(100), 1.0);
        assert_eq!(Selection::All.selected_count(42), 42);
    }

    #[test]
    fn selection_ratio_of_indices() {
        let s = Selection::Indices(vec![0, 5, 9]);
        assert_eq!(s.selected_count(10), 3);
        assert!((s.ratio(10) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_cache_ratio_is_one() {
        assert_eq!(Selection::Indices(vec![]).ratio(0), 1.0);
    }

    #[test]
    fn select_all_policy_selects_all() {
        let mut p = SelectAll::new();
        let q = Matrix::zeros(1, 4);
        let k = Matrix::zeros(8, 4);
        let req = SelectionRequest {
            layer: 0,
            query_head: 0,
            kv_head: 0,
            queries: &q,
            keys: &k,
            stage: Stage::Prefill,
        };
        assert_eq!(p.select(&req), Selection::All);
        assert_eq!(p.name(), "SelectAll");
    }
}
