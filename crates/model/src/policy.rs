//! The KV-cache retrieval policy interface.
//!
//! A retrieval policy decides, per layer and attention head, which
//! cached tokens participate in attention. The streaming LLM calls the
//! policy at every prefill/generation step; ReSV (`vrex-core`) and the
//! baselines (`vrex-retrieval`) implement it.

use vrex_tensor::Matrix;

/// Which inference stage a selection is being made for. The paper's
/// central observation is that streaming video LLMs are dominated by
/// the *iterative prefill* stage, while prior retrieval work only
/// optimised generation — so policies get to behave differently per
/// stage (e.g. InfiniGen retrieves only during [`Stage::Generation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Frame-processing (iterative prefill over video/question tokens).
    Prefill,
    /// Autoregressive text generation.
    Generation,
}

/// The outcome of a selection: either attend to everything (no
/// retrieval filtering) or to an explicit ascending list of cached
/// token indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Attend to the whole cache.
    All,
    /// Attend only to these cached token indices (ascending, unique).
    Indices(Vec<usize>),
}

impl Selection {
    /// Number of tokens selected out of a cache of `cache_len`.
    pub fn selected_count(&self, cache_len: usize) -> usize {
        match self {
            Selection::All => cache_len,
            Selection::Indices(v) => v.len(),
        }
    }

    /// Selected fraction of the cache in `[0, 1]`; `1.0` for an empty
    /// cache (nothing needed fetching).
    pub fn ratio(&self, cache_len: usize) -> f64 {
        if cache_len == 0 {
            return 1.0;
        }
        self.selected_count(cache_len) as f64 / cache_len as f64
    }

    /// Whether the selection covers the whole cache without an explicit
    /// index list.
    pub fn is_all(&self) -> bool {
        matches!(self, Selection::All)
    }

    /// The explicit index list, if the selection already carries one.
    ///
    /// `Selection::All` has no materialized list (its extent depends on
    /// the cache length); use [`Selection::resolve`] to obtain concrete
    /// indices for a known cache length. This accessor exists so
    /// consumers that want to *stay lazy* for the full-cache case (e.g.
    /// attention, which can skip a gather) can branch without matching
    /// on the enum.
    pub fn materialized(&self) -> Option<&[usize]> {
        match self {
            Selection::All => None,
            Selection::Indices(v) => Some(v),
        }
    }

    /// Resolves the selection against a cache of `total_tokens`,
    /// yielding explicit ascending indices for **every** variant.
    ///
    /// This is the total, non-panicking counterpart of matching on the
    /// enum: `Selection::All` resolves to `0..total_tokens` instead of
    /// requiring callers to keep an unreachable (or panicking) arm.
    pub fn resolve(&self, total_tokens: usize) -> SelectedIndices {
        let indices: Vec<usize> = match self {
            Selection::All => (0..total_tokens).collect(),
            Selection::Indices(v) => v.clone(),
        };
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "selection indices must be strictly ascending (unique)"
        );
        debug_assert!(
            indices.last().is_none_or(|&i| i < total_tokens),
            "selection index out of range for cache of {total_tokens}"
        );
        SelectedIndices {
            indices,
            total: total_tokens,
        }
    }
}

/// A [`Selection`] resolved against a concrete cache length: always an
/// explicit, ascending, unique list of token indices.
///
/// Produced by [`Selection::resolve`]; consumers never need to
/// distinguish the lazy `All` case again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectedIndices {
    indices: Vec<usize>,
    total: usize,
}

impl SelectedIndices {
    /// The selected token indices (ascending, unique).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of selected tokens.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The cache length this selection was resolved against.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether every cached token was selected.
    pub fn is_total(&self) -> bool {
        self.indices.len() == self.total
    }

    /// Selected fraction of the cache in `[0, 1]`; `1.0` for an empty
    /// cache (nothing needed fetching).
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.indices.len() as f64 / self.total as f64
    }

    /// Consumes the resolution, returning the index list.
    pub fn into_vec(self) -> Vec<usize> {
        self.indices
    }
}

impl<'a> IntoIterator for &'a SelectedIndices {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.indices.iter()
    }
}

/// Context handed to a policy when selecting tokens for one attention
/// head of one layer.
#[derive(Debug)]
pub struct SelectionRequest<'a> {
    /// Decoder layer index.
    pub layer: usize,
    /// Query head index (KV head = `query_head / gqa_group`).
    pub query_head: usize,
    /// KV head index that owns the cache being selected from.
    pub kv_head: usize,
    /// Query block `(new_tokens × head_dim)` after RoPE.
    pub queries: &'a Matrix,
    /// All cached keys of the KV head `(cached_tokens × head_dim)`,
    /// after RoPE. Policies that predict importance may read this; the
    /// hardware-cost model separately charges them for doing so.
    pub keys: &'a Matrix,
    /// Stage the selection is for.
    pub stage: Stage,
}

impl SelectionRequest<'_> {
    /// Number of *history* tokens the selection ranges over: the cached
    /// tokens that precede the query block (`keys` also contains the
    /// block's own tokens, which are always attended).
    pub fn history_len(&self) -> usize {
        self.keys.rows() - self.queries.rows()
    }
}

/// A KV-cache retrieval policy.
///
/// Implementations must be deterministic for reproducibility. Methods
/// receive `&mut self` because realistic policies keep state (hash
/// cluster tables, running statistics).
pub trait RetrievalPolicy {
    /// Human-readable policy name used in reports (e.g. `"ReSV"`).
    fn name(&self) -> &str;

    /// Notifies the policy that `new_keys` (post-RoPE) were appended to
    /// the cache of (`layer`, `kv_head`) starting at token index
    /// `start_token`. ReSV updates its hash-cluster table here.
    fn on_keys_appended(
        &mut self,
        layer: usize,
        kv_head: usize,
        new_keys: &Matrix,
        start_token: usize,
    );

    /// Selects the cached tokens that the query block should attend to.
    fn select(&mut self, request: &SelectionRequest<'_>) -> Selection;

    /// Like [`RetrievalPolicy::select`], but resolved against the
    /// request's history length: always an explicit index list, with no
    /// `Selection::All` case left for the caller to handle.
    fn select_resolved(&mut self, request: &SelectionRequest<'_>) -> SelectedIndices {
        let history = request.history_len();
        self.select(request).resolve(history)
    }
}

/// The trivial policy: attend to the entire cache (the vanilla
/// VideoLLM-Online configuration and the FlexGen compute behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectAll;

impl SelectAll {
    /// Creates a new pass-through policy.
    pub fn new() -> Self {
        SelectAll
    }
}

impl RetrievalPolicy for SelectAll {
    fn name(&self) -> &str {
        "SelectAll"
    }

    fn on_keys_appended(&mut self, _: usize, _: usize, _: &Matrix, _: usize) {}

    fn select(&mut self, _: &SelectionRequest<'_>) -> Selection {
        Selection::All
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_ratio_all_is_one() {
        assert_eq!(Selection::All.ratio(100), 1.0);
        assert_eq!(Selection::All.selected_count(42), 42);
    }

    #[test]
    fn selection_ratio_of_indices() {
        let s = Selection::Indices(vec![0, 5, 9]);
        assert_eq!(s.selected_count(10), 3);
        assert!((s.ratio(10) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_cache_ratio_is_one() {
        assert_eq!(Selection::Indices(vec![]).ratio(0), 1.0);
    }

    #[test]
    fn select_all_policy_selects_all() {
        let mut p = SelectAll::new();
        let q = Matrix::zeros(1, 4);
        let k = Matrix::zeros(8, 4);
        let req = SelectionRequest {
            layer: 0,
            query_head: 0,
            kv_head: 0,
            queries: &q,
            keys: &k,
            stage: Stage::Prefill,
        };
        assert_eq!(p.select(&req), Selection::All);
        assert_eq!(p.name(), "SelectAll");
    }

    /// The refactor's contract: `Selection::All` *resolves* to the full
    /// index list rather than forcing callers into a panicking match
    /// arm (the seed had eight such panicking arms across the policy
    /// crates).
    #[test]
    fn selection_all_resolves_instead_of_panicking() {
        let resolved = Selection::All.resolve(5);
        assert_eq!(resolved.indices(), &[0, 1, 2, 3, 4]);
        assert!(resolved.is_total());
        assert_eq!(resolved.total(), 5);
        assert_eq!(resolved.ratio(), 1.0);
        assert_eq!(Selection::All.resolve(0).len(), 0);
        assert_eq!(Selection::All.resolve(0).ratio(), 1.0);
    }

    #[test]
    fn selection_indices_resolve_to_themselves() {
        let sel = Selection::Indices(vec![1, 4, 6]);
        let resolved = sel.resolve(10);
        assert_eq!(resolved.indices(), &[1, 4, 6]);
        assert!(!resolved.is_total());
        assert!((resolved.ratio() - 0.3).abs() < 1e-12);
        assert_eq!(resolved.into_vec(), vec![1, 4, 6]);
    }

    #[test]
    fn materialized_distinguishes_lazy_all() {
        assert_eq!(Selection::All.materialized(), None);
        assert!(Selection::All.is_all());
        let sel = Selection::Indices(vec![0, 2]);
        assert_eq!(sel.materialized(), Some(&[0usize, 2][..]));
        assert!(!sel.is_all());
    }

    #[test]
    fn select_resolved_uses_request_history() {
        let mut p = SelectAll::new();
        let q = Matrix::zeros(2, 4);
        let k = Matrix::zeros(8, 4);
        let req = SelectionRequest {
            layer: 0,
            query_head: 0,
            kv_head: 0,
            queries: &q,
            keys: &k,
            stage: Stage::Generation,
        };
        assert_eq!(req.history_len(), 6);
        let resolved = p.select_resolved(&req);
        assert_eq!(resolved.indices(), &[0, 1, 2, 3, 4, 5]);
        assert!(resolved.is_total());
    }

    #[test]
    fn selected_indices_iterates_in_order() {
        let resolved = Selection::Indices(vec![2, 3, 9]).resolve(12);
        let collected: Vec<usize> = resolved.into_iter().copied().collect();
        assert_eq!(collected, vec![2, 3, 9]);
    }
}
