//! Synthetic vision tower: frame embeddings with COIN-like temporal
//! structure.
//!
//! The paper's ReSV algorithm works because "tokens in adjacent frames"
//! are highly similar (Fig. 7a): instructional video consists of long
//! quasi-static scenes with slow camera/object drift, punctuated by
//! cuts. This module generates per-frame token embeddings with exactly
//! that structure:
//!
//! * a persistent *scene matrix* (one embedding per spatial token),
//! * a slow random-walk *drift* shared by consecutive frames,
//! * per-frame white *noise*, and
//! * occasional *scene cuts* that resample the scene matrix.
//!
//! The ratio of noise/drift to scene magnitude controls the adjacent
//! frame cosine similarity, which the Fig. 7 experiment measures.

use rand::rngs::StdRng;
use rand::Rng;
use vrex_tensor::rng::{gaussian_matrix, seeded_rng};
use vrex_tensor::Matrix;

/// One video frame's worth of visual-token embeddings.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index within the stream (0-based).
    pub index: usize,
    /// `(tokens_per_frame × dim)` embeddings.
    pub embeddings: Matrix,
    /// Whether this frame started a new scene (a cut).
    pub is_scene_cut: bool,
}

/// Configuration of the synthetic video stream.
#[derive(Debug, Clone)]
pub struct VideoStreamConfig {
    /// Spatial tokens per frame.
    pub tokens_per_frame: usize,
    /// Embedding dimension (the LLM hidden dimension after the MLP
    /// projector; the projector itself is part of the LLM).
    pub dim: usize,
    /// Probability of a scene cut at each new frame.
    pub scene_cut_prob: f64,
    /// Standard deviation of the per-frame drift random-walk step,
    /// relative to unit scene energy.
    pub drift_std: f32,
    /// Standard deviation of per-frame white noise.
    pub noise_std: f32,
    /// RNG seed.
    pub seed: u64,
}

impl VideoStreamConfig {
    /// A COIN-like default: long scenes (cut every ~100 frames at
    /// 10 FPS ≈ every 10 s), small drift and noise giving adjacent
    /// frame token cosine similarity around 0.9 as in Fig. 7a.
    pub fn coin_like(tokens_per_frame: usize, dim: usize, seed: u64) -> Self {
        Self {
            tokens_per_frame,
            dim,
            scene_cut_prob: 0.01,
            drift_std: 0.05,
            noise_std: 0.20,
            seed,
        }
    }
}

/// An infinite iterator of [`Frame`]s with temporal structure.
#[derive(Debug)]
pub struct VideoStream {
    cfg: VideoStreamConfig,
    rng: StdRng,
    scene: Matrix,
    drift: Matrix,
    next_index: usize,
}

impl VideoStream {
    /// Creates a stream; the first frame always starts a fresh scene.
    pub fn new(cfg: VideoStreamConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let scene = gaussian_matrix(&mut rng, cfg.tokens_per_frame, cfg.dim, 1.0);
        let drift = Matrix::zeros(cfg.tokens_per_frame, cfg.dim);
        Self {
            cfg,
            rng,
            scene,
            drift,
            next_index: 0,
        }
    }

    /// The stream configuration.
    pub fn config(&self) -> &VideoStreamConfig {
        &self.cfg
    }

    /// Produces the next frame.
    pub fn next_frame(&mut self) -> Frame {
        let index = self.next_index;
        self.next_index += 1;
        let mut is_scene_cut = index == 0;
        if index > 0 && self.rng.gen_bool(self.cfg.scene_cut_prob) {
            self.scene =
                gaussian_matrix(&mut self.rng, self.cfg.tokens_per_frame, self.cfg.dim, 1.0);
            self.drift = Matrix::zeros(self.cfg.tokens_per_frame, self.cfg.dim);
            is_scene_cut = true;
        }
        // Drift is a random walk: accumulates slowly within a scene.
        let step = gaussian_matrix(
            &mut self.rng,
            self.cfg.tokens_per_frame,
            self.cfg.dim,
            self.cfg.drift_std,
        );
        self.drift = &self.drift + &step;
        let noise = gaussian_matrix(
            &mut self.rng,
            self.cfg.tokens_per_frame,
            self.cfg.dim,
            self.cfg.noise_std,
        );
        let embeddings = &(&self.scene + &self.drift) + &noise;
        Frame {
            index,
            embeddings,
            is_scene_cut,
        }
    }

    /// Collects the next `n` frames.
    pub fn take_frames(&mut self, n: usize) -> Vec<Frame> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

impl Iterator for VideoStream {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        Some(self.next_frame())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_tensor::ops::cosine_similarity;

    fn mean_adjacent_similarity(frames: &[Frame]) -> f32 {
        let mut sims = Vec::new();
        for w in frames.windows(2) {
            if w[1].is_scene_cut {
                continue;
            }
            for t in 0..w[0].embeddings.rows() {
                sims.push(cosine_similarity(
                    w[0].embeddings.row(t),
                    w[1].embeddings.row(t),
                ));
            }
        }
        sims.iter().sum::<f32>() / sims.len() as f32
    }

    #[test]
    fn adjacent_frames_are_highly_similar() {
        let mut stream = VideoStream::new(VideoStreamConfig::coin_like(8, 64, 1));
        let frames = stream.take_frames(50);
        let sim = mean_adjacent_similarity(&frames);
        assert!(
            sim > 0.8,
            "adjacent similarity {sim} too low for COIN-like video"
        );
    }

    #[test]
    fn scene_cuts_break_similarity() {
        let cfg = VideoStreamConfig {
            scene_cut_prob: 1.0, // cut every frame
            ..VideoStreamConfig::coin_like(8, 64, 2)
        };
        let mut stream = VideoStream::new(cfg);
        let frames = stream.take_frames(20);
        let mut sims = Vec::new();
        for w in frames.windows(2) {
            for t in 0..w[0].embeddings.rows() {
                sims.push(cosine_similarity(
                    w[0].embeddings.row(t),
                    w[1].embeddings.row(t),
                ));
            }
        }
        let mean = sims.iter().sum::<f32>() / sims.len() as f32;
        assert!(
            mean.abs() < 0.3,
            "cut frames should be near-orthogonal, got {mean}"
        );
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let mut a = VideoStream::new(VideoStreamConfig::coin_like(4, 16, 7));
        let mut b = VideoStream::new(VideoStreamConfig::coin_like(4, 16, 7));
        for _ in 0..10 {
            assert_eq!(a.next_frame().embeddings, b.next_frame().embeddings);
        }
    }

    #[test]
    fn frame_indices_are_sequential() {
        let mut s = VideoStream::new(VideoStreamConfig::coin_like(2, 8, 3));
        for i in 0..5 {
            assert_eq!(s.next_frame().index, i);
        }
    }

    #[test]
    fn first_frame_is_marked_scene_cut() {
        let mut s = VideoStream::new(VideoStreamConfig::coin_like(2, 8, 4));
        assert!(s.next_frame().is_scene_cut);
    }
}
