//! # vrex-model
//!
//! A functional streaming video LLM: the workload substrate that the
//! V-Rex paper accelerates.
//!
//! The paper runs VideoLLM-Online with a Llama-3 8B backbone and a
//! SigLIP vision tower. Neither the weights nor the dataset are
//! available here, so this crate provides the closest executable
//! equivalent (see `DESIGN.md` §1):
//!
//! * a real multi-layer, multi-head transformer decoder with RoPE,
//!   grouped-query attention and growing per-layer KV caches
//!   ([`decoder`], [`llm`]) — randomly initialised but *functionally
//!   faithful*, so retrieval algorithms see genuine attention-score
//!   distributions;
//! * a synthetic vision tower ([`vision`]) whose frame embeddings have
//!   the temporal/spatial similarity structure the paper measures on
//!   COIN (Fig. 7) — persistent scenes, slow drift, occasional cuts;
//! * the **iterative prefill** driver unique to streaming video LLMs
//!   (frames arrive one by one and each runs a full prefill that both
//!   reads and extends the KV cache), plus the text generation stage;
//! * the [`policy::RetrievalPolicy`] trait that ReSV (`vrex-core`) and
//!   all baselines (`vrex-retrieval`) implement, and
//! * analytic size/FLOP formulas for the *real* Llama-3 8B
//!   configuration ([`config::ModelConfig::llama3_8b`]) consumed by the
//!   hardware simulator.

#![warn(missing_docs)]

pub mod attention;
pub mod config;
pub mod decoder;
pub mod kv_cache;
pub mod llm;
pub mod policy;
pub mod vision;

pub use config::ModelConfig;
pub use kv_cache::{KvCache, LayerKvCache};
pub use llm::{RunStats, StageStats, StreamingVideoLlm};
pub use policy::{RetrievalPolicy, SelectAll, SelectedIndices, Selection, Stage};
pub use vision::{Frame, VideoStream, VideoStreamConfig};
