//! The streaming video LLM driver: iterative prefill + generation.
//!
//! Mirrors the paper's Fig. 3 workflow: frames arrive one at a time and
//! each runs a full prefill pass through the decoder stack (reading the
//! accumulated KV cache and appending to it); user questions are
//! prefetched the same way; answers are generated autoregressively.

use rand::rngs::StdRng;
use vrex_tensor::rng::{seeded_rng, xavier_matrix};
use vrex_tensor::Matrix;

use crate::config::ModelConfig;
use crate::decoder::DecoderLayer;
use crate::kv_cache::KvCache;
use crate::policy::{RetrievalPolicy, Selection, Stage};
use crate::vision::Frame;

/// Accumulated per-run retrieval statistics.
///
/// One `RunStats` is typically kept per stage (prefill vs generation)
/// so the per-stage retrieval ratios of the paper's Table II can be
/// reported separately.
#[derive(Debug, Clone)]
pub struct RunStats {
    n_layers: usize,
    n_heads: usize,
    track_recall: bool,
    /// Σ selected history tokens, indexed `[layer][query_head]`.
    selected: Vec<Vec<u64>>,
    /// Σ history length at selection time, same indexing.
    context: Vec<Vec<u64>>,
    /// Distinct KV bytes that would be fetched (per-KV-head union of
    /// the head selections × per-token-per-layer-per-head KV bytes).
    fetch_bytes: u64,
    /// Total KV bytes a full fetch would have moved.
    full_fetch_bytes: u64,
    recall_sum: f64,
    recall_count: u64,
}

/// Compact per-stage summary of a [`RunStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStats {
    /// Mean selected fraction of the history across layers/heads/steps.
    pub mean_ratio: f64,
    /// Mean attention recall (1.0 when not tracked).
    pub mean_recall: f64,
    /// Distinct KV bytes fetched.
    pub fetch_bytes: u64,
    /// KV bytes a full fetch would have moved.
    pub full_fetch_bytes: u64,
}

impl RunStats {
    /// Creates empty statistics for `cfg`; `track_recall` additionally
    /// computes the attention-recall accuracy proxy (slower).
    pub fn new(cfg: &ModelConfig, track_recall: bool) -> Self {
        Self {
            n_layers: cfg.n_layers,
            n_heads: cfg.n_heads,
            track_recall,
            selected: vec![vec![0; cfg.n_heads]; cfg.n_layers],
            context: vec![vec![0; cfg.n_heads]; cfg.n_layers],
            fetch_bytes: 0,
            full_fetch_bytes: 0,
            recall_sum: 0.0,
            recall_count: 0,
        }
    }

    /// Whether attention recall tracking is enabled.
    pub fn track_recall(&self) -> bool {
        self.track_recall
    }

    /// Records one head-level selection over a history of `history_len`.
    pub fn record_selection(
        &mut self,
        layer: usize,
        query_head: usize,
        selection: &Selection,
        history_len: usize,
    ) {
        self.selected[layer][query_head] += selection.selected_count(history_len) as u64;
        self.context[layer][query_head] += history_len as u64;
    }

    /// Records one attention-recall observation.
    pub fn record_recall(&mut self, recall: f64) {
        self.recall_sum += recall;
        self.recall_count += 1;
    }

    /// Records the distinct-token fetch for one KV head of one layer.
    pub fn record_fetch(
        &mut self,
        _layer: usize,
        _kv_head: usize,
        distinct_tokens: usize,
        history_len: usize,
        cfg: &ModelConfig,
    ) {
        let bytes_per_token_head = 2 * cfg.head_dim * cfg.bytes_per_element;
        self.fetch_bytes += (distinct_tokens * bytes_per_token_head) as u64;
        self.full_fetch_bytes += (history_len * bytes_per_token_head) as u64;
    }

    /// Mean selected ratio for one layer (averaged over heads/steps).
    pub fn layer_ratio(&self, layer: usize) -> f64 {
        let sel: u64 = self.selected[layer].iter().sum();
        let ctx: u64 = self.context[layer].iter().sum();
        if ctx == 0 {
            1.0
        } else {
            sel as f64 / ctx as f64
        }
    }

    /// Mean selected ratio for one query head (averaged over layers).
    pub fn head_ratio(&self, head: usize) -> f64 {
        let sel: u64 = self.selected.iter().map(|l| l[head]).sum();
        let ctx: u64 = self.context.iter().map(|l| l[head]).sum();
        if ctx == 0 {
            1.0
        } else {
            sel as f64 / ctx as f64
        }
    }

    /// Overall mean selected ratio.
    pub fn overall_ratio(&self) -> f64 {
        let sel: u64 = self.selected.iter().flatten().sum();
        let ctx: u64 = self.context.iter().flatten().sum();
        if ctx == 0 {
            1.0
        } else {
            sel as f64 / ctx as f64
        }
    }

    /// Mean attention recall (`1.0` if not tracked or no observations).
    pub fn mean_recall(&self) -> f64 {
        if self.recall_count == 0 {
            1.0
        } else {
            self.recall_sum / self.recall_count as f64
        }
    }

    /// Number of layers covered.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Number of query heads covered.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Produces the compact summary.
    pub fn summary(&self) -> StageStats {
        StageStats {
            mean_ratio: self.overall_ratio(),
            mean_recall: self.mean_recall(),
            fetch_bytes: self.fetch_bytes,
            full_fetch_bytes: self.full_fetch_bytes,
        }
    }
}

/// A complete streaming video LLM: vision projector + decoder stack +
/// tied LM head, with a growing KV cache.
///
/// # Examples
///
/// ```
/// use vrex_model::{ModelConfig, SelectAll, StreamingVideoLlm, RunStats};
/// use vrex_model::{VideoStream, VideoStreamConfig};
///
/// let cfg = ModelConfig::tiny();
/// let mut llm = StreamingVideoLlm::new(cfg.clone(), 42);
/// let mut video = VideoStream::new(VideoStreamConfig::coin_like(
///     cfg.tokens_per_frame, cfg.hidden_dim, 7));
/// let mut policy = SelectAll::new();
/// let mut stats = RunStats::new(&cfg, false);
/// llm.process_frame(&video.next_frame(), &mut policy, &mut stats);
/// assert_eq!(llm.cache().len(), cfg.tokens_per_frame);
/// ```
pub struct StreamingVideoLlm {
    cfg: ModelConfig,
    layers: Vec<DecoderLayer>,
    embed: Matrix,
    projector: Matrix,
    cache: KvCache,
    pos: usize,
}

impl std::fmt::Debug for StreamingVideoLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingVideoLlm")
            .field("layers", &self.layers.len())
            .field("cached_tokens", &self.pos)
            .finish()
    }
}

impl StreamingVideoLlm {
    /// Creates a model with deterministic random weights.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        let mut rng: StdRng = seeded_rng(seed);
        let layers = (0..cfg.n_layers)
            .map(|_| DecoderLayer::new(&cfg, &mut rng))
            .collect();
        let embed = xavier_matrix(&mut rng, cfg.vocab_size, cfg.hidden_dim);
        let projector = xavier_matrix(&mut rng, cfg.hidden_dim, cfg.hidden_dim);
        let cache = KvCache::new(&cfg);
        Self {
            cfg,
            layers,
            embed,
            projector,
            cache,
            pos: 0,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The current KV cache.
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// Current absolute position (== cached tokens).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Clears the cache and position, keeping the weights.
    pub fn reset(&mut self) {
        self.cache = KvCache::new(&self.cfg);
        self.pos = 0;
    }

    /// Runs one block of embedded tokens through the full stack,
    /// appending to the cache. Returns the final hidden states.
    pub fn forward_block(
        &mut self,
        embeddings: &Matrix,
        policy: &mut dyn RetrievalPolicy,
        stage: Stage,
        stats: &mut RunStats,
    ) -> Matrix {
        assert_eq!(
            embeddings.cols(),
            self.cfg.hidden_dim,
            "embedding width must equal hidden_dim"
        );
        let start = self.pos;
        let mut x = embeddings.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            x = layer.forward(
                &self.cfg,
                l,
                &x,
                self.cache.layer_mut(l),
                policy,
                stage,
                start,
                stats,
            );
        }
        self.pos += embeddings.rows();
        debug_assert_eq!(self.cache.len(), self.pos);
        x
    }

    /// Processes one video frame (iterative prefill step): projects the
    /// frame embeddings into the LLM space and prefills them.
    pub fn process_frame(
        &mut self,
        frame: &Frame,
        policy: &mut dyn RetrievalPolicy,
        stats: &mut RunStats,
    ) -> Matrix {
        let projected = frame.embeddings.matmul(&self.projector);
        self.forward_block(&projected, policy, Stage::Prefill, stats)
    }

    /// Embeds token ids via the embedding table (ids are taken modulo
    /// the vocabulary so arbitrary hashed ids are safe).
    pub fn embed_tokens(&self, ids: &[usize]) -> Matrix {
        let rows: Vec<&[f32]> = ids
            .iter()
            .map(|&id| self.embed.row(id % self.cfg.vocab_size))
            .collect();
        Matrix::from_rows(&rows)
    }

    /// Prefills a user question (text tokens) — still the prefill stage
    /// per the paper's pipeline.
    pub fn process_text(
        &mut self,
        token_ids: &[usize],
        policy: &mut dyn RetrievalPolicy,
        stats: &mut RunStats,
    ) -> Matrix {
        let emb = self.embed_tokens(token_ids);
        self.forward_block(&emb, policy, Stage::Prefill, stats)
    }

    /// Greedy-decodes `n_tokens` starting from `last_hidden` (the final
    /// hidden state of the prompt). Returns the generated token ids.
    pub fn generate(
        &mut self,
        last_hidden: &Matrix,
        n_tokens: usize,
        policy: &mut dyn RetrievalPolicy,
        stats: &mut RunStats,
    ) -> Vec<usize> {
        let mut out = Vec::with_capacity(n_tokens);
        let mut hidden = Matrix::from_rows(&[last_hidden.row(last_hidden.rows() - 1)]);
        for _ in 0..n_tokens {
            let id = self.argmax_token(&hidden);
            out.push(id);
            let emb = self.embed_tokens(&[id]);
            hidden = self.forward_block(&emb, policy, Stage::Generation, stats);
        }
        out
    }

    /// LM head (tied to the embedding table): argmax next-token id for
    /// the last row of `hidden`.
    pub fn argmax_token(&self, hidden: &Matrix) -> usize {
        let last = Matrix::from_rows(&[hidden.row(hidden.rows() - 1)]);
        let logits = last.matmul_transposed(&self.embed);
        let row = logits.row(0);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SelectAll;
    use crate::vision::{VideoStream, VideoStreamConfig};

    fn make_llm() -> (StreamingVideoLlm, VideoStream) {
        let cfg = ModelConfig::tiny();
        let video = VideoStream::new(VideoStreamConfig::coin_like(
            cfg.tokens_per_frame,
            cfg.hidden_dim,
            11,
        ));
        (StreamingVideoLlm::new(cfg, 5), video)
    }

    #[test]
    fn iterative_prefill_grows_cache_per_frame() {
        let (mut llm, mut video) = make_llm();
        let mut policy = SelectAll::new();
        let cfg = llm.config().clone();
        let mut stats = RunStats::new(&cfg, false);
        for i in 1..=3 {
            let f = video.next_frame();
            llm.process_frame(&f, &mut policy, &mut stats);
            assert_eq!(llm.cache().len(), i * cfg.tokens_per_frame);
            llm.cache().assert_coherent();
        }
    }

    #[test]
    fn question_and_generation_extend_cache() {
        let (mut llm, mut video) = make_llm();
        let mut policy = SelectAll::new();
        let cfg = llm.config().clone();
        let mut stats = RunStats::new(&cfg, false);
        let f = video.next_frame();
        llm.process_frame(&f, &mut policy, &mut stats);
        let h = llm.process_text(&[1, 2, 3], &mut policy, &mut stats);
        let before = llm.cache().len();
        let out = llm.generate(&h, 4, &mut policy, &mut stats);
        assert_eq!(out.len(), 4);
        assert_eq!(llm.cache().len(), before + 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let run = || {
            let (mut llm, mut video) = make_llm();
            let mut policy = SelectAll::new();
            let cfg = llm.config().clone();
            let mut stats = RunStats::new(&cfg, false);
            let f = video.next_frame();
            llm.process_frame(&f, &mut policy, &mut stats);
            let h = llm.process_text(&[9, 8], &mut policy, &mut stats);
            llm.generate(&h, 5, &mut policy, &mut stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_clears_state() {
        let (mut llm, mut video) = make_llm();
        let mut policy = SelectAll::new();
        let cfg = llm.config().clone();
        let mut stats = RunStats::new(&cfg, false);
        llm.process_frame(&video.next_frame(), &mut policy, &mut stats);
        llm.reset();
        assert_eq!(llm.cache().len(), 0);
        assert_eq!(llm.position(), 0);
    }

    #[test]
    fn run_stats_ratio_is_one_for_select_all() {
        let (mut llm, mut video) = make_llm();
        let mut policy = SelectAll::new();
        let cfg = llm.config().clone();
        let mut stats = RunStats::new(&cfg, false);
        llm.process_frame(&video.next_frame(), &mut policy, &mut stats);
        llm.process_frame(&video.next_frame(), &mut policy, &mut stats);
        assert_eq!(stats.overall_ratio(), 1.0);
        let s = stats.summary();
        assert_eq!(s.fetch_bytes, s.full_fetch_bytes);
        assert_eq!(s.mean_recall, 1.0);
    }

    #[test]
    fn stats_layer_and_head_ratios_bounded() {
        let (mut llm, mut video) = make_llm();
        let mut policy = SelectAll::new();
        let cfg = llm.config().clone();
        let mut stats = RunStats::new(&cfg, false);
        llm.process_frame(&video.next_frame(), &mut policy, &mut stats);
        for l in 0..cfg.n_layers {
            let r = stats.layer_ratio(l);
            assert!((0.0..=1.0).contains(&r));
        }
        for h in 0..cfg.n_heads {
            let r = stats.head_ratio(h);
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
