//! Property tests for the streaming model: cache coherence under
//! arbitrary block schedules and attention-selection identities.

use proptest::prelude::*;
use vrex_model::attention::{attention_with_selection, selection_recall};
use vrex_model::policy::{Selection, Stage};
use vrex_model::{ModelConfig, RunStats, SelectAll, StreamingVideoLlm};
use vrex_tensor::rng::{gaussian_matrix, seeded_rng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cache stays coherent (all layers/heads in lockstep) for any
    /// sequence of prefill block sizes, and the position counter tracks
    /// the total exactly.
    #[test]
    fn cache_coherent_under_arbitrary_block_schedule(
        blocks in proptest::collection::vec(1usize..6, 1..6),
        seed in 0u64..100,
    ) {
        let cfg = ModelConfig::tiny();
        let mut llm = StreamingVideoLlm::new(cfg.clone(), seed);
        let mut policy = SelectAll::new();
        let mut stats = RunStats::new(&cfg, false);
        let mut rng = seeded_rng(seed + 1);
        let mut total = 0;
        for &b in &blocks {
            let emb = gaussian_matrix(&mut rng, b, cfg.hidden_dim, 0.5);
            let out = llm.forward_block(&emb, &mut policy, Stage::Prefill, &mut stats);
            prop_assert_eq!(out.rows(), b);
            total += b;
            llm.cache().assert_coherent();
            prop_assert_eq!(llm.position(), total);
        }
    }

    /// Attending to an explicitly listed full history equals
    /// `Selection::All` for any shapes.
    #[test]
    fn explicit_full_selection_equals_all(
        old in 0usize..24, new in 1usize..6, d in 1usize..5, seed in 0u64..200
    ) {
        let d = d * 2;
        let mut rng = seeded_rng(seed);
        let q = gaussian_matrix(&mut rng, new, d, 1.0);
        let k = gaussian_matrix(&mut rng, old + new, d, 1.0);
        let v = gaussian_matrix(&mut rng, old + new, d, 1.0);
        let a = attention_with_selection(&q, &k, &v, old, &Selection::All);
        let b = attention_with_selection(&q, &k, &v, old, &Selection::Indices((0..old).collect()));
        prop_assert!(a.max_abs_diff(&b) < 1e-4);
    }

    /// Attention output is a convex combination of value rows: every
    /// output coordinate lies within the min/max of the visible values.
    #[test]
    fn attention_output_is_convex_combination(
        old in 1usize..16, d in 1usize..4, seed in 0u64..200
    ) {
        let d = d * 2;
        let mut rng = seeded_rng(seed);
        let q = gaussian_matrix(&mut rng, 1, d, 1.0);
        let k = gaussian_matrix(&mut rng, old + 1, d, 1.0);
        let v = gaussian_matrix(&mut rng, old + 1, d, 1.0);
        let out = attention_with_selection(&q, &k, &v, old, &Selection::All);
        for c in 0..d {
            let col: Vec<f32> = (0..old + 1).map(|r| v[(r, c)]).collect();
            let lo = col.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[(0, c)] >= lo - 1e-4 && out[(0, c)] <= hi + 1e-4);
        }
    }

    /// Recall is within [0,1], equals 1 for full selection, and is
    /// weakly monotone under adding indices.
    #[test]
    fn recall_bounds_and_monotonicity(
        old in 2usize..20, d in 1usize..4, take in 1usize..10, seed in 0u64..200
    ) {
        let d = d * 2;
        let mut rng = seeded_rng(seed);
        let q = gaussian_matrix(&mut rng, 2, d, 1.0);
        let k = gaussian_matrix(&mut rng, old + 2, d, 1.0);
        let take = take.min(old);
        let small: Vec<usize> = (0..take).collect();
        let big: Vec<usize> = (0..old).collect();
        let r_small = selection_recall(&q, &k, old, &Selection::Indices(small));
        let r_big = selection_recall(&q, &k, old, &Selection::Indices(big));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r_small));
        prop_assert!((r_big - 1.0).abs() < 1e-6);
        prop_assert!(r_small <= r_big + 1e-9);
    }

    /// Selection ratios reported by RunStats stay in [0,1] and a
    /// SelectAll run reports exactly 1.
    #[test]
    fn stats_ratios_bounded(blocks in 1usize..4, seed in 0u64..50) {
        let cfg = ModelConfig::tiny();
        let mut llm = StreamingVideoLlm::new(cfg.clone(), seed);
        let mut policy = SelectAll::new();
        let mut stats = RunStats::new(&cfg, false);
        let mut rng = seeded_rng(seed);
        for _ in 0..blocks {
            let emb = gaussian_matrix(&mut rng, 3, cfg.hidden_dim, 0.5);
            llm.forward_block(&emb, &mut policy, Stage::Prefill, &mut stats);
        }
        prop_assert_eq!(stats.overall_ratio(), 1.0);
        for l in 0..cfg.n_layers {
            prop_assert!((0.0..=1.0).contains(&stats.layer_ratio(l)));
        }
    }
}
