//! Property tests for the system cost model: monotonicity and
//! conservation laws the figures depend on.

use proptest::prelude::*;
use vrex_model::ModelConfig;
use vrex_system::pipeline::{cold_selected_tokens, layer_costs, selected_tokens, Workload};
use vrex_system::serve::SessionOutcome;
use vrex_system::{
    serve, serve_sharded, serve_sharded_stream, serve_sharded_traced,
    serve_sharded_traced_with_workers, serve_sharded_with_cache, serve_stream, serve_traced,
    DevicePool, Method, PlacementPolicy, PlatformSpec, QueueKind, ServeConfig, StepPriceCache,
    SystemModel, TieredKvManager, TraceKind,
};
use vrex_workload::traffic::TrafficConfig;

const METHODS: [Method; 6] = [
    Method::FlexGen,
    Method::InfiniGen,
    Method::InfiniGenP,
    Method::ReKV,
    Method::ReSV,
    Method::Oaken,
];

fn platforms() -> Vec<PlatformSpec> {
    vec![
        PlatformSpec::agx_orin(),
        PlatformSpec::a100(),
        PlatformSpec::vrex8(),
        PlatformSpec::vrex48(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Selection counts are conserved: cold ≤ selected ≤ cache, and the
    /// ratio honoured to within rounding.
    #[test]
    fn selection_conservation(
        cache in 1usize..100_000,
        batch in 1usize..16,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
        generation in any::<bool>(),
    ) {
        let method = METHODS[method_idx];
        let platform = &platforms()[platform_idx];
        let model = ModelConfig::llama3_8b();
        let w = Workload {
            model: model.clone(),
            cache_tokens: cache,
            batch,
            new_tokens: if generation { 1 } else { model.tokens_per_frame },
            generation,
        };
        let sel = selected_tokens(method, &w);
        let cold = cold_selected_tokens(platform, method, &w);
        prop_assert!(sel <= cache);
        prop_assert!(cold <= sel);
        let expected = (cache as f64 * method.ratio(generation)).ceil() as usize;
        prop_assert_eq!(sel, expected.min(cache));
    }

    /// Layer latency is the overlap composition: never below the
    /// slowest component, never above the serial sum.
    #[test]
    fn layer_latency_bounded_by_components(
        cache in 1usize..80_000,
        batch in 1usize..8,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
    ) {
        let method = METHODS[method_idx];
        let platform = &platforms()[platform_idx];
        let w = Workload::frame(&ModelConfig::llama3_8b(), cache, batch);
        let c = layer_costs(platform, method, &w);
        let serial = c.dense_ps + c.attention_ps + c.prediction_ps + c.fetch_ps;
        let slowest = c.dense_ps.max(c.attention_ps).max(c.prediction_ps).max(c.fetch_ps);
        prop_assert!(c.layer_ps >= slowest, "layer {} < slowest {}", c.layer_ps, slowest);
        prop_assert!(c.layer_ps <= serial, "layer {} > serial {}", c.layer_ps, serial);
    }

    /// Frame latency is weakly monotone in cache length for every
    /// platform+method pair.
    #[test]
    fn latency_monotone_in_cache_length(
        base in 1_000usize..20_000,
        growth in 1usize..4,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
    ) {
        let method = METHODS[method_idx];
        let platform = platforms()[platform_idx].clone();
        let sys = SystemModel::new(platform, method);
        let model = ModelConfig::llama3_8b();
        let t1 = sys.frame_step(&model, base, 1).latency_ps;
        let t2 = sys.frame_step(&model, base * (1 + growth), 1).latency_ps;
        prop_assert!(t2 >= t1, "latency fell: {t1} -> {t2}");
    }

    /// Energy is positive and increases with batch size.
    #[test]
    fn energy_positive_and_monotone_in_batch(
        cache in 1_000usize..40_000,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
    ) {
        let method = METHODS[method_idx];
        let platform = platforms()[platform_idx].clone();
        let sys = SystemModel::new(platform, method);
        let model = ModelConfig::llama3_8b();
        let e1 = sys.frame_step(&model, cache, 1).energy.total_j();
        let e4 = sys.frame_step(&model, cache, 4).energy.total_j();
        prop_assert!(e1 > 0.0);
        prop_assert!(e4 >= e1 * 0.99, "batch 4 energy {e4} below batch 1 {e1}");
    }

    /// OOM is monotone: once a configuration OOMs at some cache length
    /// it also OOMs at every longer length (same batch).
    #[test]
    fn oom_is_monotone(
        batch in 1usize..32,
        method_idx in 0usize..6,
    ) {
        let method = METHODS[method_idx];
        let sys = SystemModel::new(PlatformSpec::agx_orin(), method);
        let model = ModelConfig::llama3_8b();
        let mut seen_oom = false;
        for cache in [1_000usize, 5_000, 10_000, 20_000, 40_000, 80_000] {
            let oom = sys.is_oom(&model, cache, batch);
            if seen_oom {
                prop_assert!(oom, "OOM not monotone at {cache} batch {batch}");
            }
            seen_oom |= oom;
        }
    }

    /// TPOT never exceeds the same cache length's frame latency (a
    /// generation step does strictly less work).
    #[test]
    fn tpot_leq_frame_latency(
        cache in 1_000usize..40_000,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
    ) {
        let method = METHODS[method_idx];
        let platform = platforms()[platform_idx].clone();
        let sys = SystemModel::new(platform, method);
        let model = ModelConfig::llama3_8b();
        let frame = sys.frame_step(&model, cache, 1).latency_ps;
        let tpot = sys.decode_step(&model, cache, 1).latency_ps;
        prop_assert!(tpot <= frame, "TPOT {tpot} above frame {frame}");
    }

    /// The serving scheduler conserves sessions (admitted + rejected ==
    /// offered) and work (every admitted session processes all of its
    /// frames), for arbitrary fleets and seeds.
    #[test]
    fn serving_conserves_sessions_and_frames(
        sessions in 1usize..6,
        seed in 0u64..500,
        method_idx in 0usize..6,
    ) {
        let plans = TrafficConfig {
            sessions,
            turns: 1,
            arrival_spread_s: 4.0,
            seed,
        }
        .generate();
        let sys = SystemModel::new(PlatformSpec::vrex48(), METHODS[method_idx]);
        let model = ModelConfig::llama3_8b();
        let r = serve(&sys, &model, &plans, &ServeConfig::real_time(4_000));
        prop_assert_eq!(r.offered, sessions);
        prop_assert_eq!(r.admitted + r.rejected, r.offered);
        prop_assert!(r.queued <= r.admitted);
        prop_assert!(r.real_time_sessions <= r.admitted);
        prop_assert!((0.0..=1.0).contains(&r.real_time_fraction()));
        for s in r.sessions.iter().filter(|s| s.outcome != SessionOutcome::Rejected) {
            let plan = plans.iter().find(|p| p.id == s.id).unwrap();
            prop_assert_eq!(s.frames_offered, plan.total_frames());
            prop_assert_eq!(s.frame_lags_s.len(), s.frames_offered);
            // Lags are non-negative and the max is consistent.
            prop_assert!(s.frame_lags_s.iter().all(|&l| l >= 0.0));
            prop_assert!(s.max_frame_lag_s >= s.mean_frame_lag_s);
        }
    }

    /// Tiered admission never admits fewer sessions than reject-only
    /// at the same device memory, conserves sessions, and its tiering
    /// accounting is self-consistent (hits + misses cover every spill,
    /// hidden time only exists under speculation).
    #[test]
    fn tiered_admission_dominates_reject_only(
        sessions in 1usize..8,
        seed in 0u64..200,
        method_idx in 0usize..6,
    ) {
        let plans = TrafficConfig {
            sessions,
            turns: 1,
            arrival_spread_s: 6.0,
            seed,
        }
        .generate();
        let sys = SystemModel::new(PlatformSpec::agx_orin(), METHODS[method_idx]);
        let model = ModelConfig::llama3_8b();
        let reject = serve(&sys, &model, &plans, &ServeConfig::real_time(30_000));
        let tiered = serve(&sys, &model, &plans, &ServeConfig::real_time_tiered(30_000));
        prop_assert_eq!(tiered.admitted + tiered.rejected, tiered.offered);
        prop_assert!(
            tiered.admitted >= reject.admitted,
            "tiering admitted {} < reject-only {}",
            tiered.admitted,
            reject.admitted
        );
        let t = tiered.tiering.expect("tiered run reports tiering");
        prop_assert!(t.exposed_s >= 0.0 && t.hidden_s >= 0.0);
        if t.spilled_bytes == 0 {
            prop_assert_eq!(t.tier_miss_steps, 0);
            prop_assert_eq!(t.spilled_sessions, 0);
        }
        for s in &tiered.sessions {
            prop_assert!(s.tier_exposed_s >= 0.0);
            if s.outcome == SessionOutcome::Rejected {
                prop_assert!(!s.spilled);
            }
        }
    }

    /// Event-queue invariants over random fleets: simulated time is
    /// strictly monotone (the PR 3 livelock class — time standing
    /// still while work remains — is impossible wholesale), no
    /// scheduler transition fires in the past, and every offered
    /// session terminates in exactly one of admitted / rejected /
    /// out-waited.
    #[test]
    fn event_queue_time_is_monotone_and_outcomes_partition(
        sessions in 1usize..8,
        turns in 0usize..3,
        spread in 0.0f64..12.0,
        max_wait in 0.0f64..12.0,
        cache in 1_000usize..40_000,
        seed in 0u64..300,
        method_idx in 0usize..6,
        tiered_admission in any::<bool>(),
    ) {
        let plans = TrafficConfig {
            sessions,
            turns,
            arrival_spread_s: spread,
            seed,
        }
        .generate();
        let sys = SystemModel::new(PlatformSpec::agx_orin(), METHODS[method_idx]);
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig {
            max_wait_s: max_wait,
            admission: if tiered_admission {
                vrex_system::AdmissionPolicy::tiered_speculative()
            } else {
                vrex_system::AdmissionPolicy::RejectOnly
            },
            ..ServeConfig::real_time(cache)
        };
        let (r, trace) = serve_traced(&sys, &model, &plans, &cfg);
        // Strictly monotone simulated time: every recorded transition
        // advanced the clock, none fired at or before its predecessor
        // (and therefore none in the past).
        for w in trace.windows(2) {
            prop_assert!(
                w[0].ps < w[1].ps,
                "time stalled or rewound: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // Work implies progress: any admitted work produced at least
        // one completed step transition.
        if r.sessions.iter().any(|s| s.frames_offered > 0) {
            prop_assert!(trace.iter().any(|e| e.kind == TraceKind::StepComplete));
        }
        // Outcome partition: every offered session reaches exactly one
        // terminal outcome, ids are unique and drawn from the plans.
        prop_assert_eq!(r.sessions.len(), plans.len());
        let mut seen = std::collections::BTreeSet::new();
        for s in &r.sessions {
            prop_assert!(seen.insert(s.id), "session {} reported twice", s.id);
            prop_assert!(plans.iter().any(|p| p.id == s.id));
            // The outcome enum is the partition; rejected sessions
            // never out-wait for free: their recorded wait respects
            // the patience bound as the scheduler sees it — the
            // ps-rounded deadline, which for a random f64 patience
            // can sit just below `max_wait_s` itself.
            let patience_floor_s =
                vrex_hwsim::ps_to_seconds(vrex_hwsim::seconds_to_ps(cfg.max_wait_s));
            if s.outcome == SessionOutcome::Rejected && s.waited_s > 0.0 {
                prop_assert!(
                    s.waited_s >= patience_floor_s,
                    "out-waited below patience: {} < {}",
                    s.waited_s,
                    patience_floor_s
                );
            }
        }
        prop_assert_eq!(r.admitted + r.rejected, r.offered);
    }

    /// Resource-timeline execution over random fleets: the overlapped
    /// scheduler conserves sessions and work exactly like the
    /// serialized one, its trace never rewinds (weakly monotone — two
    /// batches may complete at one instant), and every run is
    /// deterministic. Debug builds additionally assert, inside the
    /// scheduler, that the incremental per-kind ready set matches the
    /// full fleet rescan at every pass — for both execution models.
    #[test]
    fn overlapped_serving_conserves_sessions_and_work(
        sessions in 1usize..6,
        turns in 0usize..3,
        spread in 0.0f64..10.0,
        cache in 1_000usize..40_000,
        seed in 0u64..200,
        method_idx in 0usize..6,
        tiered_admission in any::<bool>(),
    ) {
        let plans = TrafficConfig {
            sessions,
            turns,
            arrival_spread_s: spread,
            seed,
        }
        .generate();
        let sys = SystemModel::new(PlatformSpec::agx_orin(), METHODS[method_idx]);
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig {
            admission: if tiered_admission {
                vrex_system::AdmissionPolicy::tiered_speculative()
            } else {
                vrex_system::AdmissionPolicy::RejectOnly
            },
            ..ServeConfig::real_time(cache)
        }
        .with_overlap(true);
        let (r, trace) = serve_traced(&sys, &model, &plans, &cfg);
        for w in trace.windows(2) {
            prop_assert!(
                w[0].ps <= w[1].ps,
                "overlapped time rewound: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        prop_assert_eq!(r.admitted + r.rejected, r.offered);
        prop_assert_eq!(r.sessions.len(), plans.len());
        let mut seen = std::collections::BTreeSet::new();
        for s in &r.sessions {
            prop_assert!(seen.insert(s.id), "session {} reported twice", s.id);
            if s.outcome != SessionOutcome::Rejected {
                let plan = plans.iter().find(|p| p.id == s.id).unwrap();
                prop_assert_eq!(s.frames_offered, plan.total_frames());
                prop_assert_eq!(
                    s.final_cache_tokens,
                    cfg.initial_cache_tokens
                        + plan.total_cache_growth_tokens(model.tokens_per_frame)
                );
            }
        }
        if r.sessions.iter().any(|s| s.frames_offered > 0) {
            prop_assert!(trace.iter().any(|e| e.kind == TraceKind::StepComplete));
        }
        prop_assert_eq!(&serve(&sys, &model, &plans, &cfg), &r);
    }

    /// The memoized price cache is bit-identical to uncached
    /// `SystemModel` pricing for arbitrary shapes, on both the miss
    /// and the hit path.
    #[test]
    fn price_cache_matches_uncached_pricing(
        cache_tokens in 1usize..80_000,
        batch in 1usize..32,
        question in 1usize..200,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
    ) {
        let method = METHODS[method_idx];
        let platform = platforms()[platform_idx].clone();
        let sys = SystemModel::new(platform, method);
        let model = ModelConfig::llama3_8b();
        let mut prices = StepPriceCache::new(&sys, &model);
        for _ in 0..2 {
            prop_assert_eq!(
                prices.frame_step(cache_tokens, batch),
                sys.frame_step(&model, cache_tokens, batch)
            );
            prop_assert_eq!(
                prices.decode_step(cache_tokens, batch),
                sys.decode_step(&model, cache_tokens, batch)
            );
            prop_assert_eq!(
                prices.question_step(cache_tokens, batch, question),
                sys.question_step(&model, cache_tokens, batch, question)
            );
        }
        prop_assert_eq!(prices.hits(), prices.misses());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The timer-wheel event core is a bit-exact drop-in for the
    /// binary heap: over random fleets, both admission policies, and
    /// both execution models, the two [`QueueKind`]s produce identical
    /// reports, identical traces (every transition, not just a
    /// fingerprint), and identical event-loop counters.
    #[test]
    fn wheel_and_heap_event_cores_are_bit_identical(
        sessions in 1usize..8,
        turns in 0usize..3,
        spread in 0.0f64..12.0,
        max_wait in 0.0f64..12.0,
        cache in 1_000usize..40_000,
        seed in 0u64..300,
        method_idx in 0usize..6,
        tiered_admission in any::<bool>(),
        overlap in any::<bool>(),
    ) {
        let plans = TrafficConfig {
            sessions,
            turns,
            arrival_spread_s: spread,
            seed,
        }
        .generate();
        let sys = SystemModel::new(PlatformSpec::agx_orin(), METHODS[method_idx]);
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig {
            max_wait_s: max_wait,
            admission: if tiered_admission {
                vrex_system::AdmissionPolicy::tiered_speculative()
            } else {
                vrex_system::AdmissionPolicy::RejectOnly
            },
            overlap,
            ..ServeConfig::real_time(cache)
        };
        let (heap_r, heap_t) = serve_traced(&sys, &model, &plans, &cfg.with_queue(QueueKind::Heap));
        let (wheel_r, wheel_t) =
            serve_traced(&sys, &model, &plans, &cfg.with_queue(QueueKind::Wheel));
        prop_assert_eq!(&heap_t, &wheel_t, "traces diverged between event cores");
        prop_assert_eq!(&heap_r, &wheel_r, "reports diverged between event cores");
        // Counters sit outside report equality (serialized vs overlap
        // do different loop work), but across queue kinds the loop is
        // the same loop: they must match exactly too.
        prop_assert_eq!(heap_r.counters, wheel_r.counters);
    }

    /// Streaming plan delivery is report-identical to the materialized
    /// slice: [`serve_stream`] over [`TrafficConfig::stream`] equals
    /// [`serve`] over [`TrafficConfig::generate`] — the fleet-scale
    /// path changes memory residency, never outcomes.
    #[test]
    fn streamed_fleets_reproduce_materialized_reports(
        sessions in 1usize..8,
        turns in 0usize..3,
        spread in 0.0f64..12.0,
        cache in 1_000usize..40_000,
        seed in 0u64..300,
        queue_wheel in any::<bool>(),
    ) {
        let traffic = TrafficConfig {
            sessions,
            turns,
            arrival_spread_s: spread,
            seed,
        };
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig::real_time(cache).with_queue(if queue_wheel {
            QueueKind::Wheel
        } else {
            QueueKind::Heap
        });
        let materialized = serve(&sys, &model, &traffic.generate(), &cfg);
        let mut prices = StepPriceCache::new(&sys, &model);
        let streamed = serve_stream(&mut prices, &mut traffic.stream(), &cfg);
        prop_assert_eq!(&materialized, &streamed);
        prop_assert_eq!(materialized.counters, streamed.counters);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded-placement invariants over random fleets, for every
    /// [`PlacementPolicy`]: conservation (every offered session is
    /// placed on exactly one valid device, and the per-device reports
    /// partition the fleet), plus determinism — bit-identical reports
    /// and per-device traces across `QueueKind::Heap`/`Wheel`, and
    /// across streamed vs materialized plan delivery.
    #[test]
    fn sharded_placement_conserves_and_is_deterministic(
        sessions in 1usize..7,
        turns in 0usize..3,
        spread in 0.0f64..10.0,
        cache in 2_000usize..40_000,
        seed in 0u64..300,
        devices in 1usize..4,
        policy_idx in 0usize..4,
    ) {
        let policy = PlacementPolicy::ALL[policy_idx];
        let traffic = TrafficConfig {
            sessions,
            turns,
            arrival_spread_s: spread,
            seed,
        };
        let plans = traffic.generate();
        let pool = DevicePool::homogeneous(PlatformSpec::vrex48(), devices);
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig::real_time(cache);
        let (heap, heap_t) = serve_sharded_traced(
            &pool, Method::ReSV, &model, &plans, &cfg.with_queue(QueueKind::Heap), policy,
        );
        let (wheel, wheel_t) = serve_sharded_traced(
            &pool, Method::ReSV, &model, &plans, &cfg.with_queue(QueueKind::Wheel), policy,
        );
        prop_assert_eq!(&heap_t, &wheel_t, "device traces diverged between event cores");
        prop_assert_eq!(&heap, &wheel, "sharded reports diverged between event cores");
        // Conservation: the placement map lists every offered session
        // exactly once, on a device that exists.
        let mut placed: Vec<usize> = heap.placements.iter().map(|&(id, _)| id).collect();
        placed.sort_unstable();
        let mut offered: Vec<usize> = plans.iter().map(|p| p.id).collect();
        offered.sort_unstable();
        prop_assert_eq!(placed, offered);
        prop_assert!(heap.placements.iter().all(|&(_, d)| d < devices));
        // The per-device reports partition the fleet: device-local
        // offered counts sum to the fleet, and every session terminates
        // on its one device.
        prop_assert_eq!(heap.devices.len(), devices);
        prop_assert_eq!(heap.offered(), sessions);
        prop_assert_eq!(heap.devices.iter().map(|r| r.offered).sum::<usize>(), sessions);
        prop_assert_eq!(heap.admitted() + heap.rejected(), heap.offered());
        prop_assert!(heap.real_time_sessions() <= heap.admitted());
        // Streamed plan delivery reproduces the materialized report.
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let mut prices = StepPriceCache::new(&sys, &model);
        let materialized = serve_sharded_with_cache(&mut prices, &pool, &plans, &cfg, policy);
        let streamed = serve_sharded_stream(&mut prices, &pool, &mut traffic.stream(), &cfg, policy);
        prop_assert_eq!(&materialized, &streamed, "streamed vs materialized sharded reports");
        prop_assert_eq!(&materialized, &heap);
    }

    /// The parallel-execution contract: fanning the per-device serve
    /// loops out across scoped worker threads is byte-identical to the
    /// sequential path at every worker count — same per-device reports,
    /// same placement map, same interconnect accounting, and identical
    /// per-device scheduler traces — for every placement policy and
    /// both event cores. Placement completes before any device runs,
    /// pricing is a pure function (cache contents never change a
    /// result), and the scoped join returns results in device order;
    /// this test pins that argument against the implementation.
    #[test]
    fn parallel_sharded_is_byte_identical_to_sequential(
        sessions in 1usize..7,
        turns in 0usize..3,
        spread in 0.0f64..10.0,
        cache in 2_000usize..40_000,
        seed in 0u64..300,
        devices in 2usize..5,
        policy_idx in 0usize..4,
        wheel in any::<bool>(),
    ) {
        let policy = PlacementPolicy::ALL[policy_idx];
        let plans = TrafficConfig {
            sessions,
            turns,
            arrival_spread_s: spread,
            seed,
        }
        .generate();
        let pool = DevicePool::homogeneous(PlatformSpec::vrex48(), devices);
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig::real_time(cache).with_queue(if wheel {
            QueueKind::Wheel
        } else {
            QueueKind::Heap
        });
        let (seq, seq_t) = serve_sharded_traced_with_workers(
            &pool, Method::ReSV, &model, &plans, &cfg, policy, 1,
        );
        prop_assert_eq!(seq.workers, 1);
        for workers in [2, vrex_core::par::workers()] {
            let (par, par_t) = serve_sharded_traced_with_workers(
                &pool, Method::ReSV, &model, &plans, &cfg, policy, workers,
            );
            prop_assert_eq!(
                &par, &seq,
                "parallel ({workers} workers) report drifted from sequential under {:?}",
                policy
            );
            prop_assert_eq!(
                &par_t, &seq_t,
                "parallel ({workers} workers) traces drifted from sequential under {:?}",
                policy
            );
            // Wall-clock metadata is observability, excluded from the
            // equality above, but must be well-formed: one entry per
            // device, and the clamped worker count recorded.
            prop_assert_eq!(par.device_wall_ns.len(), devices);
            prop_assert_eq!(par.workers, workers.clamp(1, devices));
        }
    }

    /// Weak capacity monotonicity: adding a device to the pool never
    /// shrinks what the fleet achieves. For every placement policy,
    /// admitted and real-time session counts at N + 1 devices are at
    /// least those at N.
    #[test]
    fn adding_a_device_never_shrinks_capacity(
        sessions in 1usize..8,
        turns in 0usize..3,
        spread in 0.0f64..8.0,
        cache in 8_000usize..40_000,
        seed in 0u64..300,
        devices in 1usize..3,
        policy_idx in 0usize..4,
    ) {
        let policy = PlacementPolicy::ALL[policy_idx];
        let plans = TrafficConfig {
            sessions,
            turns,
            arrival_spread_s: spread,
            seed,
        }
        .generate();
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig::real_time(cache);
        let small = serve_sharded(
            &DevicePool::homogeneous(PlatformSpec::agx_orin(), devices),
            Method::ReSV, &model, &plans, &cfg, policy,
        );
        let large = serve_sharded(
            &DevicePool::homogeneous(PlatformSpec::agx_orin(), devices + 1),
            Method::ReSV, &model, &plans, &cfg, policy,
        );
        prop_assert!(
            large.admitted() >= small.admitted(),
            "admitted shrank from {} to {} going {} -> {} devices under {:?}",
            small.admitted(), large.admitted(), devices, devices + 1, policy
        );
        prop_assert!(
            large.real_time_sessions() >= small.real_time_sessions(),
            "real-time sessions shrank from {} to {} going {} -> {} devices under {:?}",
            small.real_time_sessions(), large.real_time_sessions(), devices, devices + 1, policy
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cluster-granular residency conservation over random
    /// admit / grow / touch / release traces: every session's spilled
    /// bytes equal the sum of its spilled clusters' bytes, the spilled
    /// set is a contiguous coldness-rank prefix with each rank mapped
    /// to exactly one tier (no cluster lives in two tiers), and the
    /// fleet-wide per-tier totals agree with the per-session scan.
    #[test]
    fn cluster_spill_conserves_bytes_and_ranks(
        ops in proptest::collection::vec((0usize..4, 0usize..6, 1u64..5), 1..48),
        cluster_div in 4u64..64,
        ratio in 0.0f64..1.0,
    ) {
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let caps = TieredKvManager::for_system(&sys, &model).capacities();
        // Clusters sized as a fraction of the device budget so a few
        // admits overflow it, exercising both spill passes.
        let cluster_bytes = (caps.device_bytes / cluster_div).max(1);
        let mut mgr = TieredKvManager::for_system(&sys, &model)
            .with_cluster_mode(cluster_bytes, ratio);
        let mut live: Vec<usize> = Vec::new();
        let mut now_ps = 0u64;
        for (op, id, units) in ops {
            now_ps += 1_000;
            match op {
                0 => {
                    mgr.admit(id, units * cluster_bytes, now_ps);
                    if !live.contains(&id) {
                        live.push(id);
                    }
                }
                1 => mgr.grow(id, units * (cluster_bytes / 2).max(1), now_ps),
                2 => mgr.touch(id, now_ps),
                _ => {
                    mgr.release(id);
                    live.retain(|&s| s != id);
                }
            }
            // Migrations are decisions for the scheduler; drain them so
            // the queue does not grow unboundedly in this test.
            let _ = mgr.take_migrations();
            let mut host_total = 0u64;
            let mut ssd_total = 0u64;
            for &s in &live {
                let r = *mgr.residency(s).expect("live session is tracked");
                host_total += r.host_bytes;
                ssd_total += r.ssd_bytes;
                let clusters = mgr.spilled_clusters(s);
                let cluster_sum: u64 = clusters.iter().map(|&(_, _, b)| b).sum();
                prop_assert_eq!(
                    r.spilled_bytes(),
                    cluster_sum,
                    "session {}: residency says {} spilled bytes, clusters sum to {}",
                    s,
                    r.spilled_bytes(),
                    cluster_sum
                );
                // The spilled set is the contiguous coldness prefix
                // [0, k): ranks ascend from 0 with no gaps, and each
                // rank appears exactly once (one tier per cluster).
                for (i, &(rank, _, bytes)) in clusters.iter().enumerate() {
                    prop_assert_eq!(rank, i as u64, "session {}: rank gap in spilled set", s);
                    prop_assert!(bytes > 0, "session {}: zero-byte spilled cluster", s);
                }
                let per_tier: u64 = clusters
                    .iter()
                    .filter(|&&(_, t, _)| t == vrex_hwsim::tier::MemTier::Host)
                    .map(|&(_, _, b)| b)
                    .sum();
                prop_assert_eq!(
                    per_tier, r.host_bytes,
                    "session {}: host-tier cluster bytes disagree with residency", s
                );
            }
            // Fleet-wide totals (the accessor debug-asserts the cached
            // counters against a full fleet scan internally).
            prop_assert_eq!(mgr.used_bytes(vrex_hwsim::tier::MemTier::Host), host_total);
            prop_assert_eq!(mgr.used_bytes(vrex_hwsim::tier::MemTier::Ssd), ssd_total);
        }
    }

    /// Cluster-granular serving is deterministic across event cores and
    /// plan delivery: under [`AdmissionPolicy::tiered_cluster`] the
    /// Heap and Wheel queues produce identical reports, traces, and
    /// counters, and streamed plan delivery reproduces the
    /// materialized report — the same contract the flat policies pin.
    #[test]
    fn cluster_tiering_is_deterministic_across_cores_and_delivery(
        sessions in 1usize..8,
        turns in 0usize..3,
        spread in 0.0f64..10.0,
        cache in 1_000usize..40_000,
        seed in 0u64..300,
        overlap in any::<bool>(),
    ) {
        let traffic = TrafficConfig {
            sessions,
            turns,
            arrival_spread_s: spread,
            seed,
        };
        let plans = traffic.generate();
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig {
            admission: vrex_system::AdmissionPolicy::tiered_cluster(),
            overlap,
            ..ServeConfig::real_time(cache)
        };
        let (heap_r, heap_t) = serve_traced(&sys, &model, &plans, &cfg.with_queue(QueueKind::Heap));
        let (wheel_r, wheel_t) =
            serve_traced(&sys, &model, &plans, &cfg.with_queue(QueueKind::Wheel));
        prop_assert_eq!(&heap_t, &wheel_t, "cluster traces diverged between event cores");
        prop_assert_eq!(&heap_r, &wheel_r, "cluster reports diverged between event cores");
        prop_assert_eq!(heap_r.counters, wheel_r.counters);
        prop_assert_eq!(heap_r.admitted + heap_r.rejected, heap_r.offered);
        // Prefetch telemetry self-consistency: demand-fetched clusters
        // are a subset of the mispredictions that produced them.
        let c = heap_r.counters;
        prop_assert!(c.demand_clusters <= c.mispredicted_clusters);
        if let Some(t) = &heap_r.tiering {
            prop_assert!(t.exposed_s >= 0.0 && t.hidden_s >= 0.0);
        }
        if !overlap {
            let mut prices = StepPriceCache::new(&sys, &model);
            let streamed = serve_stream(&mut prices, &mut traffic.stream(), &cfg);
            prop_assert_eq!(&heap_r, &streamed, "streamed cluster fleet drifted");
            prop_assert_eq!(heap_r.counters, streamed.counters);
        }
    }

    /// [`QueueKind::Auto`] is pure delegation: a serve configured with
    /// `Auto` is bit-identical — report, trace, and counters — to the
    /// same serve configured with the concrete kind `Auto` resolves to
    /// for that fleet size (and, by the heap/wheel equivalence above,
    /// to the other kind as well).
    #[test]
    fn auto_queue_kind_delegates_bit_identically(
        sessions in 1usize..8,
        turns in 0usize..3,
        spread in 0.0f64..10.0,
        cache in 1_000usize..40_000,
        seed in 0u64..300,
        tiered_admission in any::<bool>(),
    ) {
        let plans = TrafficConfig {
            sessions,
            turns,
            arrival_spread_s: spread,
            seed,
        }
        .generate();
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig {
            admission: if tiered_admission {
                vrex_system::AdmissionPolicy::tiered_cluster()
            } else {
                vrex_system::AdmissionPolicy::RejectOnly
            },
            ..ServeConfig::real_time(cache)
        };
        let resolved = QueueKind::Auto.resolve(plans.len());
        let (auto_r, auto_t) =
            serve_traced(&sys, &model, &plans, &cfg.with_queue(QueueKind::Auto));
        let (conc_r, conc_t) = serve_traced(&sys, &model, &plans, &cfg.with_queue(resolved));
        prop_assert_eq!(&auto_t, &conc_t, "Auto trace diverged from resolved {:?}", resolved);
        prop_assert_eq!(&auto_r, &conc_r, "Auto report diverged from resolved {:?}", resolved);
        prop_assert_eq!(auto_r.counters, conc_r.counters);
    }
}
