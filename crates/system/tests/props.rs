//! Property tests for the system cost model: monotonicity and
//! conservation laws the figures depend on.

use proptest::prelude::*;
use vrex_model::ModelConfig;
use vrex_system::pipeline::{cold_selected_tokens, layer_costs, selected_tokens, Workload};
use vrex_system::serve::SessionOutcome;
use vrex_system::{serve, Method, PlatformSpec, ServeConfig, SystemModel};
use vrex_workload::traffic::TrafficConfig;

const METHODS: [Method; 6] = [
    Method::FlexGen,
    Method::InfiniGen,
    Method::InfiniGenP,
    Method::ReKV,
    Method::ReSV,
    Method::Oaken,
];

fn platforms() -> Vec<PlatformSpec> {
    vec![
        PlatformSpec::agx_orin(),
        PlatformSpec::a100(),
        PlatformSpec::vrex8(),
        PlatformSpec::vrex48(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Selection counts are conserved: cold ≤ selected ≤ cache, and the
    /// ratio honoured to within rounding.
    #[test]
    fn selection_conservation(
        cache in 1usize..100_000,
        batch in 1usize..16,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
        generation in any::<bool>(),
    ) {
        let method = METHODS[method_idx];
        let platform = &platforms()[platform_idx];
        let model = ModelConfig::llama3_8b();
        let w = Workload {
            model: model.clone(),
            cache_tokens: cache,
            batch,
            new_tokens: if generation { 1 } else { model.tokens_per_frame },
            generation,
        };
        let sel = selected_tokens(method, &w);
        let cold = cold_selected_tokens(platform, method, &w);
        prop_assert!(sel <= cache);
        prop_assert!(cold <= sel);
        let expected = (cache as f64 * method.ratio(generation)).ceil() as usize;
        prop_assert_eq!(sel, expected.min(cache));
    }

    /// Layer latency is the overlap composition: never below the
    /// slowest component, never above the serial sum.
    #[test]
    fn layer_latency_bounded_by_components(
        cache in 1usize..80_000,
        batch in 1usize..8,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
    ) {
        let method = METHODS[method_idx];
        let platform = &platforms()[platform_idx];
        let w = Workload::frame(&ModelConfig::llama3_8b(), cache, batch);
        let c = layer_costs(platform, method, &w);
        let serial = c.dense_ps + c.attention_ps + c.prediction_ps + c.fetch_ps;
        let slowest = c.dense_ps.max(c.attention_ps).max(c.prediction_ps).max(c.fetch_ps);
        prop_assert!(c.layer_ps >= slowest, "layer {} < slowest {}", c.layer_ps, slowest);
        prop_assert!(c.layer_ps <= serial, "layer {} > serial {}", c.layer_ps, serial);
    }

    /// Frame latency is weakly monotone in cache length for every
    /// platform+method pair.
    #[test]
    fn latency_monotone_in_cache_length(
        base in 1_000usize..20_000,
        growth in 1usize..4,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
    ) {
        let method = METHODS[method_idx];
        let platform = platforms()[platform_idx].clone();
        let sys = SystemModel::new(platform, method);
        let model = ModelConfig::llama3_8b();
        let t1 = sys.frame_step(&model, base, 1).latency_ps;
        let t2 = sys.frame_step(&model, base * (1 + growth), 1).latency_ps;
        prop_assert!(t2 >= t1, "latency fell: {t1} -> {t2}");
    }

    /// Energy is positive and increases with batch size.
    #[test]
    fn energy_positive_and_monotone_in_batch(
        cache in 1_000usize..40_000,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
    ) {
        let method = METHODS[method_idx];
        let platform = platforms()[platform_idx].clone();
        let sys = SystemModel::new(platform, method);
        let model = ModelConfig::llama3_8b();
        let e1 = sys.frame_step(&model, cache, 1).energy.total_j();
        let e4 = sys.frame_step(&model, cache, 4).energy.total_j();
        prop_assert!(e1 > 0.0);
        prop_assert!(e4 >= e1 * 0.99, "batch 4 energy {e4} below batch 1 {e1}");
    }

    /// OOM is monotone: once a configuration OOMs at some cache length
    /// it also OOMs at every longer length (same batch).
    #[test]
    fn oom_is_monotone(
        batch in 1usize..32,
        method_idx in 0usize..6,
    ) {
        let method = METHODS[method_idx];
        let sys = SystemModel::new(PlatformSpec::agx_orin(), method);
        let model = ModelConfig::llama3_8b();
        let mut seen_oom = false;
        for cache in [1_000usize, 5_000, 10_000, 20_000, 40_000, 80_000] {
            let oom = sys.is_oom(&model, cache, batch);
            if seen_oom {
                prop_assert!(oom, "OOM not monotone at {cache} batch {batch}");
            }
            seen_oom |= oom;
        }
    }

    /// TPOT never exceeds the same cache length's frame latency (a
    /// generation step does strictly less work).
    #[test]
    fn tpot_leq_frame_latency(
        cache in 1_000usize..40_000,
        method_idx in 0usize..6,
        platform_idx in 0usize..4,
    ) {
        let method = METHODS[method_idx];
        let platform = platforms()[platform_idx].clone();
        let sys = SystemModel::new(platform, method);
        let model = ModelConfig::llama3_8b();
        let frame = sys.frame_step(&model, cache, 1).latency_ps;
        let tpot = sys.decode_step(&model, cache, 1).latency_ps;
        prop_assert!(tpot <= frame, "TPOT {tpot} above frame {frame}");
    }

    /// The serving scheduler conserves sessions (admitted + rejected ==
    /// offered) and work (every admitted session processes all of its
    /// frames), for arbitrary fleets and seeds.
    #[test]
    fn serving_conserves_sessions_and_frames(
        sessions in 1usize..6,
        seed in 0u64..500,
        method_idx in 0usize..6,
    ) {
        let plans = TrafficConfig {
            sessions,
            turns: 1,
            arrival_spread_s: 4.0,
            seed,
        }
        .generate();
        let sys = SystemModel::new(PlatformSpec::vrex48(), METHODS[method_idx]);
        let model = ModelConfig::llama3_8b();
        let r = serve(&sys, &model, &plans, &ServeConfig::real_time(4_000));
        prop_assert_eq!(r.offered, sessions);
        prop_assert_eq!(r.admitted + r.rejected, r.offered);
        prop_assert!(r.queued <= r.admitted);
        prop_assert!(r.real_time_sessions <= r.admitted);
        prop_assert!((0.0..=1.0).contains(&r.real_time_fraction()));
        for s in r.sessions.iter().filter(|s| s.outcome != SessionOutcome::Rejected) {
            let plan = plans.iter().find(|p| p.id == s.id).unwrap();
            prop_assert_eq!(s.frames_offered, plan.total_frames());
            prop_assert_eq!(s.frame_lags_s.len(), s.frames_offered);
            // Lags are non-negative and the max is consistent.
            prop_assert!(s.frame_lags_s.iter().all(|&l| l >= 0.0));
            prop_assert!(s.max_frame_lag_s >= s.mean_frame_lag_s);
        }
    }

    /// Tiered admission never admits fewer sessions than reject-only
    /// at the same device memory, conserves sessions, and its tiering
    /// accounting is self-consistent (hits + misses cover every spill,
    /// hidden time only exists under speculation).
    #[test]
    fn tiered_admission_dominates_reject_only(
        sessions in 1usize..8,
        seed in 0u64..200,
        method_idx in 0usize..6,
    ) {
        let plans = TrafficConfig {
            sessions,
            turns: 1,
            arrival_spread_s: 6.0,
            seed,
        }
        .generate();
        let sys = SystemModel::new(PlatformSpec::agx_orin(), METHODS[method_idx]);
        let model = ModelConfig::llama3_8b();
        let reject = serve(&sys, &model, &plans, &ServeConfig::real_time(30_000));
        let tiered = serve(&sys, &model, &plans, &ServeConfig::real_time_tiered(30_000));
        prop_assert_eq!(tiered.admitted + tiered.rejected, tiered.offered);
        prop_assert!(
            tiered.admitted >= reject.admitted,
            "tiering admitted {} < reject-only {}",
            tiered.admitted,
            reject.admitted
        );
        let t = tiered.tiering.expect("tiered run reports tiering");
        prop_assert!(t.exposed_s >= 0.0 && t.hidden_s >= 0.0);
        if t.spilled_bytes == 0 {
            prop_assert_eq!(t.tier_miss_steps, 0);
            prop_assert_eq!(t.spilled_sessions, 0);
        }
        for s in &tiered.sessions {
            prop_assert!(s.tier_exposed_s >= 0.0);
            if s.outcome == SessionOutcome::Rejected {
                prop_assert!(!s.spilled);
            }
        }
    }
}
