//! Memoized step pricing for the serving scheduler.
//!
//! The analytic step model ([`SystemModel::frame_step`] /
//! [`SystemModel::question_step`] / [`SystemModel::decode_step`]) is a
//! pure function of `(method, model dims, cache_tokens, batch,
//! new_tokens)` — the platform and method are fixed per cache, the rest
//! is the key. A capacity sweep re-prices the same batch shapes
//! millions of times (every policy and fleet size replays the same
//! per-session cache trajectories), so [`StepPriceCache`] memoizes the
//! full [`StepResult`] per shape: the first occurrence pays the
//! closed-form pricing, every repeat is one hash lookup.
//!
//! The cache owns clones of its [`SystemModel`] and [`ModelConfig`] —
//! one cache is valid for exactly one platform+method+model triple, so
//! a stale-key bug cannot exist by construction. The
//! `cached_pricing_is_bit_identical_to_uncached` oracle test (and the
//! property test in `tests/props.rs`) pin that a cached result is
//! bit-identical to uncached pricing.
//!
//! ## The shared read path (parallel sharded serving)
//!
//! Parallel sharded serving runs N per-device serve loops on scoped
//! worker threads, but a `&mut StepPriceCache` cannot be shared across
//! them. The split: the parent cache — warmed by whatever ran before —
//! becomes a **frozen snapshot** (an ordinary `&StepPriceCache`, `Sync`
//! because nothing mutates it during the join), and each worker owns an
//! [`OverflowPriceCache`]: a read-through overlay that consults the
//! frozen map first and prices fresh shapes into a private overflow
//! map. After the join, each worker's fresh entries merge back into the
//! parent via [`StepPriceCache::absorb`] **in device order**, and each
//! overlay records its entries in first-priced order — so the merged
//! cache content is a deterministic function of the fleet, never of
//! thread scheduling. Pricing is a pure function of the key, so the
//! merge can never change a stored value, only add entries — and serve
//! outcomes are independent of cache contents entirely (the oracle
//! tests pin the overlay bit-identical to the mutable cache).
//!
//! Both cache types implement [`StepPricer`], the seam the serve loop
//! prices through.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use vrex_model::ModelConfig;

use crate::e2e::{StepResult, SystemModel};

/// Step kind discriminant inside a price key.
const KIND_FRAME: u64 = 0;
const KIND_QUESTION: u64 = 1;
const KIND_DECODE: u64 = 2;

/// Which execution semantics a price is being consulted under — the
/// **resource context** of the key.
///
/// The serialized scheduler treats a priced step as one engine-blocking
/// unit (its latency is the whole story); the overlapped
/// resource-timeline scheduler decomposes the same step into a compute
/// occupancy plus link tasks (`fetch_ps`/`fetch_bytes` on the PCIe
/// resource) whose start times come from resource availability. Both
/// contexts consult the same closed forms today, but a sweep such as
/// `tier_capacity --overlap` shares **one** cache across serialized and
/// overlapped serves of the same platform — the context bit keeps the
/// two key spaces from aliasing, so a future overlapped-context
/// specialisation (e.g. compute-only occupancy pricing) can never
/// silently repin the byte-identical serialized headline rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecContext {
    /// Batch-level blocking execution (one step at a time).
    #[default]
    Serialized,
    /// Resource-timeline execution (compute + link tasks, multiple
    /// in-flight batches).
    Overlapped,
}

impl ExecContext {
    fn bit(self) -> u64 {
        match self {
            ExecContext::Serialized => 0,
            ExecContext::Overlapped => 1,
        }
    }
}

/// A minimal multiplicative hasher (FxHash-style) for the fixed-width
/// price keys. The default SipHash is DoS-resistant but ~5× slower;
/// price keys are simulation-internal, so the cheap mix is safe.
#[derive(Debug, Default, Clone, Copy)]
pub struct PriceKeyHasher(u64);

impl Hasher for PriceKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Packed price key: kind (2 bits) | resource context (1 bit) | batch
/// (13 bits) | new_tokens (16 bits) | cache_tokens (32 bits). The
/// serving sweeps stay far inside each field; [`StepPriceCache`] falls
/// back to unmemoized pricing when a dimension overflows its field
/// instead of aliasing.
fn pack_key(
    kind: u64,
    ctx: ExecContext,
    cache_tokens: usize,
    batch: usize,
    new_tokens: usize,
) -> Option<u64> {
    if batch >= (1 << 13) || new_tokens >= (1 << 16) || cache_tokens >= (1 << 32) {
        return None;
    }
    Some(
        kind << 62
            | ctx.bit() << 61
            | (batch as u64) << 48
            | (new_tokens as u64) << 32
            | cache_tokens as u64,
    )
}

/// Memoized [`StepResult`] pricing for one platform+method+model.
#[derive(Debug, Clone)]
pub struct StepPriceCache {
    sys: SystemModel,
    model: ModelConfig,
    map: HashMap<u64, StepResult, BuildHasherDefault<PriceKeyHasher>>,
    hits: u64,
    misses: u64,
}

impl StepPriceCache {
    /// Creates an empty cache bound to this platform+method+model.
    pub fn new(sys: &SystemModel, model: &ModelConfig) -> Self {
        Self {
            sys: sys.clone(),
            model: model.clone(),
            map: HashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// The system model the cache prices for.
    pub fn system(&self) -> &SystemModel {
        &self.sys
    }

    /// The model configuration the cache prices for.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Lookups served from the map so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run the analytic pricing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct step shapes priced so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been priced yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn priced(
        &mut self,
        key: Option<u64>,
        price: impl Fn(&SystemModel, &ModelConfig) -> StepResult,
    ) -> StepResult {
        let Some(key) = key else {
            // Out-of-range dimension: price unmemoized rather than
            // alias another shape's result.
            self.misses += 1;
            return price(&self.sys, &self.model);
        };
        if let Some(r) = self.map.get(&key) {
            self.hits += 1;
            return *r;
        }
        self.misses += 1;
        let r = price(&self.sys, &self.model);
        self.map.insert(key, r);
        r
    }

    /// Memoized [`SystemModel::frame_step`] in the serialized context.
    pub fn frame_step(&mut self, cache_tokens: usize, batch: usize) -> StepResult {
        self.frame_step_in(ExecContext::Serialized, cache_tokens, batch)
    }

    /// Memoized [`SystemModel::frame_step`] under `ctx` semantics.
    pub fn frame_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
    ) -> StepResult {
        let key = pack_key(
            KIND_FRAME,
            ctx,
            cache_tokens,
            batch,
            self.model.tokens_per_frame,
        );
        self.priced(key, |sys, model| sys.frame_step(model, cache_tokens, batch))
    }

    /// Memoized [`SystemModel::question_step`] in the serialized
    /// context.
    pub fn question_step(
        &mut self,
        cache_tokens: usize,
        batch: usize,
        tokens: usize,
    ) -> StepResult {
        self.question_step_in(ExecContext::Serialized, cache_tokens, batch, tokens)
    }

    /// Memoized [`SystemModel::question_step`] under `ctx` semantics.
    pub fn question_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
        tokens: usize,
    ) -> StepResult {
        let key = pack_key(KIND_QUESTION, ctx, cache_tokens, batch, tokens);
        self.priced(key, |sys, model| {
            sys.question_step(model, cache_tokens, batch, tokens)
        })
    }

    /// Memoized [`SystemModel::decode_step`] in the serialized context.
    pub fn decode_step(&mut self, cache_tokens: usize, batch: usize) -> StepResult {
        self.decode_step_in(ExecContext::Serialized, cache_tokens, batch)
    }

    /// Memoized [`SystemModel::decode_step`] under `ctx` semantics.
    pub fn decode_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
    ) -> StepResult {
        let key = pack_key(KIND_DECODE, ctx, cache_tokens, batch, 1);
        self.priced(key, |sys, model| {
            sys.decode_step(model, cache_tokens, batch)
        })
    }

    /// Merges a worker overlay's fresh entries into this cache.
    ///
    /// Entries arrive in the overlay's first-priced order; callers
    /// joining several workers absorb them in device order, making the
    /// merged map a deterministic function of the fleet. Pricing is a
    /// pure function of the key, so when two workers priced the same
    /// shape the values are bit-identical and first-write-wins is
    /// value-neutral. The overlay's hit/miss counters aggregate into
    /// the parent's (observability only, never part of any report).
    pub fn absorb(&mut self, fresh: FreshPrices) {
        for (key, r) in fresh.entries {
            self.map.entry(key).or_insert(r);
        }
        self.hits += fresh.hits;
        self.misses += fresh.misses;
    }
}

/// The pricing seam the serve loop consults: memoized step pricing for
/// one platform+method+model, in either execution context.
///
/// Implemented by the mutable [`StepPriceCache`] (the sequential path)
/// and by the per-worker [`OverflowPriceCache`] overlay (the parallel
/// sharded path). Both are bit-identical to direct [`SystemModel`]
/// pricing — the oracle tests pin it — so which implementation a serve
/// runs through can never change its outcomes.
pub trait StepPricer {
    /// The system model priced for.
    fn system(&self) -> &SystemModel;
    /// The model configuration priced for.
    fn model(&self) -> &ModelConfig;
    /// Memoized [`SystemModel::frame_step`] under `ctx` semantics.
    fn frame_step_in(&mut self, ctx: ExecContext, cache_tokens: usize, batch: usize) -> StepResult;
    /// Memoized [`SystemModel::question_step`] under `ctx` semantics.
    fn question_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
        tokens: usize,
    ) -> StepResult;
    /// Memoized [`SystemModel::decode_step`] under `ctx` semantics.
    fn decode_step_in(&mut self, ctx: ExecContext, cache_tokens: usize, batch: usize)
        -> StepResult;
}

impl StepPricer for StepPriceCache {
    fn system(&self) -> &SystemModel {
        StepPriceCache::system(self)
    }

    fn model(&self) -> &ModelConfig {
        StepPriceCache::model(self)
    }

    fn frame_step_in(&mut self, ctx: ExecContext, cache_tokens: usize, batch: usize) -> StepResult {
        StepPriceCache::frame_step_in(self, ctx, cache_tokens, batch)
    }

    fn question_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
        tokens: usize,
    ) -> StepResult {
        StepPriceCache::question_step_in(self, ctx, cache_tokens, batch, tokens)
    }

    fn decode_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
    ) -> StepResult {
        StepPriceCache::decode_step_in(self, ctx, cache_tokens, batch)
    }
}

/// A per-worker read-through overlay over a frozen `&StepPriceCache`.
///
/// Lookups consult the frozen parent map first (the warmed, `&`-shared
/// read path), then the private overflow map; fresh shapes price into
/// the overflow only, so N workers can serve concurrently over one
/// parent without synchronization. [`Self::into_fresh`] drains the
/// overlay for a deterministic [`StepPriceCache::absorb`] merge after
/// the join.
#[derive(Debug)]
pub struct OverflowPriceCache<'a> {
    base: &'a StepPriceCache,
    /// Shapes priced by this worker, keyed for lookup.
    overflow: HashMap<u64, StepResult, BuildHasherDefault<PriceKeyHasher>>,
    /// The same entries in first-priced order — the deterministic merge
    /// order `absorb` consumes (hash-map iteration order never leaks).
    fresh: Vec<(u64, StepResult)>,
    hits: u64,
    misses: u64,
}

impl<'a> OverflowPriceCache<'a> {
    /// An empty overlay reading through `base`.
    pub fn new(base: &'a StepPriceCache) -> Self {
        Self {
            base,
            overflow: HashMap::default(),
            fresh: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Lookups served from either map so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the analytic pricing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Shapes this overlay priced that the frozen parent lacked.
    pub fn fresh_len(&self) -> usize {
        self.fresh.len()
    }

    /// Drains the overlay into its mergeable fresh-entry record.
    pub fn into_fresh(self) -> FreshPrices {
        FreshPrices {
            entries: self.fresh,
            hits: self.hits,
            misses: self.misses,
        }
    }

    fn priced(
        &mut self,
        key: Option<u64>,
        price: impl Fn(&SystemModel, &ModelConfig) -> StepResult,
    ) -> StepResult {
        let Some(key) = key else {
            self.misses += 1;
            return price(&self.base.sys, &self.base.model);
        };
        if let Some(r) = self.base.map.get(&key) {
            self.hits += 1;
            return *r;
        }
        if let Some(r) = self.overflow.get(&key) {
            self.hits += 1;
            return *r;
        }
        self.misses += 1;
        let r = price(&self.base.sys, &self.base.model);
        self.overflow.insert(key, r);
        self.fresh.push((key, r));
        r
    }
}

impl StepPricer for OverflowPriceCache<'_> {
    fn system(&self) -> &SystemModel {
        &self.base.sys
    }

    fn model(&self) -> &ModelConfig {
        &self.base.model
    }

    fn frame_step_in(&mut self, ctx: ExecContext, cache_tokens: usize, batch: usize) -> StepResult {
        let key = pack_key(
            KIND_FRAME,
            ctx,
            cache_tokens,
            batch,
            self.base.model.tokens_per_frame,
        );
        self.priced(key, |sys, model| sys.frame_step(model, cache_tokens, batch))
    }

    fn question_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
        tokens: usize,
    ) -> StepResult {
        let key = pack_key(KIND_QUESTION, ctx, cache_tokens, batch, tokens);
        self.priced(key, |sys, model| {
            sys.question_step(model, cache_tokens, batch, tokens)
        })
    }

    fn decode_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
    ) -> StepResult {
        let key = pack_key(KIND_DECODE, ctx, cache_tokens, batch, 1);
        self.priced(key, |sys, model| {
            sys.decode_step(model, cache_tokens, batch)
        })
    }
}

/// A worker overlay's drained fresh entries plus its lookup counters,
/// ready for [`StepPriceCache::absorb`].
#[derive(Debug, Clone)]
pub struct FreshPrices {
    entries: Vec<(u64, StepResult)>,
    /// Lookup hits the overlay served (frozen + overflow).
    pub hits: u64,
    /// Lookups the overlay had to price analytically.
    pub misses: u64,
}

impl FreshPrices {
    /// Number of fresh entries carried to the merge.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the worker priced nothing the parent lacked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::platform::PlatformSpec;

    #[test]
    fn cached_pricing_is_bit_identical_to_uncached() {
        // Oracle over a methods × platforms × cache × batch grid: the
        // first call (miss) and the second call (hit) must both equal
        // the direct SystemModel pricing exactly.
        let model = ModelConfig::llama3_8b();
        let methods = [
            Method::FlexGen,
            Method::InfiniGen,
            Method::ReKV,
            Method::ReSV,
            Method::Oaken,
            Method::VanillaInMemory,
        ];
        let platforms = [
            PlatformSpec::agx_orin(),
            PlatformSpec::a100(),
            PlatformSpec::vrex8(),
            PlatformSpec::vrex48(),
        ];
        for method in methods {
            for platform in &platforms {
                let sys = SystemModel::new(platform.clone(), method);
                let mut cache = StepPriceCache::new(&sys, &model);
                for cache_tokens in [1usize, 1_000, 16_000, 40_000] {
                    for batch in [1usize, 4, 24] {
                        for _ in 0..2 {
                            assert_eq!(
                                cache.frame_step(cache_tokens, batch),
                                sys.frame_step(&model, cache_tokens, batch),
                                "{} frame {cache_tokens}x{batch}",
                                sys.label()
                            );
                            assert_eq!(
                                cache.decode_step(cache_tokens, batch),
                                sys.decode_step(&model, cache_tokens, batch),
                                "{} decode {cache_tokens}x{batch}",
                                sys.label()
                            );
                            assert_eq!(
                                cache.question_step(cache_tokens, batch, 25),
                                sys.question_step(&model, cache_tokens, batch, 25),
                                "{} question {cache_tokens}x{batch}",
                                sys.label()
                            );
                        }
                    }
                }
                assert_eq!(cache.hits(), cache.misses(), "every shape hit once");
            }
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let mut cache = StepPriceCache::new(&sys, &model);
        for _ in 0..100 {
            cache.frame_step(8_000, 4);
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 99);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn distinct_kinds_never_alias() {
        // A frame step and a decode step at the same (cache, batch)
        // must key separately — and a question step keyed by its token
        // count must not collide with either.
        let sys = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let mut cache = StepPriceCache::new(&sys, &model);
        let f = cache.frame_step(10_000, 2);
        let d = cache.decode_step(10_000, 2);
        let q = cache.question_step(10_000, 2, 25);
        assert_ne!(f, d);
        assert_ne!(f, q);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.frame_step(10_000, 2), f);
    }

    #[test]
    fn out_of_range_dimensions_fall_back_to_direct_pricing() {
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let mut cache = StepPriceCache::new(&sys, &model);
        let huge = 1usize << 33; // overflows the 32-bit cache field
        assert_eq!(cache.frame_step(huge, 1), sys.frame_step(&model, huge, 1));
        assert_eq!(cache.len(), 0, "unpackable keys are not stored");
        assert_eq!(cache.misses(), 1);
        // The batch field shrank to 13 bits for the context bit; an
        // 8192-stream batch falls back rather than aliasing.
        assert_eq!(
            cache.frame_step(1_000, 1 << 13),
            sys.frame_step(&model, 1_000, 1 << 13)
        );
        assert_eq!(cache.len(), 0);
    }

    /// Satellite oracle: the frozen-snapshot + overflow overlay is
    /// bit-identical to the mutable [`StepPriceCache`] on repeated
    /// batch shapes — warmed hits, overflow misses, overflow hits, and
    /// out-of-range fallbacks all return exactly what the mutable cache
    /// (and the direct pricing) returns.
    #[test]
    fn overflow_overlay_is_bit_identical_to_the_mutable_cache() {
        let model = ModelConfig::llama3_8b();
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        // Warm the parent with a partial shape set, then freeze it.
        let mut parent = StepPriceCache::new(&sys, &model);
        for batch in [1usize, 4] {
            parent.frame_step(16_000, batch);
            parent.decode_step(16_000, batch);
        }
        let warmed = parent.len();
        let mut mutable = parent.clone();
        let mut overlay = OverflowPriceCache::new(&parent);
        // Repeated shapes spanning warmed hits (16K), overflow misses
        // then hits (40K), both contexts, and the unpackable fallback.
        let huge = 1usize << 33;
        for _ in 0..2 {
            for ctx in [ExecContext::Serialized, ExecContext::Overlapped] {
                for cache_tokens in [16_000usize, 40_000, huge] {
                    for batch in [1usize, 4, 24] {
                        assert_eq!(
                            overlay.frame_step_in(ctx, cache_tokens, batch),
                            mutable.frame_step_in(ctx, cache_tokens, batch),
                            "frame {ctx:?} {cache_tokens}x{batch}"
                        );
                        assert_eq!(
                            overlay.decode_step_in(ctx, cache_tokens, batch),
                            mutable.decode_step_in(ctx, cache_tokens, batch),
                            "decode {ctx:?} {cache_tokens}x{batch}"
                        );
                        assert_eq!(
                            overlay.question_step_in(ctx, cache_tokens, batch, 25),
                            mutable.question_step_in(ctx, cache_tokens, batch, 25),
                            "question {ctx:?} {cache_tokens}x{batch}"
                        );
                    }
                }
            }
        }
        // Same hit/miss trajectory: the overlay's frozen+overflow split
        // sees exactly the mutable cache's hits and misses.
        assert_eq!(overlay.hits(), mutable.hits() - parent.hits());
        assert_eq!(overlay.misses(), mutable.misses() - parent.misses());
        // Fresh entries are exactly the shapes the parent lacked.
        assert_eq!(overlay.fresh_len(), mutable.len() - warmed);
        // The merge lands every fresh shape: the absorbed parent's map
        // equals the mutable cache's.
        let fresh = overlay.into_fresh();
        assert!(!fresh.is_empty());
        assert_eq!(fresh.len(), mutable.len() - warmed);
        parent.absorb(fresh);
        assert_eq!(parent.len(), mutable.len());
        // Every shape now hits the absorbed parent without pricing.
        let misses_before = parent.misses();
        for ctx in [ExecContext::Serialized, ExecContext::Overlapped] {
            for cache_tokens in [16_000usize, 40_000] {
                for batch in [1usize, 4, 24] {
                    assert_eq!(
                        parent.frame_step_in(ctx, cache_tokens, batch),
                        mutable.frame_step_in(ctx, cache_tokens, batch),
                    );
                }
            }
        }
        assert_eq!(parent.misses(), misses_before, "absorbed shapes all hit");
    }

    /// Two workers pricing overlapping shape sets merge to the same
    /// cache content regardless of which absorbs first — pricing is a
    /// pure function, so duplicate fresh entries are value-identical.
    #[test]
    fn absorb_is_value_neutral_across_workers() {
        let model = ModelConfig::llama3_8b();
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let parent = StepPriceCache::new(&sys, &model);
        let mut a = OverflowPriceCache::new(&parent);
        let mut b = OverflowPriceCache::new(&parent);
        // Overlapping shapes: both workers price (8000, 4).
        a.frame_step_in(ExecContext::Serialized, 8_000, 4);
        a.frame_step_in(ExecContext::Serialized, 8_000, 8);
        b.frame_step_in(ExecContext::Serialized, 8_000, 4);
        b.frame_step_in(ExecContext::Serialized, 8_000, 16);
        let (fa, fb) = (a.into_fresh(), b.into_fresh());
        let mut ab = parent.clone();
        ab.absorb(fa.clone());
        ab.absorb(fb.clone());
        let mut ba = parent.clone();
        ba.absorb(fb);
        ba.absorb(fa);
        assert_eq!(ab.len(), 3, "duplicate shape stored once");
        assert_eq!(ba.len(), 3);
        for cache in [&mut ab, &mut ba] {
            let direct = sys.frame_step(&model, 8_000, 4);
            assert_eq!(cache.frame_step(8_000, 4), direct);
        }
    }

    #[test]
    fn execution_contexts_key_separately() {
        // A shared cache serving both a serialized and an overlapped
        // sweep must keep the two contexts' keys apart: same shape,
        // different context, two distinct entries — and both contexts
        // remain bit-identical to the direct pricing.
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let mut cache = StepPriceCache::new(&sys, &model);
        let direct = sys.frame_step(&model, 8_000, 4);
        assert_eq!(
            cache.frame_step_in(ExecContext::Serialized, 8_000, 4),
            direct
        );
        assert_eq!(
            cache.frame_step_in(ExecContext::Overlapped, 8_000, 4),
            direct
        );
        assert_eq!(cache.len(), 2, "one entry per context");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0, "contexts never alias");
        // Hits stay within their own context.
        cache.frame_step_in(ExecContext::Overlapped, 8_000, 4);
        assert_eq!(cache.hits(), 1);
        // Decode and question shapes split the same way.
        cache.decode_step_in(ExecContext::Serialized, 8_000, 4);
        cache.decode_step_in(ExecContext::Overlapped, 8_000, 4);
        cache.question_step_in(ExecContext::Serialized, 8_000, 4, 25);
        cache.question_step_in(ExecContext::Overlapped, 8_000, 4, 25);
        assert_eq!(cache.len(), 6);
    }
}
