//! Memoized step pricing for the serving scheduler.
//!
//! The analytic step model ([`SystemModel::frame_step`] /
//! [`SystemModel::question_step`] / [`SystemModel::decode_step`]) is a
//! pure function of `(method, model dims, cache_tokens, batch,
//! new_tokens)` — the platform and method are fixed per cache, the rest
//! is the key. A capacity sweep re-prices the same batch shapes
//! millions of times (every policy and fleet size replays the same
//! per-session cache trajectories), so [`StepPriceCache`] memoizes the
//! full [`StepResult`] per shape: the first occurrence pays the
//! closed-form pricing, every repeat is one hash lookup.
//!
//! The cache owns clones of its [`SystemModel`] and [`ModelConfig`] —
//! one cache is valid for exactly one platform+method+model triple, so
//! a stale-key bug cannot exist by construction. The
//! `cached_pricing_is_bit_identical_to_uncached` oracle test (and the
//! property test in `tests/props.rs`) pin that a cached result is
//! bit-identical to uncached pricing.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use vrex_model::ModelConfig;

use crate::e2e::{StepResult, SystemModel};

/// Step kind discriminant inside a price key.
const KIND_FRAME: u64 = 0;
const KIND_QUESTION: u64 = 1;
const KIND_DECODE: u64 = 2;

/// Which execution semantics a price is being consulted under — the
/// **resource context** of the key.
///
/// The serialized scheduler treats a priced step as one engine-blocking
/// unit (its latency is the whole story); the overlapped
/// resource-timeline scheduler decomposes the same step into a compute
/// occupancy plus link tasks (`fetch_ps`/`fetch_bytes` on the PCIe
/// resource) whose start times come from resource availability. Both
/// contexts consult the same closed forms today, but a sweep such as
/// `tier_capacity --overlap` shares **one** cache across serialized and
/// overlapped serves of the same platform — the context bit keeps the
/// two key spaces from aliasing, so a future overlapped-context
/// specialisation (e.g. compute-only occupancy pricing) can never
/// silently repin the byte-identical serialized headline rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecContext {
    /// Batch-level blocking execution (one step at a time).
    #[default]
    Serialized,
    /// Resource-timeline execution (compute + link tasks, multiple
    /// in-flight batches).
    Overlapped,
}

impl ExecContext {
    fn bit(self) -> u64 {
        match self {
            ExecContext::Serialized => 0,
            ExecContext::Overlapped => 1,
        }
    }
}

/// A minimal multiplicative hasher (FxHash-style) for the fixed-width
/// price keys. The default SipHash is DoS-resistant but ~5× slower;
/// price keys are simulation-internal, so the cheap mix is safe.
#[derive(Debug, Default, Clone, Copy)]
pub struct PriceKeyHasher(u64);

impl Hasher for PriceKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Packed price key: kind (2 bits) | resource context (1 bit) | batch
/// (13 bits) | new_tokens (16 bits) | cache_tokens (32 bits). The
/// serving sweeps stay far inside each field; [`StepPriceCache`] falls
/// back to unmemoized pricing when a dimension overflows its field
/// instead of aliasing.
fn pack_key(
    kind: u64,
    ctx: ExecContext,
    cache_tokens: usize,
    batch: usize,
    new_tokens: usize,
) -> Option<u64> {
    if batch >= (1 << 13) || new_tokens >= (1 << 16) || cache_tokens >= (1 << 32) {
        return None;
    }
    Some(
        kind << 62
            | ctx.bit() << 61
            | (batch as u64) << 48
            | (new_tokens as u64) << 32
            | cache_tokens as u64,
    )
}

/// Memoized [`StepResult`] pricing for one platform+method+model.
#[derive(Debug, Clone)]
pub struct StepPriceCache {
    sys: SystemModel,
    model: ModelConfig,
    map: HashMap<u64, StepResult, BuildHasherDefault<PriceKeyHasher>>,
    hits: u64,
    misses: u64,
}

impl StepPriceCache {
    /// Creates an empty cache bound to this platform+method+model.
    pub fn new(sys: &SystemModel, model: &ModelConfig) -> Self {
        Self {
            sys: sys.clone(),
            model: model.clone(),
            map: HashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// The system model the cache prices for.
    pub fn system(&self) -> &SystemModel {
        &self.sys
    }

    /// The model configuration the cache prices for.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Lookups served from the map so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run the analytic pricing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct step shapes priced so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been priced yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn priced(
        &mut self,
        key: Option<u64>,
        price: impl Fn(&SystemModel, &ModelConfig) -> StepResult,
    ) -> StepResult {
        let Some(key) = key else {
            // Out-of-range dimension: price unmemoized rather than
            // alias another shape's result.
            self.misses += 1;
            return price(&self.sys, &self.model);
        };
        if let Some(r) = self.map.get(&key) {
            self.hits += 1;
            return *r;
        }
        self.misses += 1;
        let r = price(&self.sys, &self.model);
        self.map.insert(key, r);
        r
    }

    /// Memoized [`SystemModel::frame_step`] in the serialized context.
    pub fn frame_step(&mut self, cache_tokens: usize, batch: usize) -> StepResult {
        self.frame_step_in(ExecContext::Serialized, cache_tokens, batch)
    }

    /// Memoized [`SystemModel::frame_step`] under `ctx` semantics.
    pub fn frame_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
    ) -> StepResult {
        let key = pack_key(
            KIND_FRAME,
            ctx,
            cache_tokens,
            batch,
            self.model.tokens_per_frame,
        );
        self.priced(key, |sys, model| sys.frame_step(model, cache_tokens, batch))
    }

    /// Memoized [`SystemModel::question_step`] in the serialized
    /// context.
    pub fn question_step(
        &mut self,
        cache_tokens: usize,
        batch: usize,
        tokens: usize,
    ) -> StepResult {
        self.question_step_in(ExecContext::Serialized, cache_tokens, batch, tokens)
    }

    /// Memoized [`SystemModel::question_step`] under `ctx` semantics.
    pub fn question_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
        tokens: usize,
    ) -> StepResult {
        let key = pack_key(KIND_QUESTION, ctx, cache_tokens, batch, tokens);
        self.priced(key, |sys, model| {
            sys.question_step(model, cache_tokens, batch, tokens)
        })
    }

    /// Memoized [`SystemModel::decode_step`] in the serialized context.
    pub fn decode_step(&mut self, cache_tokens: usize, batch: usize) -> StepResult {
        self.decode_step_in(ExecContext::Serialized, cache_tokens, batch)
    }

    /// Memoized [`SystemModel::decode_step`] under `ctx` semantics.
    pub fn decode_step_in(
        &mut self,
        ctx: ExecContext,
        cache_tokens: usize,
        batch: usize,
    ) -> StepResult {
        let key = pack_key(KIND_DECODE, ctx, cache_tokens, batch, 1);
        self.priced(key, |sys, model| {
            sys.decode_step(model, cache_tokens, batch)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::platform::PlatformSpec;

    #[test]
    fn cached_pricing_is_bit_identical_to_uncached() {
        // Oracle over a methods × platforms × cache × batch grid: the
        // first call (miss) and the second call (hit) must both equal
        // the direct SystemModel pricing exactly.
        let model = ModelConfig::llama3_8b();
        let methods = [
            Method::FlexGen,
            Method::InfiniGen,
            Method::ReKV,
            Method::ReSV,
            Method::Oaken,
            Method::VanillaInMemory,
        ];
        let platforms = [
            PlatformSpec::agx_orin(),
            PlatformSpec::a100(),
            PlatformSpec::vrex8(),
            PlatformSpec::vrex48(),
        ];
        for method in methods {
            for platform in &platforms {
                let sys = SystemModel::new(platform.clone(), method);
                let mut cache = StepPriceCache::new(&sys, &model);
                for cache_tokens in [1usize, 1_000, 16_000, 40_000] {
                    for batch in [1usize, 4, 24] {
                        for _ in 0..2 {
                            assert_eq!(
                                cache.frame_step(cache_tokens, batch),
                                sys.frame_step(&model, cache_tokens, batch),
                                "{} frame {cache_tokens}x{batch}",
                                sys.label()
                            );
                            assert_eq!(
                                cache.decode_step(cache_tokens, batch),
                                sys.decode_step(&model, cache_tokens, batch),
                                "{} decode {cache_tokens}x{batch}",
                                sys.label()
                            );
                            assert_eq!(
                                cache.question_step(cache_tokens, batch, 25),
                                sys.question_step(&model, cache_tokens, batch, 25),
                                "{} question {cache_tokens}x{batch}",
                                sys.label()
                            );
                        }
                    }
                }
                assert_eq!(cache.hits(), cache.misses(), "every shape hit once");
            }
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let mut cache = StepPriceCache::new(&sys, &model);
        for _ in 0..100 {
            cache.frame_step(8_000, 4);
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 99);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn distinct_kinds_never_alias() {
        // A frame step and a decode step at the same (cache, batch)
        // must key separately — and a question step keyed by its token
        // count must not collide with either.
        let sys = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let mut cache = StepPriceCache::new(&sys, &model);
        let f = cache.frame_step(10_000, 2);
        let d = cache.decode_step(10_000, 2);
        let q = cache.question_step(10_000, 2, 25);
        assert_ne!(f, d);
        assert_ne!(f, q);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.frame_step(10_000, 2), f);
    }

    #[test]
    fn out_of_range_dimensions_fall_back_to_direct_pricing() {
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let mut cache = StepPriceCache::new(&sys, &model);
        let huge = 1usize << 33; // overflows the 32-bit cache field
        assert_eq!(cache.frame_step(huge, 1), sys.frame_step(&model, huge, 1));
        assert_eq!(cache.len(), 0, "unpackable keys are not stored");
        assert_eq!(cache.misses(), 1);
        // The batch field shrank to 13 bits for the context bit; an
        // 8192-stream batch falls back rather than aliasing.
        assert_eq!(
            cache.frame_step(1_000, 1 << 13),
            sys.frame_step(&model, 1_000, 1 << 13)
        );
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn execution_contexts_key_separately() {
        // A shared cache serving both a serialized and an overlapped
        // sweep must keep the two contexts' keys apart: same shape,
        // different context, two distinct entries — and both contexts
        // remain bit-identical to the direct pricing.
        let sys = SystemModel::new(PlatformSpec::vrex48(), Method::ReSV);
        let model = ModelConfig::llama3_8b();
        let mut cache = StepPriceCache::new(&sys, &model);
        let direct = sys.frame_step(&model, 8_000, 4);
        assert_eq!(
            cache.frame_step_in(ExecContext::Serialized, 8_000, 4),
            direct
        );
        assert_eq!(
            cache.frame_step_in(ExecContext::Overlapped, 8_000, 4),
            direct
        );
        assert_eq!(cache.len(), 2, "one entry per context");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0, "contexts never alias");
        // Hits stay within their own context.
        cache.frame_step_in(ExecContext::Overlapped, 8_000, 4);
        assert_eq!(cache.hits(), 1);
        // Decode and question shapes split the same way.
        cache.decode_step_in(ExecContext::Serialized, 8_000, 4);
        cache.decode_step_in(ExecContext::Overlapped, 8_000, 4);
        cache.question_step_in(ExecContext::Serialized, 8_000, 4, 25);
        cache.question_step_in(ExecContext::Overlapped, 8_000, 4, 25);
        assert_eq!(cache.len(), 6);
    }
}
