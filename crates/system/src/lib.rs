//! # vrex-system
//!
//! Full-system models: the four evaluation platforms of Table I
//! (AGX Orin, A100, V-Rex8, V-Rex48), the retrieval-method cost
//! profiles, and the per-layer pipeline composition (Fig. 5) that turns
//! workload parameters (KV length, batch, stage) into per-frame
//! latency, TPOT, FPS, energy, and OOM outcomes — every number behind
//! Figs. 13–18 and Table I.
//!
//! The split of responsibilities:
//!
//! * `vrex-core` / `vrex-retrieval` decide *which tokens* are selected
//!   (functional behaviour, measured ratios) and *when* spilled KV is
//!   streamed back (the prefetch-policy seam);
//! * `vrex-hwsim` prices individual hardware operations, including
//!   tier-to-tier bulk migrations;
//! * this crate composes them into end-to-end executions with the
//!   paper's overlap rules: baselines predict/prefetch during the
//!   previous layer on the *same* GPU (prediction steals compute),
//!   while V-Rex's DRE runs prediction concurrently and its KVMU
//!   fetches cluster-contiguous chunks (higher link efficiency).
//!
//! On top of the per-step model sit two serving layers: [`memory`]
//! tracks fleet-wide KV residency across the device → host-DRAM → SSD
//! hierarchy (LRU spill, off-critical-path promotion,
//! prefetch-overlapped restore pricing), and [`mod@serve`] drives the
//! continuous-batching scheduler whose admission control either
//! rejects overflow sessions (PR 2 behaviour) or spills them down the
//! hierarchy ([`AdmissionPolicy`]). [`placement`] scales both across a
//! multi-device [`DevicePool`]: arriving sessions are *placed* on a
//! device (admission becomes placement), and cross-device KV
//! migrations ride the NVLink / PCIe-switch fabric as contended
//! resource-timeline work.

#![warn(missing_docs)]

pub mod ablation;
pub mod e2e;
pub mod eventq;
pub mod memory;
pub mod method;
pub mod pipeline;
pub mod placement;
pub mod platform;
pub mod pricing;
pub mod queueing;
pub mod realtime;
pub mod serve;

pub use e2e::{EnergyBreakdown, StepResult, SystemModel};
pub use eventq::{EventQueue, QueueKind, TimeKeyed, TimerWheel};
pub use memory::{
    AdmissionPolicy, MigrationTask, PrefetchMode, RestoreOutcome, RestorePlan, TierStats,
    TieredKvManager,
};
pub use method::{Method, MethodProfile};
pub use placement::{
    serve_sharded, serve_sharded_stream, serve_sharded_traced, serve_sharded_traced_with_workers,
    serve_sharded_with_cache, serve_sharded_with_cache_in, DeviceMigration, InterconnectReport,
    PlacementPolicy, ShardScratch, ShardedServeReport,
};
pub use platform::{ComputeSpec, DevicePool, PlatformSpec};
pub use pricing::{ExecContext, FreshPrices, OverflowPriceCache, StepPriceCache, StepPricer};
pub use serve::{
    serve, serve_stream, serve_traced, serve_with_cache, ServeConfig, ServeCounters, ServeReport,
    SessionServeReport, TierReport, TraceEvent, TraceKind,
};
