//! Pluggable event queues for the serving scheduler: binary heap and
//! hierarchical timer wheel.
//!
//! The serving event core ([`crate::serve()`]) is a discrete-event
//! simulation on integer picoseconds. Its only ordering requirement is
//! a *min-queue over a total order*: pop the smallest `(time, kind,
//! payload)` tuple next, deterministically, including among same-time
//! events. [`EventQueue`] captures exactly that contract, with two
//! implementations selected by [`QueueKind`]:
//!
//! * [`QueueKind::Heap`] — `BinaryHeap<Reverse<T>>`, `O(log n)` per
//!   operation. Simple and cache-friendly at tens of events; the
//!   reference implementation.
//! * [`QueueKind::Wheel`] — a hierarchical timer wheel (calendar
//!   queue), amortized `O(1)` per operation at fleet scale, where the
//!   queue holds one arrival + one patience + one work-ready wake-up
//!   per session and heap `log n` starts to show.
//!
//! ## Wheel geometry: why picosecond wheels don't explode
//!
//! A naive calendar queue at ps granularity would need ~10¹² slots per
//! simulated second. Two standard tricks keep the table at 384 slots
//! total:
//!
//! 1. **Coarse finest slot.** Events within one slot don't need wheel
//!    ordering — they are ordered by a tiny per-slot heap when the
//!    cursor reaches them. The finest slot is `2^BASE_SHIFT` ps
//!    (2²⁴ ps ≈ 16.8 µs), far below the µs-to-ms gaps between serving
//!    wake-ups, so that heap almost always holds one batch's worth of
//!    same-instant events.
//! 2. **Hierarchy with cascade.** `LEVELS` (6) wheels of `SLOTS` (64) slots
//!    each cover geometrically coarser spans: level ℓ's slot spans
//!    `2^(BASE_SHIFT + 6ℓ)` ps, so six levels reach
//!    `2^(24+36)` ps ≈ 13 simulated days. An event lands in the level
//!    matching the highest differing slot-index bits between its
//!    quantized time and the cursor; when the cursor enters a coarse
//!    slot, that slot's events *cascade* down (re-insert) into finer
//!    wheels. Each event cascades at most `LEVELS` times, which is
//!    the amortized-`O(1)` argument.
//!
//! Beyond the 13-day horizon (e.g. patience deadlines from
//! effectively-infinite `max_wait_s`) events go to an unsorted
//! **overflow bucket**, scanned only when every wheel is empty — the
//! far-future case is rare by construction.
//!
//! ## Determinism contract
//!
//! Both implementations pop the exact same sequence for the same push
//! sequence: the wheel routes by *time only* and delegates same-slot
//! ordering to a `BinaryHeap` over the full `Ord`, so ties break on
//! `(kind, payload)` exactly like the reference heap. The property
//! tests in `tests/props.rs` pin byte-identical `ServeReport`s and
//! golden-trace fingerprints across both.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An item with a picosecond timestamp — the key the wheel routes by.
/// The full `Ord` on the item (time first, then tie-breaks) decides
/// pop order among same-slot items.
pub trait TimeKeyed {
    /// The item's scheduled time in integer picoseconds. Must agree
    /// with the item's `Ord` (equal times compare by the tie-break
    /// fields only).
    fn time_ps(&self) -> u64;
}

/// Which [`EventQueue`] implementation a serving run uses.
///
/// The wheel is the default: the two kinds are byte-identical by
/// contract (property-tested and golden-pinned), so the choice is
/// purely a wall-clock one, and the measured `fleet_scale` profile
/// (table in ARCHITECTURE.md) shows the wheel ahead exactly where the
/// serving stack is headed — ~10% faster at the 10⁶-session fleet and
/// ~8% faster under tiered admission at 10⁵, the regimes where
/// far-future patience deadlines pile up and the heap's `O(log n)`
/// compares cost real time. The heap edges the wheel back (up to
/// ~15%) on small/mid reject-only fleets where the queue stays
/// shallow; it remains selectable as the reference implementation the
/// equivalence tests compare against, and for callers living in that
/// regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// `BinaryHeap<Reverse<T>>` — the reference implementation.
    Heap,
    /// Hierarchical timer wheel — amortized `O(1)` at fleet scale.
    #[default]
    Wheel,
    /// Pick per run from the fleet-size hint: heap below
    /// [`AUTO_WHEEL_THRESHOLD`] sessions, wheel at or above it. The
    /// serving entry points resolve this against
    /// `PlanSource::remaining_hint` before constructing the queue, so
    /// either way the run is bit-identical to the kind it delegates to
    /// (property-pinned).
    Auto,
}

/// Fleet-size threshold where [`QueueKind::Auto`] switches from heap
/// to wheel: the geometric midpoint of the measured 10⁵–10⁶ crossover
/// in the ARCHITECTURE.md `fleet_scale` table (heap ahead up to ~15%
/// at 10⁵ reject-only, wheel ahead ~8–10% from 10⁵ tiered through 10⁶).
pub const AUTO_WHEEL_THRESHOLD: usize = 316_228;

impl QueueKind {
    /// Resolves `Auto` against a fleet-size hint; `Heap` and `Wheel`
    /// return themselves unchanged.
    #[must_use]
    pub fn resolve(self, remaining_hint: usize) -> QueueKind {
        match self {
            QueueKind::Auto if remaining_hint < AUTO_WHEEL_THRESHOLD => QueueKind::Heap,
            QueueKind::Auto => QueueKind::Wheel,
            other => other,
        }
    }
}

/// log2 of the finest slot width in ps (2²⁴ ps ≈ 16.8 µs).
const BASE_SHIFT: u32 = 24;
/// log2 of the slots per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; horizon = `2^(BASE_SHIFT + 6·LEVELS)` ps ≈ 13 days.
const LEVELS: usize = 6;

/// Hierarchical timer wheel over [`TimeKeyed`] items (see the module
/// docs for the geometry). Pop order is identical to a min-heap over
/// the items' full `Ord`.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// Quantized time (`time_ps >> BASE_SHIFT`) of the slot the cursor
    /// last drained. Items quantizing at or before the cursor bypass
    /// the wheels into `current` — which is what makes pushes of
    /// already-due events (the scheduler pushes wake-ups at `now`)
    /// correct without ever moving the cursor backwards.
    cursor: u64,
    /// Items of the current (and past) slots, ordered by full `Ord`.
    current: BinaryHeap<Reverse<T>>,
    /// `LEVELS × SLOTS` unsorted buckets.
    slots: Vec<Vec<T>>,
    /// Per-level occupancy bitmask (bit `j` = slot `j` non-empty).
    occ: [u64; LEVELS],
    /// Items beyond the wheel horizon, scanned only when all wheels
    /// are empty.
    overflow: Vec<T>,
    /// Cascade scratch, recycled so draining a bucket never allocates
    /// once the queue has warmed up.
    scratch: Vec<T>,
    len: usize,
}

impl<T: Ord + TimeKeyed> TimerWheel<T> {
    /// An empty wheel whose current-slot heap is pre-sized for
    /// `capacity` same-slot items.
    pub fn with_capacity(capacity: usize) -> Self {
        TimerWheel {
            cursor: 0,
            current: BinaryHeap::with_capacity(capacity),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            overflow: Vec::new(),
            scratch: Vec::new(),
            len: 0,
        }
    }

    /// Items queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `x` (any time, including at or before the last pop).
    pub fn push(&mut self, x: T) {
        self.len += 1;
        self.place(x);
    }

    /// Routes `x` to `current`, a wheel bucket, or overflow. Does not
    /// touch `len` (shared by push and cascade re-insertion).
    fn place(&mut self, x: T) {
        let q = x.time_ps() >> BASE_SHIFT;
        if q <= self.cursor {
            self.current.push(Reverse(x));
            return;
        }
        // The level is set by the highest slot-index digit in which
        // `q` and the cursor differ: all coarser digits agree, so the
        // cursor reaches the bucket before the item is due.
        let diff = q ^ self.cursor;
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(x);
            return;
        }
        let slot = ((q >> (level as u32 * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(x);
        self.occ[level] |= 1 << slot;
    }

    /// Ensures `current` holds the global minimum (cascading coarse
    /// buckets as needed). Returns `false` iff the wheel is empty.
    fn advance(&mut self) -> bool {
        loop {
            if !self.current.is_empty() {
                return true;
            }
            let Some(level) = (0..LEVELS).find(|&l| self.occ[l] != 0) else {
                if self.overflow.is_empty() {
                    return false;
                }
                // All wheels drained: jump the cursor to the earliest
                // far-future item and re-insert the overflow under it.
                // Re-insertion is O(overflow), amortized by how rarely
                // the horizon (≈13 simulated days) is crossed.
                let min_q = self
                    .overflow
                    .iter()
                    .map(|x| x.time_ps() >> BASE_SHIFT)
                    .min()
                    // vrex-lint: allow(panicking-seam) — refill runs only on the non-empty overflow branch of the drained-wheel check.
                    .expect("non-empty overflow");
                self.cursor = min_q;
                let mut items = std::mem::take(&mut self.scratch);
                std::mem::swap(&mut items, &mut self.overflow);
                for x in items.drain(..) {
                    self.place(x);
                }
                self.scratch = items;
                continue;
            };
            // The earliest occupied slot of the finest occupied level
            // is next in time: drain it. For level 0 the bucket's
            // items all quantize to the new cursor and fall into
            // `current`; coarser buckets cascade into finer wheels.
            let slot = self.occ[level].trailing_zeros() as usize;
            self.occ[level] &= !(1u64 << slot);
            let shift = level as u32 * SLOT_BITS;
            // Advance the cursor: this level's digit becomes `slot`,
            // every finer digit resets to 0 (coarser digits already
            // agree with everything in the bucket).
            self.cursor = ((self.cursor >> (shift + SLOT_BITS)) << (shift + SLOT_BITS))
                | ((slot as u64) << shift);
            let idx = level * SLOTS + slot;
            let mut items =
                std::mem::replace(&mut self.slots[idx], std::mem::take(&mut self.scratch));
            for x in items.drain(..) {
                self.place(x);
            }
            self.scratch = items;
        }
    }

    /// Removes and returns the minimum item (by full `Ord`).
    pub fn pop(&mut self) -> Option<T> {
        if !self.advance() {
            return None;
        }
        self.len -= 1;
        self.current.pop().map(|Reverse(x)| x)
    }

    /// The minimum item's time without removing it. `&mut` because the
    /// lookup may cascade buckets (a pure reorganisation — the queue's
    /// contents are unchanged).
    pub fn peek_ps(&mut self) -> Option<u64> {
        if !self.advance() {
            return None;
        }
        self.current.peek().map(|Reverse(x)| x.time_ps())
    }
}

/// A min-queue over `T`'s total order, dispatching to the
/// [`QueueKind`] implementation chosen at construction.
#[derive(Debug)]
pub enum EventQueue<T> {
    /// Binary-heap implementation.
    Heap(BinaryHeap<Reverse<T>>),
    /// Timer-wheel implementation.
    Wheel(TimerWheel<T>),
}

impl<T: Ord + TimeKeyed> EventQueue<T> {
    /// An empty queue of the given kind, pre-sized for `capacity`
    /// items (fleet-scale runs size this from the plan source so the
    /// hot loop never reallocates the heap).
    pub fn new(kind: QueueKind, capacity: usize) -> Self {
        match kind {
            QueueKind::Heap => EventQueue::Heap(BinaryHeap::with_capacity(capacity)),
            // The wheel spreads items across buckets; its heap only
            // ever holds one slot's worth. A bare `Auto` (callers
            // should resolve it against the fleet hint first) gets the
            // fleet-scale default.
            QueueKind::Wheel | QueueKind::Auto => {
                EventQueue::Wheel(TimerWheel::with_capacity(64.min(capacity)))
            }
        }
    }

    /// Inserts an item.
    pub fn push(&mut self, x: T) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(x)),
            EventQueue::Wheel(w) => w.push(x),
        }
    }

    /// Removes and returns the minimum item.
    pub fn pop(&mut self) -> Option<T> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(x)| x),
            EventQueue::Wheel(w) => w.pop(),
        }
    }

    /// The minimum item's time without removing it.
    pub fn peek_ps(&mut self) -> Option<u64> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(x)| x.time_ps()),
            EventQueue::Wheel(w) => w.peek_ps(),
        }
    }

    /// Items queued.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (time, tie-break) test item mirroring the serve `Event` shape.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Item {
        ps: u64,
        tag: u32,
    }

    impl TimeKeyed for Item {
        fn time_ps(&self) -> u64 {
            self.ps
        }
    }

    fn item(ps: u64, tag: u32) -> Item {
        Item { ps, tag }
    }

    /// Feeds the same push/pop script to both implementations and
    /// asserts identical pop sequences.
    fn assert_same_order(pushes: &[Item]) {
        let mut heap = EventQueue::new(QueueKind::Heap, pushes.len());
        let mut wheel = EventQueue::new(QueueKind::Wheel, pushes.len());
        for &x in pushes {
            heap.push(x);
            wheel.push(x);
        }
        loop {
            assert_eq!(heap.peek_ps(), wheel.peek_ps());
            let (a, b) = (heap.pop(), wheel.pop());
            assert_eq!(a, b, "pop order diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn same_tick_collisions_pop_in_tie_break_order() {
        // Many items in one finest slot (same quantized time) and even
        // at the same exact ps: order must come from the tie-break.
        let mut pushes = Vec::new();
        for tag in (0..32).rev() {
            pushes.push(item(1_000_000, tag));
            pushes.push(item(1_000_001, tag));
        }
        assert_same_order(&pushes);
    }

    #[test]
    fn cascade_boundaries_preserve_order() {
        // Items straddling every level boundary: 2^(24+6ℓ) ± 1 for
        // each level, plus exact multiples of slot widths.
        let mut pushes = Vec::new();
        for level in 0..LEVELS as u32 {
            let width = 1u64 << (BASE_SHIFT + SLOT_BITS * level);
            for k in [1u64, 2, 63, 64, 65] {
                pushes.push(item(k.wrapping_mul(width) - 1, level));
                pushes.push(item(k.wrapping_mul(width), level));
                pushes.push(item(k.wrapping_mul(width) + 1, level));
            }
        }
        assert_same_order(&pushes);
    }

    #[test]
    fn far_future_overflow_is_reachable_and_ordered() {
        // Saturated patience deadlines (u64::MAX) and other
        // beyond-horizon times land in the overflow bucket and still
        // pop in order after the near-term items.
        let horizon = 1u64 << (BASE_SHIFT + SLOT_BITS * LEVELS as u32);
        let pushes = [
            item(u64::MAX, 1),
            item(0, 0),
            item(horizon - 1, 2),
            item(horizon, 3),
            item(horizon + 12_345, 4),
            item(u64::MAX, 0),
            item(3 * horizon, 5),
        ];
        assert_same_order(&pushes);
    }

    #[test]
    fn interleaved_pushes_behind_the_cursor_stay_correct() {
        // The serving loop pushes wake-ups at (or before) the time it
        // just popped; the wheel must accept them without rewinding.
        let mut heap = EventQueue::new(QueueKind::Heap, 8);
        let mut wheel = EventQueue::new(QueueKind::Wheel, 8);
        let script: &[(u64, u64)] = &[
            // (push at, then push this after popping one item)
            (5_000_000_000, 5_000_000_000),
            (10_000_000_000, 5_000_000_001),
            (20_000_000_000, 10_000_000_000),
        ];
        for &(a, _) in script {
            heap.push(item(a, 0));
            wheel.push(item(a, 0));
        }
        for &(_, b) in script {
            let (x, y) = (heap.pop(), wheel.pop());
            assert_eq!(x, y);
            // Re-arm at a time ≤ the item just popped — legal because
            // the scheduler only pushes wake-ups at or after `now`.
            heap.push(item(b, 1));
            wheel.push(item(b, 1));
        }
        loop {
            let (x, y) = (heap.pop(), wheel.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn randomized_against_reference_heap() {
        // Deterministic xorshift scripts across a wide time range
        // (including same-slot collisions and overflow).
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20 {
            let mut heap = EventQueue::new(QueueKind::Heap, 64);
            let mut wheel = EventQueue::new(QueueKind::Wheel, 64);
            let mut floor = 0u64; // pops are nondecreasing; pushes are ≥ last pop
            for _ in 0..300 {
                let r = next();
                if r % 3 != 0 {
                    // Spread pushes over slot widths of every level.
                    let span = 1u64 << (BASE_SHIFT as u64 - 4 + (r >> 8) % 40);
                    let at = floor.saturating_add(next() % span);
                    let x = item(at, (next() % 4) as u32);
                    heap.push(x);
                    wheel.push(x);
                } else {
                    let (a, b) = (heap.pop(), wheel.pop());
                    assert_eq!(a, b, "round {round}: pop diverged");
                    if let Some(x) = a {
                        floor = floor.max(x.ps);
                    }
                }
            }
            loop {
                let (a, b) = (heap.pop(), wheel.pop());
                assert_eq!(a, b, "round {round}: drain diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn auto_resolves_at_the_measured_crossover() {
        assert_eq!(QueueKind::Auto.resolve(0), QueueKind::Heap);
        assert_eq!(
            QueueKind::Auto.resolve(AUTO_WHEEL_THRESHOLD - 1),
            QueueKind::Heap
        );
        assert_eq!(
            QueueKind::Auto.resolve(AUTO_WHEEL_THRESHOLD),
            QueueKind::Wheel
        );
        assert_eq!(QueueKind::Auto.resolve(usize::MAX), QueueKind::Wheel);
        // Concrete kinds resolve to themselves regardless of the hint.
        for hint in [0, AUTO_WHEEL_THRESHOLD, usize::MAX] {
            assert_eq!(QueueKind::Heap.resolve(hint), QueueKind::Heap);
            assert_eq!(QueueKind::Wheel.resolve(hint), QueueKind::Wheel);
        }
    }

    #[test]
    fn len_is_tracked_through_cascades_and_overflow() {
        let mut wheel = EventQueue::new(QueueKind::Wheel, 4);
        assert!(wheel.is_empty());
        let horizon = 1u64 << (BASE_SHIFT + SLOT_BITS * LEVELS as u32);
        for (i, ps) in [0u64, 1 << 30, 1 << 45, horizon + 7, u64::MAX]
            .into_iter()
            .enumerate()
        {
            wheel.push(item(ps, i as u32));
        }
        assert_eq!(wheel.len(), 5);
        let mut popped = 0;
        while wheel.pop().is_some() {
            popped += 1;
            assert_eq!(wheel.len(), 5 - popped);
        }
        assert_eq!(popped, 5);
        assert!(wheel.is_empty());
    }
}
