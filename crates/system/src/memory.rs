//! Tiered KV-cache residency policy for the serving scheduler.
//!
//! `vrex-hwsim`'s [`tier`](vrex_hwsim::tier) module knows how fast
//! bytes move between device HBM, host DRAM, and the SSD; this module
//! decides **whose** bytes move and **when**:
//!
//! * every stream's *resident demand* (its full cache for in-memory
//!   methods, its hot window for offloading methods — the same bytes
//!   [`SystemModel::is_oom`] counts) is tracked against the device
//!   budget;
//! * when the device overflows, the **coldest** streams (longest since
//!   they last ran) are spilled down — host DRAM first, then SSD.
//!   Spill writebacks stream behind compute and are not charged to the
//!   critical path;
//! * a spilled stream that reaches the front of the scheduler pays a
//!   **tier miss**: the selected share of its spilled bytes must be
//!   restored before its step. With a speculative [`PrefetchPolicy`]
//!   the restore is issued when the work item becomes visible, so the
//!   transfer overlaps the queue wait and the step's own layer-by-layer
//!   compute; only the exposed remainder extends the step;
//! * when a stream retires, its device bytes free up and the hottest
//!   spilled streams are promoted back (asynchronously, off the
//!   critical path).
//!
//! The manager is deterministic: victims and promotions order by
//! (last-active time, session id), and every duration comes from the
//! closed-form hardware models.

use vrex_hwsim::tier::{MemTier, TierCapacities, TierPath};
use vrex_model::ModelConfig;
use vrex_retrieval::prefetch::{NoPrefetch, PrefetchPolicy, PrefetchRequest, SpeculativePrefetch};

use crate::e2e::SystemModel;

/// DMA chunk size for bulk tier migrations (spills and restores move
/// whole resident-window blocks, so they stream at FlexGen-like
/// granularity regardless of the method's per-step fetch chunk).
pub const MIGRATION_CHUNK_BYTES: u64 = 256 * 1024;

/// How the serving scheduler treats streams that do not fit in device
/// memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// PR 2 behaviour: wait FIFO for device memory, reject on timeout.
    RejectOnly,
    /// Spill cold streams' KV down the memory hierarchy instead of
    /// rejecting; reject only when even the *whole* hierarchy is full.
    Tiered {
        /// How restores are scheduled (demand vs. speculative).
        prefetch: PrefetchMode,
    },
}

impl AdmissionPolicy {
    /// Tiered admission with InfiniGen-style speculative prefetch.
    pub fn tiered_speculative() -> Self {
        AdmissionPolicy::Tiered {
            prefetch: PrefetchMode::Speculative { accuracy: 0.9 },
        }
    }

    /// Tiered admission with pure demand fetching.
    pub fn tiered_demand() -> Self {
        AdmissionPolicy::Tiered {
            prefetch: PrefetchMode::Demand,
        }
    }
}

/// When restore migrations are issued, relative to the step that needs
/// them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefetchMode {
    /// Restores start when the step starts; nothing is hidden.
    Demand,
    /// Restores are issued as soon as the work item is visible
    /// (InfiniGen-style speculation at the given accuracy), hiding the
    /// transfer behind the wait window and the step's compute.
    Speculative {
        /// Fraction of speculated bytes that are the right ones.
        accuracy: f64,
    },
}

impl PrefetchMode {
    /// The retrieval-crate policy implementing this mode.
    pub fn policy(&self) -> Box<dyn PrefetchPolicy> {
        match self {
            PrefetchMode::Demand => Box::new(NoPrefetch),
            PrefetchMode::Speculative { accuracy } => Box::new(SpeculativePrefetch {
                accuracy: *accuracy,
            }),
        }
    }
}

/// Where one stream's resident KV currently lives.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Residency {
    /// Bytes in device memory.
    pub device_bytes: u64,
    /// Bytes spilled to host DRAM.
    pub host_bytes: u64,
    /// Bytes spilled to the SSD.
    pub ssd_bytes: u64,
    /// Simulation time this stream last executed (ps; spill coldness
    /// key).
    pub last_active_ps: u64,
}

impl Residency {
    /// Total tracked bytes.
    pub fn total_bytes(&self) -> u64 {
        self.device_bytes + self.host_bytes + self.ssd_bytes
    }

    /// Bytes below the device tier.
    pub fn spilled_bytes(&self) -> u64 {
        self.host_bytes + self.ssd_bytes
    }
}

/// Outcome of pricing one step's tier restore.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreOutcome {
    /// Total time the restore occupies the shared PCIe link (ps),
    /// hidden or not — the caller charges this against the link
    /// budget shared by a batch.
    pub miss_ps: u64,
    /// Migration time left exposed on the critical path (ps).
    pub exposed_ps: u64,
}

/// Aggregate tiering statistics over a serving run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Bytes demoted below the device tier.
    pub spilled_bytes: u64,
    /// Bytes promoted back into freed device space (off-critical-path).
    pub promoted_bytes: u64,
    /// Bytes restored on the critical path for steps (tier misses).
    pub restored_bytes: u64,
    /// Per-stream step executions (one [`TieredKvManager::step_restore`]
    /// call, i.e. one batch member) that ran fully device-resident.
    pub tier_hit_steps: u64,
    /// Per-stream step executions that needed a restore migration.
    pub tier_miss_steps: u64,
    /// Migration time hidden behind prefetch overlap (ps).
    pub hidden_ps: u64,
    /// Migration time exposed on the critical path (ps).
    pub exposed_ps: u64,
}

/// Fleet-wide tier residency tracker and migration pricer.
#[derive(Debug)]
pub struct TieredKvManager {
    caps: TierCapacities,
    path: TierPath,
    chunk_bytes: u64,
    /// Tracked streams, sorted by session id (the scheduler's fleets
    /// are small, so a sorted vec beats a tree map on both lookup and
    /// the victim/promotion scans that iterate it in id order).
    sessions: Vec<(usize, Residency)>,
    /// Fleet-wide resident bytes per tier (device, host, ssd), kept
    /// incrementally so the per-step budget checks are O(1) instead of
    /// a fleet scan (the scheduler grows streams every batch).
    used: [u64; 3],
    ever_spilled: std::collections::BTreeSet<usize>,
    stats: TierStats,
}

impl TieredKvManager {
    /// Creates a manager over explicit capacities and links.
    pub fn new(caps: TierCapacities, path: TierPath) -> Self {
        Self {
            caps,
            path,
            chunk_bytes: MIGRATION_CHUNK_BYTES,
            sessions: Vec::new(),
            used: [0; 3],
            ever_spilled: std::collections::BTreeSet::new(),
            stats: TierStats::default(),
        }
    }

    /// Creates the manager for a platform + method pair: device budget
    /// from the memory left after weights, spill tiers from the
    /// platform's host DRAM / SSD.
    pub fn for_system(sys: &SystemModel, model: &ModelConfig) -> Self {
        Self::new(sys.kv_tier_capacities(model), sys.tier_path())
    }

    /// The tier budgets.
    pub fn capacities(&self) -> TierCapacities {
        self.caps
    }

    /// Total KV capacity across every tier.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.caps.total_bytes()
    }

    /// Bytes currently resident in one tier, fleet-wide (maintained
    /// incrementally; `debug_assert`-checked against the fleet scan).
    pub fn used_bytes(&self, tier: MemTier) -> u64 {
        debug_assert_eq!(
            self.used[tier_index(tier)],
            self.sessions
                .iter()
                .map(|(_, r)| tier_bytes(r, tier))
                .sum::<u64>(),
            "cached {tier} total diverged from the fleet scan"
        );
        self.used[tier_index(tier)]
    }

    /// Whether any resident KV currently sits below the device tier.
    /// `false` means every tracked stream is fully device-resident, so
    /// a step over tracked streams cannot miss — the scheduler's
    /// fast path ([`Self::record_all_hot_steps`]).
    pub fn any_spilled_bytes(&self) -> bool {
        self.used[tier_index(MemTier::Host)] + self.used[tier_index(MemTier::Ssd)] > 0
    }

    /// Records `members` tier hits at once. Exactly equivalent to (and
    /// only valid as) `members` calls to [`Self::step_restore`] for
    /// *tracked* streams while [`Self::any_spilled_bytes`] is `false`:
    /// each such call would price a zero-byte restore and count one
    /// hit.
    pub fn record_all_hot_steps(&mut self, members: u64) {
        debug_assert!(!self.any_spilled_bytes(), "fast path requires no spill");
        self.stats.tier_hit_steps += members;
    }

    /// One stream's residency, if tracked.
    pub fn residency(&self, id: usize) -> Option<&Residency> {
        self.slot(id).ok().map(|i| &self.sessions[i].1)
    }

    /// Slot of `id` in the sorted session vec (`Err` = insertion point).
    fn slot(&self, id: usize) -> Result<usize, usize> {
        self.sessions.binary_search_by_key(&id, |&(sid, _)| sid)
    }

    /// Statistics so far.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Streams that were ever (partially) spilled below the device.
    pub fn ever_spilled_sessions(&self) -> usize {
        self.ever_spilled.len()
    }

    /// Whether a stream was ever (partially) spilled below the device.
    pub fn was_ever_spilled(&self, id: usize) -> bool {
        self.ever_spilled.contains(&id)
    }

    /// Admits a stream with `bytes` of resident demand, placed in
    /// device memory; colder streams are spilled down if the device
    /// overflows.
    pub fn admit(&mut self, id: usize, bytes: u64, now_ps: u64) {
        let slot = match self.slot(id) {
            Ok(i) => i,
            Err(i) => {
                self.sessions.insert(i, (id, Residency::default()));
                i
            }
        };
        let r = &mut self.sessions[slot].1;
        r.device_bytes += bytes;
        r.last_active_ps = now_ps;
        self.used[tier_index(MemTier::Device)] += bytes;
        self.spill_down();
    }

    /// Grows a stream's resident demand by `delta` bytes (new KV lands
    /// in device memory) and marks it active.
    pub fn grow(&mut self, id: usize, delta: u64, now_ps: u64) {
        if let Ok(i) = self.slot(id) {
            let r = &mut self.sessions[i].1;
            r.device_bytes += delta;
            r.last_active_ps = now_ps;
            self.used[tier_index(MemTier::Device)] += delta;
        }
        self.spill_down();
    }

    /// Marks a stream active (it just executed) without growing it.
    pub fn touch(&mut self, id: usize, now_ps: u64) {
        if let Ok(i) = self.slot(id) {
            self.sessions[i].1.last_active_ps = now_ps;
        }
    }

    /// Retires a stream, freeing its bytes, then promotes the hottest
    /// spilled streams into the freed device space.
    pub fn release(&mut self, id: usize) {
        if let Ok(i) = self.slot(id) {
            let (_, r) = self.sessions.remove(i);
            for tier in MemTier::ALL {
                self.used[tier_index(tier)] -= tier_bytes(&r, tier);
            }
        }
        self.promote_into_free();
    }

    /// Prices the tier miss of one step and applies prefetch overlap.
    ///
    /// `ratio` is the method's selection ratio for the step's stage —
    /// the share of the stream's spilled bytes the step must restore.
    /// `window_ps` is how long the restore could have been in flight
    /// before the step's results are needed: queue wait plus the
    /// step's own compute (which the transfer pipelines with layer by
    /// layer), *minus* whatever of that window other streams' restores
    /// have already claimed on the shared link — the caller owns that
    /// accounting via [`RestoreOutcome::miss_ps`].
    pub fn step_restore(
        &mut self,
        id: usize,
        ratio: f64,
        generation: bool,
        window_ps: u64,
        prefetch: &dyn PrefetchPolicy,
    ) -> RestoreOutcome {
        let Ok(slot) = self.slot(id) else {
            return RestoreOutcome::default();
        };
        let r = &self.sessions[slot].1;
        let ratio = ratio.clamp(0.0, 1.0);
        let need_host = (r.host_bytes as f64 * ratio).ceil() as u64;
        let need_ssd = (r.ssd_bytes as f64 * ratio).ceil() as u64;
        let miss_ps = self.path.restore_ps(need_host, need_ssd, self.chunk_bytes);
        if miss_ps == 0 {
            self.stats.tier_hit_steps += 1;
            return RestoreOutcome::default();
        }
        let plan = prefetch.plan(&PrefetchRequest {
            cold_bytes: r.spilled_bytes(),
            selection_ratio: ratio,
            generation,
        });
        let coverage = plan.coverage(need_host + need_ssd);
        let hidden = ((miss_ps as f64 * coverage) as u64).min(window_ps);
        self.stats.tier_miss_steps += 1;
        self.stats.restored_bytes += need_host + need_ssd;
        self.stats.hidden_ps += hidden;
        self.stats.exposed_ps += miss_ps - hidden;
        RestoreOutcome {
            miss_ps,
            exposed_ps: miss_ps - hidden,
        }
    }

    /// Demotes coldest-stream bytes until device and host budgets hold.
    fn spill_down(&mut self) {
        self.spill_tier(MemTier::Device);
        self.spill_tier(MemTier::Host);
    }

    fn spill_tier(&mut self, tier: MemTier) {
        loop {
            let used = self.used[tier_index(tier)];
            let cap = self.caps.capacity(tier);
            if used <= cap {
                return;
            }
            let overflow = used - cap;
            // Coldest stream holding bytes in this tier; the vec is in
            // id order, so min_by ties resolve to the smallest id.
            let Some(victim) = self
                .sessions
                .iter()
                .enumerate()
                .filter(|(_, (_, r))| tier_bytes(r, tier) > 0)
                .min_by(|(_, (ia, ra)), (_, (ib, rb))| {
                    ra.last_active_ps.cmp(&rb.last_active_ps).then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
            else {
                return;
            };
            // Nearest lower tier with room.
            let Some((dest, room)) = self
                .caps
                .below(tier)
                .map(|t| {
                    (
                        t,
                        self.caps
                            .capacity(t)
                            .saturating_sub(self.used[tier_index(t)]),
                    )
                })
                .find(|&(_, room)| room > 0)
            else {
                // Hierarchy full: leave the tier over budget (admission
                // control is responsible for not letting this happen).
                return;
            };
            let (victim_id, r) = &mut self.sessions[victim];
            let moved = tier_bytes(r, tier).min(overflow).min(room);
            *tier_bytes_mut(r, tier) -= moved;
            *tier_bytes_mut(r, dest) += moved;
            let victim_id = *victim_id;
            self.used[tier_index(tier)] -= moved;
            self.used[tier_index(dest)] += moved;
            self.stats.spilled_bytes += moved;
            self.ever_spilled.insert(victim_id);
        }
    }

    /// Promotes hottest-stream spilled bytes into free device space.
    fn promote_into_free(&mut self) {
        let mut free = self
            .caps
            .device_bytes
            .saturating_sub(self.used[tier_index(MemTier::Device)]);
        if free == 0 {
            return;
        }
        // Hottest first; ties broken by id for determinism (slots are
        // in id order).
        let mut order: Vec<usize> = (0..self.sessions.len())
            .filter(|&i| self.sessions[i].1.spilled_bytes() > 0)
            .collect();
        order.sort_by(|&a, &b| {
            let ra = self.sessions[a].1.last_active_ps;
            let rb = self.sessions[b].1.last_active_ps;
            rb.cmp(&ra).then(a.cmp(&b))
        });
        for i in order {
            if free == 0 {
                break;
            }
            let r = &mut self.sessions[i].1;
            for tier in [MemTier::Host, MemTier::Ssd] {
                let moved = tier_bytes(r, tier).min(free);
                *tier_bytes_mut(r, tier) -= moved;
                r.device_bytes += moved;
                self.used[tier_index(tier)] -= moved;
                self.used[tier_index(MemTier::Device)] += moved;
                free -= moved;
                self.stats.promoted_bytes += moved;
            }
        }
    }
}

fn tier_index(tier: MemTier) -> usize {
    match tier {
        MemTier::Device => 0,
        MemTier::Host => 1,
        MemTier::Ssd => 2,
    }
}

fn tier_bytes(r: &Residency, tier: MemTier) -> u64 {
    match tier {
        MemTier::Device => r.device_bytes,
        MemTier::Host => r.host_bytes,
        MemTier::Ssd => r.ssd_bytes,
    }
}

fn tier_bytes_mut(r: &mut Residency, tier: MemTier) -> &mut u64 {
    match tier {
        MemTier::Device => &mut r.device_bytes,
        MemTier::Host => &mut r.host_bytes,
        MemTier::Ssd => &mut r.ssd_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_hwsim::dram::DramConfig;
    use vrex_hwsim::pcie::PcieConfig;
    use vrex_hwsim::seconds_to_ps;
    use vrex_hwsim::ssd::SsdConfig;

    const GIB: u64 = 1 << 30;

    fn server_manager(device: u64, host: u64, ssd: u64) -> TieredKvManager {
        TieredKvManager::new(
            TierCapacities {
                device_bytes: device,
                host_bytes: host,
                ssd_bytes: ssd,
            },
            TierPath {
                pcie: PcieConfig::gen4_x16(),
                host_dram: Some(DramConfig::ddr4_cpu()),
                ssd: Some(SsdConfig::bg6_class()),
            },
        )
    }

    #[test]
    fn streams_stay_device_resident_until_the_budget_trips() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, 2 * GIB, 0);
        m.admit(1, 2 * GIB, 1);
        assert_eq!(m.used_bytes(MemTier::Device), 4 * GIB);
        assert_eq!(m.used_bytes(MemTier::Host), 0);
        assert_eq!(m.ever_spilled_sessions(), 0);
    }

    #[test]
    fn overflow_spills_the_coldest_stream_first() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, 2 * GIB, 0); // coldest
        m.admit(1, 2 * GIB, 1);
        m.admit(2, 2 * GIB, 2); // 2 GiB over budget
        let r0 = *m.residency(0).unwrap();
        assert_eq!(r0.host_bytes, 2 * GIB, "stream 0 spilled: {r0:?}");
        assert_eq!(m.residency(2).unwrap().host_bytes, 0, "newcomer stays hot");
        assert_eq!(m.used_bytes(MemTier::Device), 4 * GIB);
        assert_eq!(m.stats().spilled_bytes, 2 * GIB);
        assert_eq!(m.ever_spilled_sessions(), 1);
    }

    #[test]
    fn host_overflow_cascades_to_the_ssd() {
        let mut m = server_manager(GIB, GIB, 64 * GIB);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1);
        m.admit(2, GIB, 2);
        // 3 GiB of demand into 1 GiB device + 1 GiB host: the coldest
        // stream's spill lands on the SSD.
        assert_eq!(m.used_bytes(MemTier::Device), GIB);
        assert_eq!(m.used_bytes(MemTier::Host), GIB);
        assert_eq!(m.used_bytes(MemTier::Ssd), GIB);
    }

    #[test]
    fn release_promotes_the_hottest_spilled_stream() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, 2 * GIB, 0);
        m.admit(1, 2 * GIB, 1);
        m.admit(2, 2 * GIB, 2); // spills 0
        assert_eq!(m.residency(0).unwrap().host_bytes, 2 * GIB);
        m.release(1); // frees 2 GiB of device
        let r0 = *m.residency(0).unwrap();
        assert_eq!(r0.host_bytes, 0, "stream 0 promoted back: {r0:?}");
        assert_eq!(r0.device_bytes, 2 * GIB);
        assert_eq!(m.stats().promoted_bytes, 2 * GIB);
    }

    #[test]
    fn device_resident_steps_are_tier_hits() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, GIB, 0);
        let p = m.step_restore(0, 1.0, false, 0, &NoPrefetch);
        assert_eq!(p, RestoreOutcome::default());
        assert_eq!(m.stats().tier_hit_steps, 1);
        assert_eq!(m.stats().tier_miss_steps, 0);
    }

    #[test]
    fn spill_then_prefetch_matches_hand_computed_migration() {
        // One full spill → prefetch round trip, hand-computed.
        //
        // Stream 0 (2 GiB) goes cold and is spilled to host DRAM by the
        // admissions of streams 1 and 2. Its next frame step (selection
        // ratio 1.0) must restore all 2 GiB over PCIe 4.0 ×16 in
        // 256 KiB chunks. By hand (DDR4 at ~102 GB/s outruns the link,
        // so the pipelined migration equals the PCIe leg):
        //   bytes   = 2^31;  chunks = 2^31 / 2^18 = 8192
        //   TLPs    = 2^31/256 + 8192 = 8_388_608 + 8_192 = 8_396_800
        //   wire    = 2^31 + 8_396_800·24 = 2_349_006_848 B
        //   wire ps = 2_349_006_848 / 32e9 · 1e12 ≈ 73_406_464_000
        //   total   = wire ps + 8192·400_000 ≈ 76_683_264_000 ps
        // Demand fetch exposes all of it; speculative prefetch at 90%
        // accuracy with an ample overlap window hides 90% and exposes
        // exactly the mispredicted 10%.
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, 2 * GIB, 0);
        m.admit(1, 2 * GIB, 1);
        m.admit(2, 2 * GIB, 2);
        assert_eq!(m.residency(0).unwrap().host_bytes, 2 * GIB);

        let bytes = 2 * GIB;
        let chunks = bytes / MIGRATION_CHUNK_BYTES;
        let tlps = bytes / 256 + chunks;
        let wire_bytes = bytes + tlps * 24;
        let miss_ps = seconds_to_ps(wire_bytes as f64 / 32.0e9) + chunks * 400_000;

        let demand = m.step_restore(0, 1.0, false, u64::MAX, &NoPrefetch);
        assert_eq!(demand.miss_ps, miss_ps);
        assert_eq!(demand.exposed_ps, miss_ps);

        let spec = SpeculativePrefetch { accuracy: 0.9 };
        let out = m.step_restore(0, 1.0, false, u64::MAX, &spec);
        assert_eq!(out.miss_ps, miss_ps);
        assert_eq!(out.exposed_ps, miss_ps - (miss_ps as f64 * 0.9) as u64);
        assert_eq!(m.stats().tier_miss_steps, 2);
        assert_eq!(m.stats().restored_bytes, 2 * bytes);
    }

    #[test]
    fn narrow_window_bounds_what_prefetch_can_hide() {
        let mut m = server_manager(GIB, 8 * GIB, 0);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1); // spills 0 entirely
        let spec = SpeculativePrefetch { accuracy: 1.0 };
        let full = m.step_restore(0, 1.0, false, 0, &spec).exposed_ps;
        let window = full / 2;
        let half = m.step_restore(0, 1.0, false, window, &spec).exposed_ps;
        assert_eq!(half, full - window, "only the window is hidden");
    }

    #[test]
    fn selection_ratio_scales_the_restore() {
        let mut m = server_manager(GIB, 8 * GIB, 0);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1);
        let full = m.step_restore(0, 1.0, false, 0, &NoPrefetch).exposed_ps;
        let tenth = m.step_restore(0, 0.1, false, 0, &NoPrefetch).exposed_ps;
        assert!(tenth < full / 5, "ratio 0.1 restore {tenth} vs full {full}");
        assert!(tenth > 0);
    }

    #[test]
    fn grow_keeps_the_growing_stream_hot() {
        let mut m = server_manager(2 * GIB, 8 * GIB, 0);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1);
        // Stream 1 grows past the budget at t=2: stream 0 (colder)
        // takes the spill even though 1 caused the overflow.
        m.grow(1, GIB, 2);
        assert_eq!(m.residency(0).unwrap().host_bytes, GIB);
        assert_eq!(m.residency(1).unwrap().spilled_bytes(), 0);
    }

    #[test]
    fn untracked_streams_cost_nothing() {
        let mut m = server_manager(GIB, GIB, 0);
        assert_eq!(
            m.step_restore(99, 1.0, true, 0, &NoPrefetch),
            RestoreOutcome::default()
        );
        m.touch(99, 5);
        m.release(99);
        assert_eq!(m.stats(), TierStats::default());
    }
}
