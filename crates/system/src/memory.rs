//! Tiered KV-cache residency policy for the serving scheduler.
//!
//! `vrex-hwsim`'s [`tier`](vrex_hwsim::tier) module knows how fast
//! bytes move between device HBM, host DRAM, and the SSD; this module
//! decides **whose** bytes move and **when**:
//!
//! * every stream's *resident demand* (its full cache for in-memory
//!   methods, its hot window for offloading methods — the same bytes
//!   [`SystemModel::is_oom`] counts) is tracked against the device
//!   budget;
//! * when the device overflows, the **coldest** streams (longest since
//!   they last ran) are spilled down — host DRAM first, then SSD.
//!   Spill writebacks stream behind compute and are not charged to the
//!   critical path;
//! * a spilled stream that reaches the front of the scheduler pays a
//!   **tier miss**: the selected share of its spilled bytes must be
//!   restored before its step. With a speculative [`PrefetchPolicy`]
//!   the restore is issued when the work item becomes visible, so the
//!   transfer overlaps the queue wait and the step's own layer-by-layer
//!   compute; only the exposed remainder extends the step;
//! * when a stream retires, its device bytes free up and the hottest
//!   spilled streams are promoted back (asynchronously, off the
//!   critical path).
//!
//! The manager is deterministic: victims and promotions order by
//! (last-active time, session id), and every duration comes from the
//! closed-form hardware models.
//!
//! This module moves bytes *vertically* (between tiers of one device's
//! hierarchy). The multi-device [`crate::placement`] layer moves them
//! *horizontally* — between devices over the NVLink / PCIe-switch
//! fabric — and reuses the same decide-then-drain idiom: placement
//! decisions queue [`crate::placement::DeviceMigration`]s exactly as
//! this manager queues [`MigrationTask`]s behind
//! [`TieredKvManager::take_migrations`], and both are priced in
//! [`MIGRATION_CHUNK_BYTES`] DMA chunks.

use std::collections::{BTreeMap, HashMap};
use std::hash::BuildHasherDefault;

use vrex_hwsim::tier::{MemTier, TierCapacities, TierPath};
use vrex_model::ModelConfig;
use vrex_retrieval::prefetch::{
    ClusterPrefetch, ClusterPrefetchRequest, NoPrefetch, PrefetchPolicy, PrefetchRequest,
    SpeculativePrefetch,
};

use crate::e2e::SystemModel;
use crate::pricing::PriceKeyHasher;

/// DMA chunk size for bulk tier migrations (spills and restores move
/// whole resident-window blocks, so they stream at FlexGen-like
/// granularity regardless of the method's per-step fetch chunk).
pub const MIGRATION_CHUNK_BYTES: u64 = 256 * 1024;

/// How the serving scheduler treats streams that do not fit in device
/// memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// PR 2 behaviour: wait FIFO for device memory, reject on timeout.
    RejectOnly,
    /// Spill cold streams' KV down the memory hierarchy instead of
    /// rejecting; reject only when even the *whole* hierarchy is full.
    Tiered {
        /// How restores are scheduled (demand vs. speculative).
        prefetch: PrefetchMode,
    },
}

impl AdmissionPolicy {
    /// Tiered admission with InfiniGen-style speculative prefetch.
    pub fn tiered_speculative() -> Self {
        AdmissionPolicy::Tiered {
            prefetch: PrefetchMode::Speculative { accuracy: 0.9 },
        }
    }

    /// Tiered admission with pure demand fetching.
    pub fn tiered_demand() -> Self {
        AdmissionPolicy::Tiered {
            prefetch: PrefetchMode::Demand,
        }
    }

    /// Tiered admission with WiCSum-ranked cluster-granular
    /// speculation: spill and restore move hash-cluster sets instead of
    /// flat byte fractions of whole sessions.
    pub fn tiered_cluster() -> Self {
        AdmissionPolicy::Tiered {
            prefetch: PrefetchMode::Cluster { accuracy: 0.9 },
        }
    }
}

/// When restore migrations are issued, relative to the step that needs
/// them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefetchMode {
    /// Restores start when the step starts; nothing is hidden.
    Demand,
    /// Restores are issued as soon as the work item is visible
    /// (InfiniGen-style speculation at the given accuracy), hiding the
    /// transfer behind the wait window and the step's compute.
    Speculative {
        /// Fraction of speculated bytes that are the right ones.
        accuracy: f64,
    },
    /// Restores are planned as a WiCSum-ranked hash-cluster set: the
    /// predicted-hot cluster prefix streams up from work-visibility,
    /// and only mispredicted tail clusters are demand-fetched at batch
    /// formation (the [`ClusterPrefetch`] policy). The manager must
    /// have cluster tracking enabled
    /// ([`TieredKvManager::with_cluster_mode`]).
    Cluster {
        /// Fraction of predicted clusters that are the right ones.
        accuracy: f64,
    },
}

impl PrefetchMode {
    /// The retrieval-crate policy implementing this mode.
    pub fn policy(&self) -> Box<dyn PrefetchPolicy> {
        match self {
            PrefetchMode::Demand => Box::new(NoPrefetch),
            PrefetchMode::Speculative { accuracy } => Box::new(SpeculativePrefetch {
                accuracy: *accuracy,
            }),
            PrefetchMode::Cluster { accuracy } => Box::new(ClusterPrefetch {
                accuracy: *accuracy,
            }),
        }
    }

    /// Whether this mode speculates at hash-cluster granularity (the
    /// serving scheduler enables the manager's cluster tracking for
    /// it).
    pub fn is_cluster(&self) -> bool {
        matches!(self, PrefetchMode::Cluster { .. })
    }
}

/// Where one stream's resident KV currently lives.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Residency {
    /// Bytes in device memory.
    pub device_bytes: u64,
    /// Bytes spilled to host DRAM.
    pub host_bytes: u64,
    /// Bytes spilled to the SSD.
    pub ssd_bytes: u64,
    /// Simulation time this stream last executed (ps; spill coldness
    /// key).
    pub last_active_ps: u64,
}

impl Residency {
    /// Total tracked bytes.
    pub fn total_bytes(&self) -> u64 {
        self.device_bytes + self.host_bytes + self.ssd_bytes
    }

    /// Bytes below the device tier.
    pub fn spilled_bytes(&self) -> u64 {
        self.host_bytes + self.ssd_bytes
    }
}

/// Outcome of pricing one step's tier restore.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreOutcome {
    /// Total time the restore occupies the shared PCIe link (ps),
    /// hidden or not — the caller charges this against the link
    /// budget shared by a batch.
    pub miss_ps: u64,
    /// Migration time left exposed on the critical path (ps).
    pub exposed_ps: u64,
    /// Bytes restored speculatively (in flight from work-visibility;
    /// cluster plans only, zero on flat plans).
    pub spec_bytes: u64,
    /// Bytes demand-fetched at batch formation (cluster plans only).
    pub demand_bytes: u64,
    /// Clusters restored speculatively.
    pub spec_clusters: u64,
    /// Mispredicted clusters that were spilled and had to be
    /// demand-fetched.
    pub demand_clusters: u64,
    /// Total mispredicted clusters (including ones that happened to be
    /// device-resident and cost nothing).
    pub mispredicted_clusters: u64,
}

/// Per-session hash-cluster residency: which clusters sit below the
/// device tier, keyed by **coldness rank** (0 = coldest cluster by the
/// previous step's WiCSum mass). The spilled set is always a
/// contiguous key prefix `[0, s)`: demotion appends the next-coldest
/// rank, promotion pops the hottest spilled rank, so candidate
/// discovery is O(1) and iteration order is the ranking itself. Bytes
/// are frozen at demotion time; the session's device bytes are the
/// residency total minus the map's bytes.
#[derive(Debug, Clone, Default)]
struct ClusterState {
    /// Spilled clusters by coldness rank. A `BTreeMap` keeps victim
    /// selection and restore planning in deterministic rank order.
    spilled: BTreeMap<u64, SpilledCluster>,
    /// Steps this session has committed — rotates which tail clusters
    /// the misprediction model touches, so demand fetches are
    /// deterministic without a PRNG.
    step_seq: u64,
}

/// One spilled cluster's location and frozen size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SpilledCluster {
    tier: MemTier,
    bytes: u64,
}

/// Cluster-mode knobs, fixed per manager instance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ClusterModeCfg {
    /// Bytes per hash cluster (the method's fetch chunk).
    cluster_bytes: u64,
    /// Fraction of each session's clusters (the WiCSum-hot prefix)
    /// protected from first-pass spill.
    protected_ratio: f64,
}

/// Ceiling on tracked clusters per session. Token-granular methods
/// (4 KiB fetch chunks on multi-GiB sessions) would otherwise mean
/// millions of per-cluster entries and O(clusters) restore planning
/// every step; above the cap, adjacent fetch chunks are DMA-chained
/// into one migration granule. Methods whose chunk already keeps a
/// session under the cap (e.g. ReSV frame clusters) are unaffected.
const MAX_CLUSTERS_PER_SESSION: u64 = 16384;

impl ClusterModeCfg {
    /// Effective migration granule for a session of `total` bytes:
    /// the method's fetch chunk, chained up just enough to respect
    /// [`MAX_CLUSTERS_PER_SESSION`].
    fn granule(&self, total: u64) -> u64 {
        self.cluster_bytes
            .max(total.div_ceil(MAX_CLUSTERS_PER_SESSION))
    }
}

/// One bulk KV migration the residency policy decided on — emitted by
/// spills and promotions for the scheduler to price and place on the
/// shared link as a real task (the resource-timeline serving path),
/// instead of the manager folding time into exposed-seconds itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationTask {
    /// Stream whose bytes move.
    pub session: usize,
    /// Source tier.
    pub from: MemTier,
    /// Destination tier.
    pub to: MemTier,
    /// Bytes moved.
    pub bytes: u64,
}

/// The priced shape of one step's tier restore, before any overlap
/// decision: how many bytes come from each spill tier, how long each
/// leg holds the shared link, and what fraction the prefetch policy
/// promises to have in flight ahead of the step.
///
/// [`TieredKvManager::plan_restore`] produces it; the serialized
/// scheduler folds it into exposed time via
/// [`TieredKvManager::step_restore`], while the overlapped scheduler
/// turns the legs into link reservations and commits the outcome with
/// [`TieredKvManager::commit_restore`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RestorePlan {
    /// Bytes restored from host DRAM.
    pub host_bytes: u64,
    /// Bytes restored from the SSD.
    pub ssd_bytes: u64,
    /// Link time of the host-DRAM leg (ps).
    pub host_ps: u64,
    /// Link time of the SSD leg (ps).
    pub ssd_ps: u64,
    /// Fraction of the restore the prefetch policy covers ahead of the
    /// step (already scaled by speculation accuracy). For cluster
    /// plans this is the speculated byte share, kept for display — the
    /// schedulers split cluster plans with exact integer byte ratios
    /// instead.
    pub coverage: f64,
    /// Bytes of the restore that are speculated (in flight from
    /// work-visibility). Cluster plans only; zero on flat plans.
    pub spec_bytes: u64,
    /// Bytes demand-fetched at batch formation (mispredicted
    /// clusters). Cluster plans only.
    pub demand_bytes: u64,
    /// Whether this is a cluster-granular plan (`spec_bytes` /
    /// `demand_bytes` partition [`Self::bytes`] and the hidden share
    /// must use integer byte math).
    pub cluster: bool,
    /// Session the plan belongs to — [`TieredKvManager::commit_restore`]
    /// advances that session's cluster step sequence.
    pub session: usize,
    /// Clusters restored speculatively.
    pub spec_clusters: u64,
    /// Mispredicted clusters that were spilled and demand-fetched.
    pub demand_clusters: u64,
    /// Total mispredicted clusters (spilled or not).
    pub mispredicted_clusters: u64,
}

impl RestorePlan {
    /// Total link occupancy of the restore (the two legs share one
    /// PCIe link, so they serialise).
    pub fn miss_ps(&self) -> u64 {
        self.host_ps + self.ssd_ps
    }

    /// Total bytes restored.
    pub fn bytes(&self) -> u64 {
        self.host_bytes + self.ssd_bytes
    }
}

/// Aggregate tiering statistics over a serving run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Bytes demoted below the device tier.
    pub spilled_bytes: u64,
    /// Bytes promoted back into freed device space (off-critical-path).
    pub promoted_bytes: u64,
    /// Bytes restored on the critical path for steps (tier misses).
    pub restored_bytes: u64,
    /// Per-stream step executions (one [`TieredKvManager::step_restore`]
    /// call, i.e. one batch member) that ran fully device-resident.
    pub tier_hit_steps: u64,
    /// Per-stream step executions that needed a restore migration.
    pub tier_miss_steps: u64,
    /// Migration time hidden behind prefetch overlap (ps).
    pub hidden_ps: u64,
    /// Migration time exposed on the critical path (ps).
    pub exposed_ps: u64,
}

/// Fleet-wide tier residency tracker and migration pricer.
#[derive(Debug)]
pub struct TieredKvManager {
    caps: TierCapacities,
    path: TierPath,
    chunk_bytes: u64,
    /// Tracked streams, sorted by session id (the scheduler's fleets
    /// are small, so a sorted vec beats a tree map on both lookup and
    /// the victim/promotion scans that iterate it in id order).
    sessions: Vec<(usize, Residency)>,
    /// Cluster-granular cold-data tracking, populated only when
    /// [`Self::with_cluster_mode`] enabled it. Sorted by session id in
    /// lockstep with `sessions`; the per-session `Residency` summary
    /// stays authoritative for byte totals.
    cluster_mode: Option<ClusterModeCfg>,
    clusters: Vec<(usize, ClusterState)>,
    /// Fleet-wide resident bytes per tier (device, host, ssd), kept
    /// incrementally so the per-step budget checks are O(1) instead of
    /// a fleet scan (the scheduler grows streams every batch).
    used: [u64; 3],
    ever_spilled: std::collections::BTreeSet<usize>,
    stats: TierStats,
    /// Migrations decided since the last [`Self::take_migrations`]
    /// drain, in decision order.
    pending_migrations: Vec<MigrationTask>,
    /// Memoized [`TierPath::migrate_ps`] at the manager's chunk size,
    /// keyed by (from, to, bytes). `step_restore` re-prices repeated
    /// (spilled bytes × ratio) shapes per batch member; the memo turns
    /// every repeat into one hash lookup, bit-identical to the closed
    /// form (oracle-tested).
    migration_prices: HashMap<(u8, u8, u64), u64, BuildHasherDefault<PriceKeyHasher>>,
    price_hits: u64,
    price_misses: u64,
}

impl TieredKvManager {
    /// Creates a manager over explicit capacities and links.
    pub fn new(caps: TierCapacities, path: TierPath) -> Self {
        Self {
            caps,
            path,
            chunk_bytes: MIGRATION_CHUNK_BYTES,
            sessions: Vec::new(),
            cluster_mode: None,
            clusters: Vec::new(),
            used: [0; 3],
            ever_spilled: std::collections::BTreeSet::new(),
            stats: TierStats::default(),
            pending_migrations: Vec::new(),
            migration_prices: HashMap::default(),
            price_hits: 0,
            price_misses: 0,
        }
    }

    /// Creates the manager for a platform + method pair: device budget
    /// from the memory left after weights, spill tiers from the
    /// platform's host DRAM / SSD.
    pub fn for_system(sys: &SystemModel, model: &ModelConfig) -> Self {
        Self::new(sys.kv_tier_capacities(model), sys.tier_path())
    }

    /// Enables cluster-granular cold-data tracking: resident demand is
    /// modelled as `ceil(total / cluster_bytes)` hash clusters (chained
    /// into coarser granules past 16384 clusters per session) ranked
    /// by the previous step's WiCSum mass, spill victims are the
    /// coldest *clusters* of any session (the hottest
    /// `ceil(protected_ratio · n)` clusters of each session are
    /// protected from first-pass eviction), and restores move only the
    /// speculated-plus-mispredicted cluster set. Must be called before
    /// any stream is admitted; migrations are priced in cluster-sized
    /// chunks from here on.
    pub fn with_cluster_mode(mut self, cluster_bytes: u64, protected_ratio: f64) -> Self {
        debug_assert!(
            self.sessions.is_empty(),
            "enable cluster mode before admitting streams"
        );
        self.cluster_mode = Some(ClusterModeCfg {
            cluster_bytes: cluster_bytes.max(1),
            protected_ratio: protected_ratio.clamp(0.0, 1.0),
        });
        self
    }

    /// Cluster-mode knobs, if enabled: `(cluster_bytes,
    /// protected_ratio)`.
    pub fn cluster_params(&self) -> Option<(u64, f64)> {
        self.cluster_mode
            .map(|c| (c.cluster_bytes, c.protected_ratio))
    }

    /// One stream's spilled clusters as `(coldness_rank, tier, bytes)`
    /// in ascending rank order (coldest first). Empty when the stream
    /// is fully device-resident or cluster mode is off.
    pub fn spilled_clusters(&self, id: usize) -> Vec<(u64, MemTier, u64)> {
        match self.cluster_slot(id) {
            Ok(i) => self.clusters[i]
                .1
                .spilled
                .iter()
                .map(|(&k, c)| (k, c.tier, c.bytes))
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    /// The tier budgets.
    pub fn capacities(&self) -> TierCapacities {
        self.caps
    }

    /// Total KV capacity across every tier.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.caps.total_bytes()
    }

    /// Bytes currently resident in one tier, fleet-wide (maintained
    /// incrementally; `debug_assert`-checked against the fleet scan).
    pub fn used_bytes(&self, tier: MemTier) -> u64 {
        debug_assert_eq!(
            self.used[tier_index(tier)],
            self.sessions
                .iter()
                .map(|(_, r)| tier_bytes(r, tier))
                .sum::<u64>(),
            "cached {tier} total diverged from the fleet scan"
        );
        self.used[tier_index(tier)]
    }

    /// Whether any resident KV currently sits below the device tier.
    /// `false` means every tracked stream is fully device-resident, so
    /// a step over tracked streams cannot miss — the scheduler's
    /// fast path ([`Self::record_all_hot_steps`]).
    pub fn any_spilled_bytes(&self) -> bool {
        self.used[tier_index(MemTier::Host)] + self.used[tier_index(MemTier::Ssd)] > 0
    }

    /// Records `members` tier hits at once. Exactly equivalent to (and
    /// only valid as) `members` calls to [`Self::step_restore`] for
    /// *tracked* streams while [`Self::any_spilled_bytes`] is `false`:
    /// each such call would price a zero-byte restore and count one
    /// hit.
    pub fn record_all_hot_steps(&mut self, members: u64) {
        debug_assert!(!self.any_spilled_bytes(), "fast path requires no spill");
        self.stats.tier_hit_steps += members;
    }

    /// One stream's residency, if tracked.
    pub fn residency(&self, id: usize) -> Option<&Residency> {
        self.slot(id).ok().map(|i| &self.sessions[i].1)
    }

    /// Slot of `id` in the sorted session vec (`Err` = insertion point).
    fn slot(&self, id: usize) -> Result<usize, usize> {
        self.sessions.binary_search_by_key(&id, |&(sid, _)| sid)
    }

    /// Slot of `id` in the sorted cluster-state vec.
    fn cluster_slot(&self, id: usize) -> Result<usize, usize> {
        self.clusters.binary_search_by_key(&id, |(sid, _)| *sid)
    }

    /// Statistics so far.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Streams that were ever (partially) spilled below the device.
    pub fn ever_spilled_sessions(&self) -> usize {
        self.ever_spilled.len()
    }

    /// Whether a stream was ever (partially) spilled below the device.
    pub fn was_ever_spilled(&self, id: usize) -> bool {
        self.ever_spilled.contains(&id)
    }

    /// Drains the migrations decided since the last drain (spills from
    /// [`Self::admit`]/[`Self::grow`], promotions from
    /// [`Self::release`]), in decision order. The resource-timeline
    /// scheduler prices each one and places it on the shared link as a
    /// background task; the serialized scheduler discards them (its
    /// writebacks stream behind compute by assumption).
    pub fn take_migrations(&mut self) -> Vec<MigrationTask> {
        std::mem::take(&mut self.pending_migrations)
    }

    /// [`Self::take_migrations`] into a caller-owned buffer (appended
    /// in decision order), preserving both vectors' capacities — the
    /// allocation-free variant for the serving hot loop, which drains
    /// migrations at every admission pass and batch completion.
    pub fn drain_migrations_into(&mut self, into: &mut Vec<MigrationTask>) {
        into.append(&mut self.pending_migrations);
    }

    /// Whether any migration decisions are waiting to be drained.
    pub fn has_pending_migrations(&self) -> bool {
        !self.pending_migrations.is_empty()
    }

    /// Memoized [`TierPath::migrate_ps`] at the manager's migration
    /// chunk size — bit-identical to the closed form, one hash lookup
    /// per repeated (route, bytes) shape.
    pub fn migration_price_ps(&mut self, from: MemTier, to: MemTier, bytes: u64) -> u64 {
        if bytes == 0 || from == to {
            return 0;
        }
        let key = (tier_index(from) as u8, tier_index(to) as u8, bytes);
        if let Some(&ps) = self.migration_prices.get(&key) {
            self.price_hits += 1;
            return ps;
        }
        self.price_misses += 1;
        // In cluster mode migrations stream at cluster granularity —
        // the memo key stays (route, bytes) because the chunk size is
        // fixed for the manager's lifetime.
        let chunk = self
            .cluster_mode
            .map_or(self.chunk_bytes, |c| c.cluster_bytes);
        let ps = self.path.migrate_ps(from, to, bytes, chunk);
        self.migration_prices.insert(key, ps);
        ps
    }

    /// Migration-price lookups served from the memo so far.
    pub fn price_hits(&self) -> u64 {
        self.price_hits
    }

    /// Migration-price lookups that ran the closed-form pricing.
    pub fn price_misses(&self) -> u64 {
        self.price_misses
    }

    /// Prices the restore one step of `id` would need: the selected
    /// share (`ratio`) of the stream's spilled bytes per source tier,
    /// the link time of each leg, and the prefetch policy's promised
    /// coverage. Pure with respect to residency and statistics — the
    /// caller decides how much of the restore overlaps and commits the
    /// outcome via [`Self::commit_restore`] (or uses
    /// [`Self::step_restore`], which does both with the serialized
    /// window rule).
    pub fn plan_restore(
        &mut self,
        id: usize,
        ratio: f64,
        generation: bool,
        prefetch: &dyn PrefetchPolicy,
    ) -> RestorePlan {
        let Ok(slot) = self.slot(id) else {
            return RestorePlan::default();
        };
        let r = self.sessions[slot].1;
        let ratio = ratio.clamp(0.0, 1.0);
        if let Some(cfg) = self.cluster_mode {
            if let Some(plan) = self.cluster_restore_plan(id, &r, ratio, generation, cfg, prefetch)
            {
                return plan;
            }
            // A cluster-blind policy on a cluster-mode manager falls
            // back to the flat byte math below (reference path).
        }
        let host_bytes = (r.host_bytes as f64 * ratio).ceil() as u64;
        let ssd_bytes = (r.ssd_bytes as f64 * ratio).ceil() as u64;
        let host_ps = self.migration_price_ps(MemTier::Host, MemTier::Device, host_bytes);
        let ssd_ps = self.migration_price_ps(MemTier::Ssd, MemTier::Device, ssd_bytes);
        if host_ps + ssd_ps == 0 {
            return RestorePlan::default();
        }
        let plan = prefetch.plan(&PrefetchRequest {
            cold_bytes: r.spilled_bytes(),
            selection_ratio: ratio,
            generation,
        });
        RestorePlan {
            host_bytes,
            ssd_bytes,
            host_ps,
            ssd_ps,
            coverage: plan.coverage(host_bytes + ssd_bytes),
            ..RestorePlan::default()
        }
    }

    /// Cluster-granular restore plan: intersect the policy's predicted
    /// hot cluster set with this session's spilled clusters
    /// (speculated legs), plus the mispredicted tail clusters that
    /// turn out to be spilled (demand legs). `None` when the policy is
    /// cluster-blind.
    fn cluster_restore_plan(
        &mut self,
        id: usize,
        r: &Residency,
        ratio: f64,
        generation: bool,
        cfg: ClusterModeCfg,
        prefetch: &dyn PrefetchPolicy,
    ) -> Option<RestorePlan> {
        let Ok(ci) = self.cluster_slot(id) else {
            return None;
        };
        let total = r.total_bytes();
        let n = total.div_ceil(cfg.granule(total));
        let step_seq = self.clusters[ci].1.step_seq;
        let cp = prefetch.cluster_plan(&ClusterPrefetchRequest {
            clusters: n,
            selection_ratio: ratio,
            generation,
            step_seq,
        })?;
        let predicted = cp.predicted.min(n);
        let tail = n - predicted;
        let mispredicted = cp.mispredicted.min(tail);
        // Predicted-hot clusters are hotness ranks [0, predicted) =
        // coldness ranks [tail, n); the spilled ones stream up
        // speculatively from work-visibility.
        let spilled = &self.clusters[ci].1.spilled;
        let mut spec = [0u64; 3];
        let mut spec_clusters = 0u64;
        for c in spilled.range(tail..).map(|(_, c)| c) {
            spec[tier_index(c.tier)] += c.bytes;
            spec_clusters += 1;
        }
        // Mispredictions rotate deterministically through the tail
        // (coldness ranks [0, tail)); only the ones that are actually
        // spilled cost a demand fetch.
        let mut demand = [0u64; 3];
        let mut demand_clusters = 0u64;
        if tail > 0 {
            for j in 0..mispredicted {
                let cold = (step_seq + j) % tail;
                if let Some(c) = spilled.get(&cold) {
                    demand[tier_index(c.tier)] += c.bytes;
                    demand_clusters += 1;
                }
            }
        }
        let host_bytes = spec[1] + demand[1];
        let ssd_bytes = spec[2] + demand[2];
        let host_ps = self.migration_price_ps(MemTier::Host, MemTier::Device, host_bytes);
        let ssd_ps = self.migration_price_ps(MemTier::Ssd, MemTier::Device, ssd_bytes);
        let spec_bytes = spec[1] + spec[2];
        let demand_bytes = demand[1] + demand[2];
        let bytes = spec_bytes + demand_bytes;
        Some(RestorePlan {
            host_bytes,
            ssd_bytes,
            host_ps,
            ssd_ps,
            // Display-only for cluster plans; the schedulers split
            // hidden time with exact integer byte ratios instead.
            coverage: if bytes > 0 {
                spec_bytes as f64 / bytes as f64
            } else {
                0.0
            },
            spec_bytes,
            demand_bytes,
            cluster: true,
            session: id,
            spec_clusters,
            demand_clusters,
            mispredicted_clusters: mispredicted,
        })
    }

    /// Records the outcome of one step's restore plan: a zero-byte plan
    /// counts a tier hit; anything else counts a miss with
    /// `hidden_ps`/`exposed_ps` splitting its link time between
    /// overlapped and critical-path. The caller guarantees
    /// `hidden_ps + exposed_ps == plan.miss_ps()`.
    pub fn commit_restore(&mut self, plan: &RestorePlan, hidden_ps: u64, exposed_ps: u64) {
        debug_assert_eq!(hidden_ps + exposed_ps, plan.miss_ps());
        // Cluster plans advance the session's step sequence even on a
        // hit, so the misprediction rotation tracks executed steps.
        if plan.cluster {
            if let Ok(i) = self.cluster_slot(plan.session) {
                self.clusters[i].1.step_seq += 1;
            }
        }
        if plan.miss_ps() == 0 {
            self.stats.tier_hit_steps += 1;
            return;
        }
        self.stats.tier_miss_steps += 1;
        self.stats.restored_bytes += plan.bytes();
        self.stats.hidden_ps += hidden_ps;
        self.stats.exposed_ps += exposed_ps;
    }

    /// Admits a stream with `bytes` of resident demand, placed in
    /// device memory; colder streams are spilled down if the device
    /// overflows.
    pub fn admit(&mut self, id: usize, bytes: u64, now_ps: u64) {
        let slot = match self.slot(id) {
            Ok(i) => i,
            Err(i) => {
                self.sessions.insert(i, (id, Residency::default()));
                if self.cluster_mode.is_some() {
                    if let Err(ci) = self.cluster_slot(id) {
                        self.clusters.insert(ci, (id, ClusterState::default()));
                    }
                }
                i
            }
        };
        let r = &mut self.sessions[slot].1;
        r.device_bytes += bytes;
        r.last_active_ps = now_ps;
        self.used[tier_index(MemTier::Device)] += bytes;
        self.spill_down();
    }

    /// Grows a stream's resident demand by `delta` bytes (new KV lands
    /// in device memory) and marks it active.
    pub fn grow(&mut self, id: usize, delta: u64, now_ps: u64) {
        if let Ok(i) = self.slot(id) {
            let r = &mut self.sessions[i].1;
            r.device_bytes += delta;
            r.last_active_ps = now_ps;
            self.used[tier_index(MemTier::Device)] += delta;
        }
        self.spill_down();
    }

    /// Marks a stream active (it just executed) without growing it.
    pub fn touch(&mut self, id: usize, now_ps: u64) {
        if let Ok(i) = self.slot(id) {
            self.sessions[i].1.last_active_ps = now_ps;
        }
    }

    /// Retires a stream, freeing its bytes, then promotes the hottest
    /// spilled streams into the freed device space.
    pub fn release(&mut self, id: usize) {
        if let Ok(i) = self.slot(id) {
            let (_, r) = self.sessions.remove(i);
            for tier in MemTier::ALL {
                self.used[tier_index(tier)] -= tier_bytes(&r, tier);
            }
            if let Ok(ci) = self.cluster_slot(id) {
                self.clusters.remove(ci);
            }
        }
        self.promote_into_free();
    }

    /// Prices the tier miss of one step and applies prefetch overlap.
    ///
    /// `ratio` is the method's selection ratio for the step's stage —
    /// the share of the stream's spilled bytes the step must restore.
    /// `window_ps` is how long the restore could have been in flight
    /// before the step's results are needed: queue wait plus the
    /// step's own compute (which the transfer pipelines with layer by
    /// layer), *minus* whatever of that window other streams' restores
    /// have already claimed on the shared link — the caller owns that
    /// accounting via [`RestoreOutcome::miss_ps`].
    pub fn step_restore(
        &mut self,
        id: usize,
        ratio: f64,
        generation: bool,
        window_ps: u64,
        prefetch: &dyn PrefetchPolicy,
    ) -> RestoreOutcome {
        if self.slot(id).is_err() {
            return RestoreOutcome::default();
        }
        let plan = self.plan_restore(id, ratio, generation, prefetch);
        let miss_ps = plan.miss_ps();
        let hidden = if plan.cluster {
            // Cluster plans partition the restore into exact byte sets:
            // the speculated share hides in integer math, no float knob.
            if plan.bytes() == 0 {
                0
            } else {
                let spec =
                    (miss_ps as u128 * plan.spec_bytes as u128 / plan.bytes() as u128) as u64;
                spec.min(window_ps)
            }
        } else {
            // vrex-lint: allow(float-time) — prefetch coverage is a float model knob; the hidden share is floored to integer ps here, before any deadline arithmetic sees it.
            ((miss_ps as f64 * plan.coverage) as u64).min(window_ps)
        };
        self.commit_restore(&plan, hidden, miss_ps - hidden);
        if miss_ps == 0 {
            return RestoreOutcome::default();
        }
        RestoreOutcome {
            miss_ps,
            exposed_ps: miss_ps - hidden,
            spec_bytes: plan.spec_bytes,
            demand_bytes: plan.demand_bytes,
            spec_clusters: plan.spec_clusters,
            demand_clusters: plan.demand_clusters,
            mispredicted_clusters: plan.mispredicted_clusters,
        }
    }

    /// Demotes coldest bytes until device and host budgets hold —
    /// whole coldest streams in flat mode, coldest *clusters* of any
    /// stream in cluster mode.
    fn spill_down(&mut self) {
        if let Some(cfg) = self.cluster_mode {
            self.spill_tier_clusters(MemTier::Device, cfg);
            self.spill_tier_clusters(MemTier::Host, cfg);
        } else {
            self.spill_tier(MemTier::Device);
            self.spill_tier(MemTier::Host);
        }
    }

    fn spill_tier(&mut self, tier: MemTier) {
        loop {
            let used = self.used[tier_index(tier)];
            let cap = self.caps.capacity(tier);
            if used <= cap {
                return;
            }
            let overflow = used - cap;
            // Coldest stream holding bytes in this tier; the vec is in
            // id order, so min_by ties resolve to the smallest id.
            let Some(victim) = self
                .sessions
                .iter()
                .enumerate()
                .filter(|(_, (_, r))| tier_bytes(r, tier) > 0)
                .min_by(|(_, (ia, ra)), (_, (ib, rb))| {
                    ra.last_active_ps.cmp(&rb.last_active_ps).then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
            else {
                return;
            };
            // Nearest lower tier with room.
            let Some((dest, room)) = self
                .caps
                .below(tier)
                .map(|t| {
                    (
                        t,
                        self.caps
                            .capacity(t)
                            .saturating_sub(self.used[tier_index(t)]),
                    )
                })
                .find(|&(_, room)| room > 0)
            else {
                // Hierarchy full: leave the tier over budget (admission
                // control is responsible for not letting this happen).
                return;
            };
            let (victim_id, r) = &mut self.sessions[victim];
            let moved = tier_bytes(r, tier).min(overflow).min(room);
            *tier_bytes_mut(r, tier) -= moved;
            *tier_bytes_mut(r, dest) += moved;
            let victim_id = *victim_id;
            self.used[tier_index(tier)] -= moved;
            self.used[tier_index(dest)] += moved;
            self.stats.spilled_bytes += moved;
            self.ever_spilled.insert(victim_id);
            self.pending_migrations.push(MigrationTask {
                session: victim_id,
                from: tier,
                to: dest,
                bytes: moved,
            });
        }
    }

    /// Cluster-granular spill: while `tier` is over budget, demote the
    /// coldest clusters of the coldest sessions. Pass 1 only takes
    /// each session's unprotected cold tail; pass 2 (pressure still
    /// unresolved) may evict protected WiCSum-hot clusters too — a hot
    /// session's cold clusters leave before any session's hot ones.
    fn spill_tier_clusters(&mut self, tier: MemTier, cfg: ClusterModeCfg) {
        let src = tier_index(tier);
        if self.used[src] <= self.caps.capacity(tier) {
            return;
        }
        // Coldest sessions first; ties resolve to the smaller id.
        let mut order: Vec<usize> = (0..self.sessions.len()).collect();
        order.sort_by(|&a, &b| {
            self.sessions[a]
                .1
                .last_active_ps
                .cmp(&self.sessions[b].1.last_active_ps)
                .then(self.sessions[a].0.cmp(&self.sessions[b].0))
        });
        for protected_pass in [false, true] {
            for &si in &order {
                if self.used[src] <= self.caps.capacity(tier) {
                    return;
                }
                if !self.demote_session_clusters(si, tier, cfg, protected_pass) {
                    // Hierarchy full: leave the tier over budget
                    // (admission control prevents this in practice).
                    return;
                }
            }
        }
    }

    /// Demotes clusters of one session out of `tier` until the tier
    /// fits or the session has nothing (in this pass's class) left.
    /// Returns `false` when no lower tier has room for a cluster.
    fn demote_session_clusters(
        &mut self,
        si: usize,
        tier: MemTier,
        cfg: ClusterModeCfg,
        protected_pass: bool,
    ) -> bool {
        let src = tier_index(tier);
        let cap = self.caps.capacity(tier);
        let id = self.sessions[si].0;
        let Ok(ci) = self.cluster_slot(id) else {
            return true;
        };
        let total = self.sessions[si].1.total_bytes();
        if total == 0 {
            return true;
        }
        let granule = cfg.granule(total);
        let n = total.div_ceil(granule);
        let protected = protected_clusters(n, cfg.protected_ratio);
        // Coldness ranks this pass may demote up to: the unprotected
        // tail first, the whole session only under residual pressure.
        let limit = if protected_pass { n } else { n - protected };
        // Coalesce consecutive same-route clusters into one task.
        let mut run_to: Option<MemTier> = None;
        let mut run_bytes = 0u64;
        let mut demoted = false;
        let ok = loop {
            if self.used[src] <= cap {
                break true;
            }
            // Next coldest candidate in this pass's class: for the
            // device tier it is the next unspilled coldness rank (the
            // spilled set is a contiguous prefix [0, s)); for a lower
            // tier it is the coldest cluster already spilled there
            // (cascade). `cascade_key` is `None` for a device demotion.
            let (bytes, cascade_key) = match tier {
                MemTier::Device => {
                    let device = self.sessions[si].1.device_bytes;
                    if device == 0 {
                        break true;
                    }
                    // Spilled mass in current-granule units: exactly
                    // the spilled-cluster count for a static granule,
                    // and the current-granule equivalent of stale
                    // finer clusters once chaining has coarsened it —
                    // so the protected prefix keeps its byte meaning.
                    // The protected pass demotes everything, so only
                    // `device == 0` stops it.
                    let s = self.sessions[si].1.spilled_bytes().div_ceil(granule);
                    if !protected_pass && s >= limit {
                        break true;
                    }
                    (granule.min(device), None)
                }
                _ => {
                    let found = self.clusters[ci]
                        .1
                        .spilled
                        .range(..limit)
                        .find(|(_, c)| c.tier == tier)
                        .map(|(&k, c)| (k, c.bytes));
                    match found {
                        Some((k, bytes)) => (bytes, Some(k)),
                        None => break true,
                    }
                }
            };
            // Nearest lower tier with room for this whole cluster —
            // clusters never straddle tiers.
            let dest = self.caps.below(tier).find(|&t| {
                self.caps
                    .capacity(t)
                    .saturating_sub(self.used[tier_index(t)])
                    >= bytes
            });
            let Some(dest) = dest else {
                break false;
            };
            if let Some(to) = run_to {
                if to != dest {
                    self.pending_migrations.push(MigrationTask {
                        session: id,
                        from: tier,
                        to,
                        bytes: run_bytes,
                    });
                    run_bytes = 0;
                }
            }
            run_to = Some(dest);
            run_bytes += bytes;
            demoted = true;
            match cascade_key {
                None => {
                    let s = self.clusters[ci].1.spilled.len() as u64;
                    self.clusters[ci]
                        .1
                        .spilled
                        .insert(s, SpilledCluster { tier: dest, bytes });
                    self.sessions[si].1.device_bytes -= bytes;
                }
                Some(key) => {
                    if let Some(c) = self.clusters[ci].1.spilled.get_mut(&key) {
                        c.tier = dest;
                    }
                    *tier_bytes_mut(&mut self.sessions[si].1, tier) -= bytes;
                }
            }
            *tier_bytes_mut(&mut self.sessions[si].1, dest) += bytes;
            self.used[src] -= bytes;
            self.used[tier_index(dest)] += bytes;
            self.stats.spilled_bytes += bytes;
        };
        if let Some(to) = run_to {
            self.pending_migrations.push(MigrationTask {
                session: id,
                from: tier,
                to,
                bytes: run_bytes,
            });
        }
        if demoted {
            self.ever_spilled.insert(id);
        }
        ok
    }

    /// Cluster-granular promotion: hottest sessions first, and within
    /// a session the hottest spilled cluster (highest coldness rank)
    /// first — whole clusters only.
    fn promote_into_free_clusters(&mut self) {
        let mut free = self
            .caps
            .device_bytes
            .saturating_sub(self.used[tier_index(MemTier::Device)]);
        if free == 0 {
            return;
        }
        let mut order: Vec<usize> = (0..self.sessions.len())
            .filter(|&i| self.sessions[i].1.spilled_bytes() > 0)
            .collect();
        order.sort_by(|&a, &b| {
            self.sessions[b]
                .1
                .last_active_ps
                .cmp(&self.sessions[a].1.last_active_ps)
                .then(self.sessions[a].0.cmp(&self.sessions[b].0))
        });
        'sessions: for si in order {
            let id = self.sessions[si].0;
            let Ok(ci) = self.cluster_slot(id) else {
                continue;
            };
            let mut run_from: Option<MemTier> = None;
            let mut run_bytes = 0u64;
            while let Some((&key, &c)) = self.clusters[ci].1.spilled.iter().next_back() {
                if c.bytes > free {
                    // The next whole cluster no longer fits: stop the
                    // promotion sweep (deterministic, no best-fit
                    // search through smaller partial clusters).
                    flush_run(
                        &mut self.pending_migrations,
                        id,
                        &mut run_from,
                        &mut run_bytes,
                    );
                    break 'sessions;
                }
                self.clusters[ci].1.spilled.remove(&key);
                *tier_bytes_mut(&mut self.sessions[si].1, c.tier) -= c.bytes;
                self.sessions[si].1.device_bytes += c.bytes;
                self.used[tier_index(c.tier)] -= c.bytes;
                self.used[tier_index(MemTier::Device)] += c.bytes;
                free -= c.bytes;
                self.stats.promoted_bytes += c.bytes;
                if run_from.is_some() && run_from != Some(c.tier) {
                    flush_run(
                        &mut self.pending_migrations,
                        id,
                        &mut run_from,
                        &mut run_bytes,
                    );
                }
                run_from = Some(c.tier);
                run_bytes += c.bytes;
            }
            flush_run(
                &mut self.pending_migrations,
                id,
                &mut run_from,
                &mut run_bytes,
            );
            if free == 0 {
                break;
            }
        }
    }

    /// Promotes hottest-stream spilled bytes into free device space.
    fn promote_into_free(&mut self) {
        if self.cluster_mode.is_some() {
            self.promote_into_free_clusters();
            return;
        }
        let mut free = self
            .caps
            .device_bytes
            .saturating_sub(self.used[tier_index(MemTier::Device)]);
        if free == 0 {
            return;
        }
        // Hottest first; ties broken by id for determinism (slots are
        // in id order).
        let mut order: Vec<usize> = (0..self.sessions.len())
            .filter(|&i| self.sessions[i].1.spilled_bytes() > 0)
            .collect();
        order.sort_by(|&a, &b| {
            let ra = self.sessions[a].1.last_active_ps;
            let rb = self.sessions[b].1.last_active_ps;
            rb.cmp(&ra).then(a.cmp(&b))
        });
        for i in order {
            if free == 0 {
                break;
            }
            let (id, r) = &mut self.sessions[i];
            let id = *id;
            for tier in [MemTier::Host, MemTier::Ssd] {
                let moved = tier_bytes(r, tier).min(free);
                *tier_bytes_mut(r, tier) -= moved;
                r.device_bytes += moved;
                self.used[tier_index(tier)] -= moved;
                self.used[tier_index(MemTier::Device)] += moved;
                free -= moved;
                self.stats.promoted_bytes += moved;
                if moved > 0 {
                    self.pending_migrations.push(MigrationTask {
                        session: id,
                        from: tier,
                        to: MemTier::Device,
                        bytes: moved,
                    });
                }
            }
        }
    }
}

/// Clusters of an `n`-cluster session protected from first-pass spill
/// (the WiCSum-hot prefix).
fn protected_clusters(n: u64, ratio: f64) -> u64 {
    ((n as f64 * ratio).ceil() as u64).min(n)
}

/// Emits one coalesced promotion task for a finished same-tier run.
fn flush_run(
    pending: &mut Vec<MigrationTask>,
    session: usize,
    run_from: &mut Option<MemTier>,
    run_bytes: &mut u64,
) {
    if let Some(from) = run_from.take() {
        pending.push(MigrationTask {
            session,
            from,
            to: MemTier::Device,
            bytes: std::mem::take(run_bytes),
        });
    }
}

fn tier_index(tier: MemTier) -> usize {
    match tier {
        MemTier::Device => 0,
        MemTier::Host => 1,
        MemTier::Ssd => 2,
    }
}

fn tier_bytes(r: &Residency, tier: MemTier) -> u64 {
    match tier {
        MemTier::Device => r.device_bytes,
        MemTier::Host => r.host_bytes,
        MemTier::Ssd => r.ssd_bytes,
    }
}

fn tier_bytes_mut(r: &mut Residency, tier: MemTier) -> &mut u64 {
    match tier {
        MemTier::Device => &mut r.device_bytes,
        MemTier::Host => &mut r.host_bytes,
        MemTier::Ssd => &mut r.ssd_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrex_hwsim::dram::DramConfig;
    use vrex_hwsim::pcie::PcieConfig;
    use vrex_hwsim::seconds_to_ps;
    use vrex_hwsim::ssd::SsdConfig;

    const GIB: u64 = 1 << 30;

    fn server_manager(device: u64, host: u64, ssd: u64) -> TieredKvManager {
        TieredKvManager::new(
            TierCapacities {
                device_bytes: device,
                host_bytes: host,
                ssd_bytes: ssd,
            },
            TierPath {
                pcie: PcieConfig::gen4_x16(),
                host_dram: Some(DramConfig::ddr4_cpu()),
                ssd: Some(SsdConfig::bg6_class()),
            },
        )
    }

    #[test]
    fn streams_stay_device_resident_until_the_budget_trips() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, 2 * GIB, 0);
        m.admit(1, 2 * GIB, 1);
        assert_eq!(m.used_bytes(MemTier::Device), 4 * GIB);
        assert_eq!(m.used_bytes(MemTier::Host), 0);
        assert_eq!(m.ever_spilled_sessions(), 0);
    }

    #[test]
    fn overflow_spills_the_coldest_stream_first() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, 2 * GIB, 0); // coldest
        m.admit(1, 2 * GIB, 1);
        m.admit(2, 2 * GIB, 2); // 2 GiB over budget
        let r0 = *m.residency(0).unwrap();
        assert_eq!(r0.host_bytes, 2 * GIB, "stream 0 spilled: {r0:?}");
        assert_eq!(m.residency(2).unwrap().host_bytes, 0, "newcomer stays hot");
        assert_eq!(m.used_bytes(MemTier::Device), 4 * GIB);
        assert_eq!(m.stats().spilled_bytes, 2 * GIB);
        assert_eq!(m.ever_spilled_sessions(), 1);
    }

    #[test]
    fn host_overflow_cascades_to_the_ssd() {
        let mut m = server_manager(GIB, GIB, 64 * GIB);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1);
        m.admit(2, GIB, 2);
        // 3 GiB of demand into 1 GiB device + 1 GiB host: the coldest
        // stream's spill lands on the SSD.
        assert_eq!(m.used_bytes(MemTier::Device), GIB);
        assert_eq!(m.used_bytes(MemTier::Host), GIB);
        assert_eq!(m.used_bytes(MemTier::Ssd), GIB);
    }

    #[test]
    fn release_promotes_the_hottest_spilled_stream() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, 2 * GIB, 0);
        m.admit(1, 2 * GIB, 1);
        m.admit(2, 2 * GIB, 2); // spills 0
        assert_eq!(m.residency(0).unwrap().host_bytes, 2 * GIB);
        m.release(1); // frees 2 GiB of device
        let r0 = *m.residency(0).unwrap();
        assert_eq!(r0.host_bytes, 0, "stream 0 promoted back: {r0:?}");
        assert_eq!(r0.device_bytes, 2 * GIB);
        assert_eq!(m.stats().promoted_bytes, 2 * GIB);
    }

    #[test]
    fn device_resident_steps_are_tier_hits() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, GIB, 0);
        let p = m.step_restore(0, 1.0, false, 0, &NoPrefetch);
        assert_eq!(p, RestoreOutcome::default());
        assert_eq!(m.stats().tier_hit_steps, 1);
        assert_eq!(m.stats().tier_miss_steps, 0);
    }

    #[test]
    fn spill_then_prefetch_matches_hand_computed_migration() {
        // One full spill → prefetch round trip, hand-computed.
        //
        // Stream 0 (2 GiB) goes cold and is spilled to host DRAM by the
        // admissions of streams 1 and 2. Its next frame step (selection
        // ratio 1.0) must restore all 2 GiB over PCIe 4.0 ×16 in
        // 256 KiB chunks. By hand (DDR4 at ~102 GB/s outruns the link,
        // so the pipelined migration equals the PCIe leg):
        //   bytes   = 2^31;  chunks = 2^31 / 2^18 = 8192
        //   TLPs    = 2^31/256 + 8192 = 8_388_608 + 8_192 = 8_396_800
        //   wire    = 2^31 + 8_396_800·24 = 2_349_006_848 B
        //   wire ps = 2_349_006_848 / 32e9 · 1e12 ≈ 73_406_464_000
        //   total   = wire ps + 8192·400_000 ≈ 76_683_264_000 ps
        // Demand fetch exposes all of it; speculative prefetch at 90%
        // accuracy with an ample overlap window hides 90% and exposes
        // exactly the mispredicted 10%.
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, 2 * GIB, 0);
        m.admit(1, 2 * GIB, 1);
        m.admit(2, 2 * GIB, 2);
        assert_eq!(m.residency(0).unwrap().host_bytes, 2 * GIB);

        let bytes = 2 * GIB;
        let chunks = bytes / MIGRATION_CHUNK_BYTES;
        let tlps = bytes / 256 + chunks;
        let wire_bytes = bytes + tlps * 24;
        let miss_ps = seconds_to_ps(wire_bytes as f64 / 32.0e9) + chunks * 400_000;

        let demand = m.step_restore(0, 1.0, false, u64::MAX, &NoPrefetch);
        assert_eq!(demand.miss_ps, miss_ps);
        assert_eq!(demand.exposed_ps, miss_ps);

        let spec = SpeculativePrefetch { accuracy: 0.9 };
        let out = m.step_restore(0, 1.0, false, u64::MAX, &spec);
        assert_eq!(out.miss_ps, miss_ps);
        assert_eq!(out.exposed_ps, miss_ps - (miss_ps as f64 * 0.9) as u64);
        assert_eq!(m.stats().tier_miss_steps, 2);
        assert_eq!(m.stats().restored_bytes, 2 * bytes);
    }

    #[test]
    fn narrow_window_bounds_what_prefetch_can_hide() {
        let mut m = server_manager(GIB, 8 * GIB, 0);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1); // spills 0 entirely
        let spec = SpeculativePrefetch { accuracy: 1.0 };
        let full = m.step_restore(0, 1.0, false, 0, &spec).exposed_ps;
        let window = full / 2;
        let half = m.step_restore(0, 1.0, false, window, &spec).exposed_ps;
        assert_eq!(half, full - window, "only the window is hidden");
    }

    #[test]
    fn selection_ratio_scales_the_restore() {
        let mut m = server_manager(GIB, 8 * GIB, 0);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1);
        let full = m.step_restore(0, 1.0, false, 0, &NoPrefetch).exposed_ps;
        let tenth = m.step_restore(0, 0.1, false, 0, &NoPrefetch).exposed_ps;
        assert!(tenth < full / 5, "ratio 0.1 restore {tenth} vs full {full}");
        assert!(tenth > 0);
    }

    #[test]
    fn grow_keeps_the_growing_stream_hot() {
        let mut m = server_manager(2 * GIB, 8 * GIB, 0);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1);
        // Stream 1 grows past the budget at t=2: stream 0 (colder)
        // takes the spill even though 1 caused the overflow.
        m.grow(1, GIB, 2);
        assert_eq!(m.residency(0).unwrap().host_bytes, GIB);
        assert_eq!(m.residency(1).unwrap().spilled_bytes(), 0);
    }

    #[test]
    fn migration_price_memo_is_bit_identical_to_the_closed_form() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 64 * GIB);
        let path = TierPath {
            pcie: PcieConfig::gen4_x16(),
            host_dram: Some(DramConfig::ddr4_cpu()),
            ssd: Some(SsdConfig::bg6_class()),
        };
        // The repeated 1 MiB shape exercises the hit path; every lookup
        // must equal the direct closed form exactly.
        for bytes in [1u64, 4096, 1 << 20, 2 * GIB, 1 << 20, 4096] {
            for (from, to) in [
                (MemTier::Host, MemTier::Device),
                (MemTier::Ssd, MemTier::Device),
                (MemTier::Device, MemTier::Host),
                (MemTier::Host, MemTier::Ssd),
            ] {
                assert_eq!(
                    m.migration_price_ps(from, to, bytes),
                    path.migrate_ps(from, to, bytes, MIGRATION_CHUNK_BYTES),
                    "{from}->{to} {bytes}B"
                );
            }
        }
        assert!(m.price_hits() > 0, "repeated shapes must hit the memo");
        // Zero bytes and same-tier moves stay free without polluting it.
        let misses = m.price_misses();
        assert_eq!(m.migration_price_ps(MemTier::Host, MemTier::Device, 0), 0);
        assert_eq!(m.migration_price_ps(MemTier::Host, MemTier::Host, GIB), 0);
        assert_eq!(m.price_misses(), misses);
    }

    #[test]
    fn repeated_restore_shapes_hit_the_memo() {
        let mut m = server_manager(GIB, 8 * GIB, 0);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1); // spills 0 entirely
        let a = m.step_restore(0, 0.5, false, 0, &NoPrefetch);
        let hits_before = m.price_hits();
        let b = m.step_restore(0, 0.5, false, 0, &NoPrefetch);
        assert_eq!(a, b, "memoized repeat must be bit-identical");
        assert!(m.price_hits() > hits_before, "second shape is a hit");
    }

    #[test]
    fn spills_and_promotions_emit_migration_tasks() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0);
        m.admit(0, 2 * GIB, 0);
        m.admit(1, 2 * GIB, 1);
        assert!(m.take_migrations().is_empty(), "no pressure, no tasks");
        m.admit(2, 2 * GIB, 2); // spills stream 0 down
        assert_eq!(
            m.take_migrations(),
            vec![MigrationTask {
                session: 0,
                from: MemTier::Device,
                to: MemTier::Host,
                bytes: 2 * GIB,
            }]
        );
        assert!(m.take_migrations().is_empty(), "drain empties the queue");
        m.release(1); // frees device space: stream 0 promotes back
        assert_eq!(
            m.take_migrations(),
            vec![MigrationTask {
                session: 0,
                from: MemTier::Host,
                to: MemTier::Device,
                bytes: 2 * GIB,
            }]
        );
    }

    #[test]
    fn plan_and_commit_reproduce_step_restore() {
        let mk = || {
            let mut m = server_manager(GIB, 8 * GIB, 0);
            m.admit(0, GIB, 0);
            m.admit(1, GIB, 1); // spills 0 entirely
            m
        };
        let spec = SpeculativePrefetch { accuracy: 0.9 };
        let window = 123_456_789u64;
        let mut serialized = mk();
        let out = serialized.step_restore(0, 1.0, false, window, &spec);
        // The decomposed path: plan, apply the same window rule, commit.
        let mut decomposed = mk();
        let plan = decomposed.plan_restore(0, 1.0, false, &spec);
        assert_eq!(plan.miss_ps(), out.miss_ps);
        assert!(plan.host_bytes > 0, "spill lives in host DRAM");
        assert_eq!(plan.ssd_bytes, 0);
        let hidden = ((plan.miss_ps() as f64 * plan.coverage) as u64).min(window);
        assert_eq!(out.exposed_ps, plan.miss_ps() - hidden);
        decomposed.commit_restore(&plan, hidden, plan.miss_ps() - hidden);
        assert_eq!(serialized.stats(), decomposed.stats());
        // A hit commits as a hit: fully device-resident stream.
        let mut hot = server_manager(4 * GIB, 8 * GIB, 0);
        hot.admit(7, GIB, 0);
        let plan = hot.plan_restore(7, 1.0, false, &spec);
        assert_eq!(plan, RestorePlan::default());
        hot.commit_restore(&plan, 0, 0);
        assert_eq!(hot.stats().tier_hit_steps, 1);
        assert_eq!(hot.stats().tier_miss_steps, 0);
    }

    #[test]
    fn cluster_spill_demotes_the_cold_tail_one_run_at_a_time() {
        // 256 KiB clusters, half of each session WiCSum-protected.
        let mut m =
            server_manager(2 * GIB, 8 * GIB, 0).with_cluster_mode(MIGRATION_CHUNK_BYTES, 0.5);
        m.admit(0, 2 * GIB, 0); // fills the device exactly
        m.grow(0, MIGRATION_CHUNK_BYTES, 1); // one cluster over
        let r = *m.residency(0).unwrap();
        assert_eq!(r.device_bytes, 2 * GIB);
        assert_eq!(r.host_bytes, MIGRATION_CHUNK_BYTES);
        assert_eq!(
            m.spilled_clusters(0),
            vec![(0, MemTier::Host, MIGRATION_CHUNK_BYTES)],
            "coldness rank 0 spilled to host"
        );
        assert_eq!(
            m.take_migrations(),
            vec![MigrationTask {
                session: 0,
                from: MemTier::Device,
                to: MemTier::Host,
                bytes: MIGRATION_CHUNK_BYTES,
            }],
            "one coalesced cluster-sized demotion"
        );
        assert_eq!(m.stats().spilled_bytes, MIGRATION_CHUNK_BYTES);
    }

    #[test]
    fn cluster_restore_prices_only_the_mispredicted_tail() {
        // Continues the single-cluster demotion above with a
        // hand-computed restore. One 256 KiB cluster sits on host DRAM
        // at coldness rank 0. n = 8193 clusters, ratio 0.5 predicts
        // ceil(8193·0.5) = 4097 hot clusters (coldness ranks >= 4096 —
        // none spilled, so nothing is speculated), and at 90% accuracy
        // ceil(4097·0.1) = 410 tail clusters are mispredicted. The
        // rotation starts at step_seq = 0, so tail rank 0 — the one
        // spilled cluster — is demand-fetched. By hand over PCIe 4.0
        // ×16 in one 256 KiB chunk:
        //   TLPs = 262144/256 + 1 = 1025
        //   wire = 262144 + 1025·24 = 286_744 B
        //   ps   = 286_744/32e9·1e12 + 400_000
        let mut m =
            server_manager(2 * GIB, 8 * GIB, 0).with_cluster_mode(MIGRATION_CHUNK_BYTES, 0.5);
        m.admit(0, 2 * GIB, 0);
        m.grow(0, MIGRATION_CHUNK_BYTES, 1);

        let bytes = MIGRATION_CHUNK_BYTES;
        let tlps = bytes / 256 + 1;
        let wire = bytes + tlps * 24;
        let miss_ps = seconds_to_ps(wire as f64 / 32.0e9) + 400_000;

        let policy = ClusterPrefetch { accuracy: 0.9 };
        let out = m.step_restore(0, 0.5, false, u64::MAX, &policy);
        assert_eq!(out.miss_ps, miss_ps);
        assert_eq!(out.exposed_ps, miss_ps, "demand fetch hides nothing");
        assert_eq!(out.spec_bytes, 0);
        assert_eq!(out.demand_bytes, bytes);
        assert_eq!(out.spec_clusters, 0);
        assert_eq!(out.demand_clusters, 1);
        assert_eq!(out.mispredicted_clusters, 410);
        assert_eq!(m.stats().restored_bytes, bytes);

        // The next step's misprediction rotation moves off rank 0, so
        // the still-spilled cluster goes untouched: a tier hit.
        let out = m.step_restore(0, 0.5, false, u64::MAX, &policy);
        assert_eq!(out, RestoreOutcome::default());
        assert_eq!(m.stats().tier_hit_steps, 1);
        assert_eq!(m.stats().tier_miss_steps, 1);
    }

    #[test]
    fn cluster_spill_takes_cold_tails_before_any_hot_prefix() {
        // 1 GiB clusters, half protected: the 2 GiB overflow is met by
        // the cold *tails* of the two coldest sessions — flat LRU
        // would instead evict session 0 entirely, hot prefix included.
        let mut m = server_manager(4 * GIB, 8 * GIB, 0).with_cluster_mode(GIB, 0.5);
        m.admit(0, 2 * GIB, 0);
        m.admit(1, 2 * GIB, 1);
        m.admit(2, 2 * GIB, 2);
        let r0 = *m.residency(0).unwrap();
        let r1 = *m.residency(1).unwrap();
        let r2 = *m.residency(2).unwrap();
        assert_eq!((r0.device_bytes, r0.host_bytes), (GIB, GIB));
        assert_eq!((r1.device_bytes, r1.host_bytes), (GIB, GIB));
        assert_eq!(r2.spilled_bytes(), 0, "newcomer stays hot");
        assert_eq!(m.ever_spilled_sessions(), 2);
        // Conservation: each session's summary equals its cluster map.
        for id in 0..3 {
            let r = *m.residency(id).unwrap();
            let spilled: u64 = m.spilled_clusters(id).iter().map(|&(_, _, b)| b).sum();
            assert_eq!(r.spilled_bytes(), spilled);
            assert_eq!(r.device_bytes, r.total_bytes() - spilled);
        }
    }

    #[test]
    fn cluster_promotion_returns_hottest_sessions_hottest_clusters() {
        let mut m = server_manager(4 * GIB, 8 * GIB, 0).with_cluster_mode(GIB, 0.5);
        m.admit(0, 2 * GIB, 0);
        m.admit(1, 2 * GIB, 1);
        m.admit(2, 2 * GIB, 2); // spills one cluster each of 0 and 1
        m.take_migrations();
        m.release(2); // frees 2 GiB: both spilled clusters promote
        assert_eq!(m.residency(0).unwrap().spilled_bytes(), 0);
        assert_eq!(m.residency(1).unwrap().spilled_bytes(), 0);
        assert_eq!(
            m.take_migrations(),
            vec![
                // Hotter session 1 promotes before colder session 0.
                MigrationTask {
                    session: 1,
                    from: MemTier::Host,
                    to: MemTier::Device,
                    bytes: GIB,
                },
                MigrationTask {
                    session: 0,
                    from: MemTier::Host,
                    to: MemTier::Device,
                    bytes: GIB,
                },
            ]
        );
        assert_eq!(m.stats().promoted_bytes, 2 * GIB);
    }

    #[test]
    fn cluster_host_overflow_cascades_cold_clusters_to_the_ssd() {
        let mut m = server_manager(GIB, GIB, 64 * GIB).with_cluster_mode(GIB / 4, 0.0);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1);
        m.admit(2, GIB, 2);
        assert_eq!(m.used_bytes(MemTier::Device), GIB);
        assert_eq!(m.used_bytes(MemTier::Host), GIB);
        assert_eq!(m.used_bytes(MemTier::Ssd), GIB);
        // Every spilled cluster sits in exactly one tier and per-tier
        // sums match the residency summaries.
        for id in 0..3 {
            let r = *m.residency(id).unwrap();
            let (mut host, mut ssd) = (0u64, 0u64);
            for (_, tier, b) in m.spilled_clusters(id) {
                match tier {
                    MemTier::Host => host += b,
                    MemTier::Ssd => ssd += b,
                    MemTier::Device => panic!("device cluster in the spilled map"),
                }
            }
            assert_eq!(host, r.host_bytes);
            assert_eq!(ssd, r.ssd_bytes);
        }
    }

    #[test]
    fn flat_policies_on_a_cluster_manager_fall_back_to_byte_math() {
        let mut m = server_manager(GIB, 8 * GIB, 0).with_cluster_mode(MIGRATION_CHUNK_BYTES, 0.0);
        m.admit(0, GIB, 0);
        m.admit(1, GIB, 1); // spills 0 entirely
        let out = m.step_restore(0, 1.0, false, 0, &NoPrefetch);
        assert!(out.miss_ps > 0);
        assert_eq!(out.exposed_ps, out.miss_ps);
        assert_eq!(
            (
                out.spec_clusters,
                out.demand_clusters,
                out.mispredicted_clusters
            ),
            (0, 0, 0),
            "flat plans carry no cluster telemetry"
        );
        assert_eq!(m.stats().restored_bytes, GIB);
    }

    #[test]
    fn untracked_streams_cost_nothing() {
        let mut m = server_manager(GIB, GIB, 0);
        assert_eq!(
            m.step_restore(99, 1.0, true, 0, &NoPrefetch),
            RestoreOutcome::default()
        );
        m.touch(99, 5);
        m.release(99);
        assert_eq!(m.stats(), TierStats::default());
    }
}
