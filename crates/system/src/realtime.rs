//! Real-time streaming session simulation (queueing view).
//!
//! The paper's "real-time processing" line (Figs. 13, 15) is a
//! steady-state threshold: a system is real-time at a given cache
//! length if it processes frames at least as fast as they arrive.
//! This module simulates the transient too: frames arrive at a fixed
//! FPS while per-frame service time *grows with the cache*, so a
//! system can start real-time and later fall behind. The simulation
//! tracks queue depth and end-to-end frame lag over a session — the
//! user-visible consequence of the prefill bottleneck.

use vrex_hwsim::seconds_to_ps;
use vrex_model::ModelConfig;

use crate::e2e::SystemModel;
use crate::queueing::run_fifo;

/// Result of a simulated streaming session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Frames offered to the system.
    pub frames_offered: usize,
    /// Frames fully processed before the session ended.
    pub frames_processed: usize,
    /// Maximum queue depth reached (frames waiting).
    pub max_queue_depth: usize,
    /// Mean per-frame lag (completion − arrival), seconds.
    pub mean_lag_s: f64,
    /// Worst per-frame lag, seconds.
    pub max_lag_s: f64,
    /// Whether the system kept up (bounded queue, lag below `2/fps`).
    pub real_time: bool,
    /// Cache length (tokens) at the end of the session.
    pub final_cache_tokens: usize,
}

/// Simulates `seconds` of video arriving at `fps` into a system that
/// starts with `initial_cache_tokens` of context, with service times
/// taken from the system's frame-latency model as the cache grows.
///
/// Frames queue FIFO; the camera never drops frames (the paper's
/// setting — dropped frames would lose visual context).
pub fn simulate_session(
    sys: &SystemModel,
    model: &ModelConfig,
    initial_cache_tokens: usize,
    fps: f64,
    seconds: f64,
    batch: usize,
) -> SessionResult {
    assert!(
        fps > 0.0 && seconds > 0.0,
        "fps and duration must be positive"
    );
    let frames_offered = (fps * seconds).floor() as usize;
    let interarrival_ps = seconds_to_ps(1.0 / fps);

    // The queueing/lag semantics live in the shared FIFO core; this
    // function only supplies the arrival process (fixed FPS) and the
    // cache-dependent service model. Arrivals, service times, and the
    // real-time bar are all integer ps — the step model's native unit.
    let mut cache = initial_cache_tokens;
    let ledger = run_fifo(
        (0..frames_offered).map(|i| i as u64 * interarrival_ps),
        |_| {
            let service = sys.frame_step(model, cache, batch).latency_ps;
            cache += model.tokens_per_frame;
            service
        },
    );

    SessionResult {
        frames_offered,
        frames_processed: ledger.completed_by(seconds_to_ps(seconds)),
        max_queue_depth: ledger.max_queue_depth(),
        mean_lag_s: ledger.mean_lag_s(),
        max_lag_s: ledger.max_lag_s(),
        real_time: ledger.max_lag_ps() <= 2 * interarrival_ps,
        final_cache_tokens: cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::platform::PlatformSpec;

    fn llama() -> ModelConfig {
        ModelConfig::llama3_8b()
    }

    #[test]
    fn vrex8_keeps_up_at_2fps_short_cache() {
        let sys = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
        let r = simulate_session(&sys, &llama(), 1_000, 2.0, 30.0, 1);
        assert!(r.real_time, "V-Rex8 should sustain 2 FPS: {r:?}");
        assert_eq!(r.frames_offered, 60);
        assert!(r.max_queue_depth <= 1);
    }

    #[test]
    fn agx_flexgen_falls_behind_at_long_cache() {
        let sys = SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen);
        let r = simulate_session(&sys, &llama(), 40_000, 2.0, 30.0, 1);
        assert!(
            !r.real_time,
            "AGX+FlexGen cannot sustain 2 FPS at 40K: {r:?}"
        );
        assert!(r.max_queue_depth > 5, "queue should build: {r:?}");
        assert!(r.max_lag_s > r.mean_lag_s);
    }

    #[test]
    fn lag_grows_monotonically_when_overloaded() {
        let sys = SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen);
        let r = simulate_session(&sys, &llama(), 20_000, 4.0, 10.0, 1);
        // Overloaded server: later frames lag more than earlier ones.
        assert!(r.max_lag_s >= r.mean_lag_s);
        assert!(r.frames_processed < r.frames_offered);
    }

    #[test]
    fn cache_grows_by_tokens_per_frame() {
        let sys = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
        let model = llama();
        let r = simulate_session(&sys, &model, 500, 2.0, 5.0, 1);
        assert_eq!(
            r.final_cache_tokens,
            500 + r.frames_offered * model.tokens_per_frame
        );
    }

    #[test]
    fn queueing_core_matches_hand_computed_constant_service_case() {
        // 2 FPS camera (arrivals at 0.0, 0.5, 1.0, 1.5 s), constant
        // 0.8 s service, single FIFO server. By hand:
        //   completions: 0.8, 1.6, 2.4, 3.2
        //   lags:        0.8, 1.1, 1.4, 1.7  → mean 1.25, max 1.7
        //   depth at arrivals: 0, 1, 1, 2    → max queue 2
        //   completed by t=2.0: frames 0 and 1 → 2
        // This pins the accounting `simulate_session` (and the serving
        // scheduler) inherit from the shared core.
        let s = vrex_hwsim::PS_PER_SECOND;
        let ledger = run_fifo((0..4).map(|i| i * s / 2), |_| 8 * s / 10);
        assert_eq!(ledger.offered(), 4);
        assert_eq!(ledger.max_queue_depth(), 2);
        assert_eq!(ledger.completed_by(2 * s), 2);
        assert!((ledger.mean_lag_s() - 1.25).abs() < 1e-12);
        assert!((ledger.max_lag_s() - 1.7).abs() < 1e-12);
        assert!((ledger.last_completion_s() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn simulate_session_reports_ledger_semantics_exactly() {
        // Differential pin: simulate_session must agree with driving
        // the shared core directly with the same service sequence.
        let sys = SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen);
        let model = llama();
        let r = simulate_session(&sys, &model, 10_000, 2.0, 10.0, 1);

        let mut cache = 10_000usize;
        let half_s = vrex_hwsim::PS_PER_SECOND / 2;
        let ledger = run_fifo((0..r.frames_offered as u64).map(|i| i * half_s), |_| {
            let t = sys.frame_step(&model, cache, 1).latency_ps;
            cache += model.tokens_per_frame;
            t
        });
        assert_eq!(r.frames_processed, ledger.completed_by(20 * half_s));
        assert_eq!(r.max_queue_depth, ledger.max_queue_depth());
        assert_eq!(r.mean_lag_s, ledger.mean_lag_s());
        assert_eq!(r.max_lag_s, ledger.max_lag_s());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_fps() {
        let sys = SystemModel::new(PlatformSpec::vrex8(), Method::ReSV);
        let _ = simulate_session(&sys, &llama(), 0, 0.0, 10.0, 1);
    }
}
