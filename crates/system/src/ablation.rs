//! Ablation configurations (paper Fig. 16).
//!
//! The paper enables V-Rex's optimisations incrementally on a 40K-token
//! cache at batch 1:
//!
//! 1. **AGX + ReSV** — the algorithm alone on the edge GPU (software
//!    co-design only): retrieval volume shrinks, but clustering and
//!    thresholding run as serial data-dependent GPU work (~48% of
//!    latency).
//! 2. **V-Rex8 KVPU** — the DRE's compute units absorb prediction
//!    (latency share → ~0.5%), but fetches stay token-scattered.
//! 3. **V-Rex8 All** — adding the KVMU: hierarchical residency and
//!    cluster-contiguous transfers lift PCIe utilisation.

use vrex_model::ModelConfig;

use crate::e2e::{StepResult, SystemModel};
use crate::method::Method;
use crate::platform::PlatformSpec;

/// One ablation rung.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Configuration label as in Fig. 16.
    pub label: &'static str,
    /// Frame-step result at the ablation workload.
    pub result: StepResult,
}

/// Runs the Fig. 16 ladder: baseline, +ReSV (SW), +KVPU, +All.
pub fn fig16_ladder(model: &ModelConfig, cache_tokens: usize, batch: usize) -> Vec<AblationPoint> {
    let configs: Vec<(&'static str, SystemModel)> = vec![
        (
            "AGX+FlexGen",
            SystemModel::new(PlatformSpec::agx_orin(), Method::FlexGen),
        ),
        (
            "AGX+ReSV",
            SystemModel::new(PlatformSpec::agx_orin(), Method::ReSV),
        ),
        (
            "V-Rex8 KVPU",
            SystemModel::new(PlatformSpec::vrex8(), Method::ReSVKvpuOnly),
        ),
        (
            "V-Rex8 All",
            SystemModel::new(PlatformSpec::vrex8(), Method::ReSV),
        ),
    ];
    configs
        .into_iter()
        .map(|(label, sys)| AblationPoint {
            label,
            result: sys.frame_step(model, cache_tokens, batch),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_improves_monotonically() {
        let ladder = fig16_ladder(&ModelConfig::llama3_8b(), 40_000, 1);
        assert_eq!(ladder.len(), 4);
        for w in ladder.windows(2) {
            assert!(
                w[1].result.latency_ps < w[0].result.latency_ps,
                "{} ({} ms) should beat {} ({} ms)",
                w[1].label,
                w[1].result.latency_ms(),
                w[0].label,
                w[0].result.latency_ms()
            );
        }
    }

    #[test]
    fn agx_resv_speedup_over_flexgen_is_paperlike() {
        // Paper: AGX+ReSV reduces latency 2.8x over AGX+FlexGen.
        let ladder = fig16_ladder(&ModelConfig::llama3_8b(), 40_000, 1);
        let speedup = ladder[0].result.latency_ps as f64 / ladder[1].result.latency_ps as f64;
        assert!(
            (1.5..6.0).contains(&speedup),
            "AGX+ReSV speedup {speedup:.2} outside plausible band"
        );
    }

    #[test]
    fn full_system_speedup_is_paperlike() {
        // Paper: V-Rex8 All reaches 8.1x over AGX+FlexGen.
        let ladder = fig16_ladder(&ModelConfig::llama3_8b(), 40_000, 1);
        let speedup = ladder[0].result.latency_ps as f64 / ladder[3].result.latency_ps as f64;
        assert!(
            (4.0..16.0).contains(&speedup),
            "full-system speedup {speedup:.2} outside plausible band"
        );
    }

    #[test]
    fn kvpu_kills_prediction_share() {
        let ladder = fig16_ladder(&ModelConfig::llama3_8b(), 40_000, 1);
        let gpu_share =
            ladder[1].result.prediction_ps as f64 / (ladder[1].result.latency_ps as f64);
        let dre_share =
            ladder[2].result.prediction_ps as f64 / (ladder[2].result.latency_ps as f64);
        assert!(
            gpu_share > 0.2,
            "GPU prediction share {gpu_share:.2} too small"
        );
        assert!(
            dre_share < 0.05,
            "DRE prediction share {dre_share:.3} too large"
        );
    }

    #[test]
    fn energy_improves_down_the_ladder() {
        let ladder = fig16_ladder(&ModelConfig::llama3_8b(), 40_000, 1);
        let first = ladder[0].result.energy.total_j();
        let last = ladder[3].result.energy.total_j();
        assert!(
            last * 4.0 < first,
            "energy should drop ≥4x: {first:.2} J -> {last:.2} J"
        );
    }
}
